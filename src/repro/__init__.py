"""Privacy-aware location-based database server.

A full reproduction of Mokbel, "Towards Privacy-Aware Location-Based
Database Servers" (ICDE Workshops 2006): the Location Anonymizer trusted
third party, six cloaking algorithms, the privacy-aware query processor for
private-over-public and public-over-private queries, an adversary suite,
and the experiment harness regenerating every figure of the paper.

Quickstart::

    from repro import PrivacySystem, PyramidCloaker, MobileUser, PrivacyProfile
    from repro.geometry import Point, Rect

    bounds = Rect(0, 0, 100, 100)
    system = PrivacySystem(bounds, PyramidCloaker(bounds))
    system.add_poi("cafe", Point(10, 12))
    system.add_user(MobileUser("alice", Point(11, 11),
                               PrivacyProfile.always(k=5)))
"""

from repro.cloaking import (
    ALL_CLOAKERS,
    CloakResult,
    Cloaker,
    GridCloaker,
    HilbertCloaker,
    IncrementalCloaker,
    MBRCloaker,
    NaiveCloaker,
    PyramidCloaker,
    QuadtreeCloaker,
)
from repro.core import (
    LocationAnonymizer,
    LocationServer,
    PrivacyProfile,
    PrivacyRequirement,
    PrivacySystem,
    example_profile,
)
from repro.engine import (
    BatchEngine,
    BruteForceOracle,
    PrivateNNQuery,
    PrivateRangeQuery,
    PublicCountQuery,
    PublicNNQuery,
    PublicRangeQuery,
    ServerSnapshot,
)
from repro.geometry import Point, Rect
from repro.mobility import MobileUser, UserMode
from repro.obs import Telemetry, disable_tracing, enable_tracing, get_telemetry
from repro.queries.spec import (
    CountSpec,
    KNNSpec,
    NNSpec,
    QuerySpec,
    RangeSpec,
    dump_specs,
    load_specs,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Point",
    "Rect",
    "PrivacyProfile",
    "PrivacyRequirement",
    "example_profile",
    "MobileUser",
    "UserMode",
    "Cloaker",
    "CloakResult",
    "NaiveCloaker",
    "MBRCloaker",
    "QuadtreeCloaker",
    "GridCloaker",
    "PyramidCloaker",
    "HilbertCloaker",
    "IncrementalCloaker",
    "ALL_CLOAKERS",
    "LocationAnonymizer",
    "LocationServer",
    "PrivacySystem",
    "BatchEngine",
    "BruteForceOracle",
    "ServerSnapshot",
    "PrivateRangeQuery",
    "PrivateNNQuery",
    "PublicRangeQuery",
    "PublicNNQuery",
    "PublicCountQuery",
    "Telemetry",
    "get_telemetry",
    "enable_tracing",
    "disable_tracing",
    "QuerySpec",
    "RangeSpec",
    "NNSpec",
    "KNNSpec",
    "CountSpec",
    "dump_specs",
    "load_specs",
]
