"""Linkage (tracking) attacks across successive cloaks.

Section 2.1's fourth category — avoiding location *tracking* — points at a
temporal weakness the snapshot algorithms do not address: an adversary who
watches the same pseudonym's successive cloaked regions can intersect them
with a maximum-speed reachability constraint and shrink the victim's
feasible area far below any single region.

The attack maintains the feasible set F_t:

    F_0 = R_0
    F_t = R_t ∩ expand(F_(t-1), v_max * dt)

where ``expand`` is the Minkowski expansion (rectangular over-approximation
of the reachable set, sound because it only over-estimates what the victim
could reach).  The shrinkage ratio area(F_t)/area(R_t) quantifies how much
anonymity the update stream erodes (experiment E10's temporal column).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.rect import Rect


@dataclass(frozen=True)
class LinkageStep:
    """One step of a tracking attack.

    Attributes:
        observed: the region published at this step.
        feasible: the adversary's refined feasible region (subset of
            ``observed``), or ``None`` when the constraint system became
            inconsistent (victim cannot move that fast — model mismatch).
    """

    observed: Rect
    feasible: Rect | None

    @property
    def shrinkage(self) -> float:
        """area(feasible) / area(observed); 1.0 means nothing was learned.

        Degenerate observed regions (area zero) count as fully leaked
        (0.0) because the adversary knows the location exactly either way.
        """
        if self.feasible is None:
            return 1.0
        if self.observed.area == 0.0:
            return 0.0
        return self.feasible.area / self.observed.area


class MaxSpeedLinkageAttack:
    """Stateful tracker applying the reachability-intersection refinement.

    Args:
        max_speed: the adversary's bound on the victim's speed.  Sound
            whenever it is >= the victim's true speed; tighter bounds leak
            more.
    """

    def __init__(self, max_speed: float) -> None:
        if max_speed < 0:
            raise ValueError("max_speed must be non-negative")
        self.max_speed = max_speed
        self._feasible: Rect | None = None
        self._last_t: float | None = None
        self.steps: list[LinkageStep] = []

    def observe(self, t: float, region: Rect) -> LinkageStep:
        """Feed the next published region; returns the refined step."""
        if self._last_t is not None and t < self._last_t:
            raise ValueError("observations must be time-ordered")
        if self._feasible is None or self._last_t is None:
            feasible: Rect | None = region
        else:
            reach = self.max_speed * (t - self._last_t)
            feasible = self._feasible.expanded(reach).intersection(region)
        # An empty intersection means the speed bound was wrong; fall back
        # to the sound answer (the observed region alone).
        if feasible is None:
            feasible = region
            step = LinkageStep(observed=region, feasible=None)
        else:
            step = LinkageStep(observed=region, feasible=feasible)
        self._feasible = feasible
        self._last_t = t
        self.steps.append(step)
        return step

    @property
    def feasible_region(self) -> Rect | None:
        """The adversary's current best estimate of where the victim is."""
        return self._feasible

    def mean_shrinkage(self) -> float:
        """Average shrinkage over all observed steps (lower = worse leak)."""
        if not self.steps:
            raise ValueError("no observations yet")
        return sum(step.shrinkage for step in self.steps) / len(self.steps)
