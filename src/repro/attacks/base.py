"""Adversary interfaces and attack outcome types.

Requirement 2 of Section 5: "an adversary should not be able to do reverse
engineering to know the exact user location from the spatial cloaked
area."  The paper argues qualitatively that naive cloaking fails this
requirement and MBR cloaking leaks boundary information; this package turns
those arguments into measurements.

Two adversary strengths are modelled:

* a **region-only** adversary sees the cloaked region (and knows which
  algorithm produced it) — :class:`LocationAttack`;
* an **omniscient** adversary additionally knows every user's exact
  location and replays the algorithm to compute the posterior set of
  plausible issuers — :mod:`repro.attacks.posterior`.  This is the
  strongest adversary consistent with the paper's threat model (the server
  itself colluding with a data breach).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one location-inference attempt.

    Attributes:
        guess: the adversary's location estimate.
        error: distance from the guess to the victim's true location.
        region_diagonal: diagonal of the attacked region — the natural
            scale for judging the error (guessing within a tiny region is
            easy for anyone).
    """

    guess: Point
    error: float
    region_diagonal: float

    @property
    def normalized_error(self) -> float:
        """Error as a fraction of the region diagonal (0 = exact hit).

        A blind adversary guessing uniformly at random inside the region
        scores about 0.38 on average for squares; values far below that
        indicate real information leakage.
        """
        if self.region_diagonal == 0.0:
            return 0.0 if self.error == 0.0 else float("inf")
        return self.error / self.region_diagonal

    def hit_within(self, epsilon: float) -> bool:
        """Did the adversary localise the victim within ``epsilon``?"""
        return self.error <= epsilon


class LocationAttack(ABC):
    """A region-only adversary strategy."""

    #: Name used in experiment tables.
    name: str = "abstract"

    @abstractmethod
    def guess(self, region: Rect) -> Point:
        """The adversary's point estimate of the victim's location."""

    def attack(self, region: Rect, true_location: Point) -> AttackOutcome:
        """Run the attack against one cloak and score it."""
        guess = self.guess(region)
        diagonal = Point(region.min_x, region.min_y).distance_to(
            Point(region.max_x, region.max_y)
        )
        return AttackOutcome(
            guess=guess,
            error=guess.distance_to(true_location),
            region_diagonal=diagonal,
        )
