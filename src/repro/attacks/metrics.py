"""Attack evaluation harness: run an adversary suite against a cloaker.

Aggregates the per-cloak attack outcomes of :mod:`repro.attacks` into the
summary rows of experiments E2 and E10: mean normalised error of the centre
attack, boundary-residence rate, posterior anonymity, and reciprocity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.attacks.location import CenterAttack, RandomGuessAttack, on_boundary_fraction
from repro.attacks.posterior import posterior_anonymity
from repro.cloaking.base import Cloaker
from repro.core.profiles import PrivacyRequirement


@dataclass(frozen=True)
class AttackReport:
    """Aggregated attack results for one cloaking algorithm.

    Attributes:
        algorithm: cloaker name.
        k: nominal anonymity level attacked.
        center_norm_error: mean normalised error of the centre attack
            (0 = algorithm fully broken; ~0.38 = no better than random).
        random_norm_error: the blind baseline on the same cloaks.
        boundary_rate: fraction of victims sitting exactly on their
            region's boundary (the MBR leak).
        mean_posterior_anonymity: average inversion-set size.
        reciprocity_rate: fraction of cloaks with posterior >= k.
    """

    algorithm: str
    k: int
    center_norm_error: float
    random_norm_error: float
    boundary_rate: float
    mean_posterior_anonymity: float
    reciprocity_rate: float


def evaluate_attacks(
    cloaker: Cloaker,
    requirement: PrivacyRequirement,
    victims: Sequence[Hashable],
    rng: np.random.Generator | None = None,
    posterior_sample: int | None = 25,
) -> AttackReport:
    """Run the full attack suite against ``cloaker``.

    Args:
        cloaker: algorithm under attack, already loaded with its users.
        requirement: the privacy requirement every victim uses.
        victims: users to attack.
        rng: randomness for the blind baseline.
        posterior_sample: cap on victims used for the (expensive)
            posterior-anonymity replay; ``None`` replays all victims.
    """
    if not victims:
        raise ValueError("no victims to attack")
    rng = rng if rng is not None else np.random.default_rng(0)
    center = CenterAttack()
    blind = RandomGuessAttack(rng)

    cloaks = [(cloaker.cloak(v, requirement).region, cloaker.location_of(v)) for v in victims]
    center_errors = [center.attack(r, p).normalized_error for r, p in cloaks]
    blind_errors = [blind.attack(r, p).normalized_error for r, p in cloaks]

    posterior_victims = list(victims)
    if posterior_sample is not None and len(posterior_victims) > posterior_sample:
        idx = rng.choice(len(posterior_victims), size=posterior_sample, replace=False)
        posterior_victims = [posterior_victims[i] for i in idx]
    posteriors = [
        posterior_anonymity(cloaker, v, requirement) for v in posterior_victims
    ]

    return AttackReport(
        algorithm=cloaker.name,
        k=requirement.k,
        center_norm_error=float(np.mean(center_errors)),
        random_norm_error=float(np.mean(blind_errors)),
        boundary_rate=on_boundary_fraction(cloaks),
        mean_posterior_anonymity=float(
            np.mean([p.posterior_anonymity for p in posteriors])
        ),
        reciprocity_rate=float(np.mean([p.is_reciprocal for p in posteriors])),
    )
