"""Streaming (incremental) forms of the offline attack estimators.

The attack library runs offline: :class:`~repro.attacks.density.
DensityModel` is fitted on a finished point sample, :class:`~repro.
attacks.linkage.MaxSpeedLinkageAttack` keeps every step it ever saw, and
:func:`~repro.attacks.posterior.posterior_anonymity` replays the cloaker
per victim.  A *monitor* (repro.obs.risk) needs the same estimates
maintained event-by-event in bounded memory while the system serves
traffic.  This module provides that streaming interface; the batch
estimators stay untouched and serve as the conformance oracles
(``tests/property/test_prop_risk_streaming.py`` proves agreement on
identical observation sequences).

Three adapters:

- :class:`StreamingDensityModel` — a :class:`DensityModel` whose grid is
  maintained under add/move/retire updates instead of one-shot ``fit``;
  at every point it equals ``DensityModel().fit(current positions)``.
- :class:`StreamingLinkageTracker` — the max-speed reachability
  intersection in O(1) memory (running shrinkage sum instead of the
  unbounded ``steps`` list); step-for-step identical to
  :class:`MaxSpeedLinkageAttack`.
- :class:`StreamingPosteriorIndex` — rolling region-bucket index
  approximating the inversion set: users currently publishing an equal
  region form one anonymity bucket.  Under uniform requirements and a
  deterministic snapshot cloaker this *is* the inversion set (every user
  in the published region R with cloak(user) == R publishes R), which
  the conformance suite checks against :func:`posterior_anonymity`.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Mapping

from repro.attacks.density import DensityModel
from repro.attacks.posterior import regions_equal
from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Rounding (decimal places) used to key regions for exact-bucket
#: grouping; matches the 1e-9 tolerance of ``regions_equal``.
_KEY_DECIMALS = 9


class StreamingDensityModel(DensityModel):
    """A density grid maintained incrementally under population churn.

    Inherits every estimator (``posterior_in``, ``map_point``,
    ``effective_anonymity``) unchanged — only the way counts enter the
    grid differs.  Out-of-bounds positions are tracked but count nothing,
    mirroring ``fit``'s skip, so a later move into bounds is picked up.
    """

    def __init__(self, bounds: Rect, resolution: int = 32) -> None:
        super().__init__(bounds, resolution)
        self._cells: dict[Hashable, tuple[int, int] | None] = {}

    def _cell_of(self, x: float, y: float) -> tuple[int, int] | None:
        if not self.bounds.contains_point(Point(x, y)):
            return None
        res = self.resolution
        col = min(int((x - self.bounds.min_x) / self.bounds.width * res), res - 1)
        row = min(int((y - self.bounds.min_y) / self.bounds.height * res), res - 1)
        return row, col

    def admit(self, user: Hashable, x: float, y: float) -> None:
        """Start counting ``user`` at (x, y); re-admission moves instead."""
        if user in self._cells:
            self.move(user, x, y)
            return
        cell = self._cell_of(x, y)
        self._cells[user] = cell
        if cell is not None:
            self._counts[cell] += 1

    def move(self, user: Hashable, x: float, y: float) -> None:
        """Shift ``user``'s count to the cell containing the new position.

        Unknown users are ignored: the monitor only models the admitted
        (anonymizer-side) population, not passive world members.
        """
        old = self._cells.get(user)
        if user not in self._cells:
            return
        new = self._cell_of(x, y)
        if new == old:
            return
        if old is not None:
            self._counts[old] -= 1
        if new is not None:
            self._counts[new] += 1
        self._cells[user] = new

    def retire(self, user: Hashable) -> None:
        """Stop counting ``user`` (no-op when unknown)."""
        cell = self._cells.pop(user, None)
        if cell is not None:
            self._counts[cell] -= 1

    @property
    def population(self) -> int:
        """Users currently tracked (in- or out-of-bounds)."""
        return len(self._cells)


class StreamingLinkageTracker:
    """Constant-memory max-speed reachability tracker for one pseudonym.

    The same refinement as :class:`MaxSpeedLinkageAttack`::

        F_0 = R_0
        F_t = R_t ∩ expand(F_(t-1), v_max * (t - t_prev))

    but instead of accumulating :class:`LinkageStep` values it keeps a
    running shrinkage sum, so a tracker can live as long as its pseudonym
    does.  ``observe`` returns the step's shrinkage ratio
    (area(feasible)/area(observed); 1.0 = nothing learned, and also the
    sound fallback when the speed bound proves inconsistent).
    """

    __slots__ = (
        "max_speed",
        "_feasible",
        "_last_t",
        "steps_seen",
        "inconsistent_steps",
        "_shrinkage_sum",
        "last_shrinkage",
    )

    def __init__(self, max_speed: float) -> None:
        if max_speed < 0:
            raise ValueError("max_speed must be non-negative")
        self.max_speed = max_speed
        self._feasible: Rect | None = None
        self._last_t: float | None = None
        self.steps_seen = 0
        self.inconsistent_steps = 0
        self._shrinkage_sum = 0.0
        self.last_shrinkage = 1.0

    def observe(self, t: float, region: Rect) -> float:
        if self._last_t is not None and t < self._last_t:
            raise ValueError("observations must be time-ordered")
        if self._feasible is None or self._last_t is None:
            feasible: Rect | None = region
        else:
            reach = self.max_speed * (t - self._last_t)
            feasible = self._feasible.expanded(reach).intersection(region)
        if feasible is None:
            # Inconsistent speed bound: fall back to the observed region
            # alone and report the "nothing learned" ratio, exactly as
            # LinkageStep(feasible=None).shrinkage does.
            feasible = region
            shrinkage = 1.0
            self.inconsistent_steps += 1
        elif region.area == 0.0:
            shrinkage = 0.0
        else:
            shrinkage = feasible.area / region.area
        self._feasible = feasible
        self._last_t = t
        self.steps_seen += 1
        self._shrinkage_sum += shrinkage
        self.last_shrinkage = shrinkage
        return shrinkage

    @property
    def feasible_region(self) -> Rect | None:
        return self._feasible

    def mean_shrinkage(self) -> float:
        if not self.steps_seen:
            raise ValueError("no observations yet")
        return self._shrinkage_sum / self.steps_seen


def _region_key(region: Rect) -> tuple[float, float, float, float]:
    return (
        round(region.min_x, _KEY_DECIMALS),
        round(region.min_y, _KEY_DECIMALS),
        round(region.max_x, _KEY_DECIMALS),
        round(region.max_y, _KEY_DECIMALS),
    )


class StreamingPosteriorIndex:
    """Rolling anonymity buckets: users grouped by equal published region.

    Maintained from ``region.published`` events alone, in O(population)
    memory.  The size of a user's bucket is the streaming estimate of her
    posterior anonymity against the region-matching adversary; under
    uniform requirements and publish-all snapshots it equals the full
    inversion set of :func:`repro.attacks.posterior.posterior_anonymity`.
    """

    def __init__(self) -> None:
        self._buckets: dict[tuple, set[Hashable]] = {}
        self._rects: dict[tuple, Rect] = {}
        self._user_key: dict[Hashable, tuple] = {}

    def publish(self, user: Hashable, region: Rect) -> None:
        """Record ``user``'s current published region (replaces any prior)."""
        key = _region_key(region)
        old = self._user_key.get(user)
        if old == key:
            return
        if old is not None:
            self._drop_from_bucket(user, old)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = self._buckets[key] = set()
            self._rects[key] = region
        bucket.add(user)
        self._user_key[user] = key

    def retire(self, user: Hashable) -> None:
        """Forget ``user``'s published region (no-op when unknown)."""
        key = self._user_key.pop(user, None)
        if key is not None:
            self._drop_from_bucket(user, key)

    def _drop_from_bucket(self, user: Hashable, key: tuple) -> None:
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        bucket.discard(user)
        if not bucket:
            del self._buckets[key]
            del self._rects[key]

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------

    def anonymity_of(self, user: Hashable) -> int | None:
        """Bucket size for ``user`` (None when not publishing)."""
        key = self._user_key.get(user)
        if key is None:
            return None
        return len(self._buckets[key])

    def region_of(self, user: Hashable) -> Rect | None:
        key = self._user_key.get(user)
        return self._rects[key] if key is not None else None

    @property
    def population(self) -> int:
        return len(self._user_key)

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    def mean_reidentification(self) -> float | None:
        """Mean over users of 1/bucket-size (1.0 = everyone unique)."""
        if not self._user_key:
            return None
        total = sum(
            len(bucket) * (1.0 / len(bucket))
            for bucket in self._buckets.values()
        )
        return total / len(self._user_key)

    def mean_entropy_bits(self) -> float | None:
        """Mean over users of log2(bucket-size) — uniform-posterior bits."""
        if not self._user_key:
            return None
        total = sum(
            len(bucket) * math.log2(len(bucket))
            for bucket in self._buckets.values()
        )
        return total / len(self._user_key)

    def regions(self) -> dict[Hashable, Rect]:
        """Current user -> published-region table (oracle input)."""
        return {
            user: self._rects[key] for user, key in self._user_key.items()
        }

    def recent_regions(self, limit: int = 16) -> list[Rect]:
        """The most recently created distinct regions, newest last."""
        keys = list(self._rects)
        return [self._rects[k] for k in keys[-limit:]]


def bucket_anonymity(
    regions: Mapping[Hashable, Rect],
) -> dict[Hashable, int]:
    """Batch counterpart of :class:`StreamingPosteriorIndex` (test oracle).

    Quadratic grouping with the attack library's ``regions_equal``
    tolerance: each user's anonymity is the number of users whose current
    region equals hers.
    """
    users = list(regions)
    out: dict[Hashable, int] = {}
    for user in users:
        mine = regions[user]
        out[user] = sum(
            1 for other in users if regions_equal(regions[other], mine)
        )
    return out


def fitted_density(
    bounds: Rect, resolution: int, points: Iterable[Point]
) -> DensityModel:
    """Batch counterpart of :class:`StreamingDensityModel` (test oracle)."""
    return DensityModel(bounds, resolution).fit(points)
