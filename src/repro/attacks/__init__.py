"""Adversary models quantifying cloaking information leakage (Section 5)."""

from repro.attacks.base import AttackOutcome, LocationAttack
from repro.attacks.density import DensityModel, DensityWeightedAttack
from repro.attacks.linkage import LinkageStep, MaxSpeedLinkageAttack
from repro.attacks.location import (
    BoundaryAttack,
    CenterAttack,
    RandomGuessAttack,
    distance_to_boundary,
    on_boundary_fraction,
)
from repro.attacks.metrics import AttackReport, evaluate_attacks
from repro.attacks.posterior import (
    PosteriorResult,
    posterior_anonymity,
    reciprocity_rate,
    regions_equal,
)
from repro.attacks.streaming import (
    StreamingDensityModel,
    StreamingLinkageTracker,
    StreamingPosteriorIndex,
    bucket_anonymity,
)

__all__ = [
    "AttackOutcome",
    "LocationAttack",
    "DensityModel",
    "DensityWeightedAttack",
    "CenterAttack",
    "BoundaryAttack",
    "RandomGuessAttack",
    "distance_to_boundary",
    "on_boundary_fraction",
    "PosteriorResult",
    "posterior_anonymity",
    "reciprocity_rate",
    "regions_equal",
    "MaxSpeedLinkageAttack",
    "LinkageStep",
    "AttackReport",
    "evaluate_attacks",
    "StreamingDensityModel",
    "StreamingLinkageTracker",
    "StreamingPosteriorIndex",
    "bucket_anonymity",
]
