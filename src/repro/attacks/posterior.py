"""Posterior anonymity under an omniscient adversary.

The strongest adversary in the paper's threat model knows (a) every user's
exact location (say, via a contemporaneous data breach) and (b) the
cloaking algorithm.  Seeing a cloaked region with requirement k, she asks:
*which users could have issued this?*  The answer — the inversion set — is
every user whose own cloak under the same requirement equals the observed
region.  Its size is the *actual* anonymity delivered, as opposed to the
nominal k: an algorithm whose regions contain k users but whose inversion
sets are singletons gives no anonymity at all against this adversary.

This is the reciprocity notion later formalised by Kalnis et al. (TKDE
2007); the paper's requirement 2 is its informal ancestor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from repro.cloaking.base import Cloaker
from repro.core.profiles import PrivacyRequirement
from repro.geometry.rect import Rect

#: Geometric tolerance when comparing regions for equality.
_REGION_EPS = 1e-9


def regions_equal(a: Rect, b: Rect, eps: float = _REGION_EPS) -> bool:
    """Coordinate-wise approximate equality of two regions."""
    return (
        abs(a.min_x - b.min_x) <= eps
        and abs(a.min_y - b.min_y) <= eps
        and abs(a.max_x - b.max_x) <= eps
        and abs(a.max_y - b.max_y) <= eps
    )


@dataclass(frozen=True)
class PosteriorResult:
    """Outcome of an inversion-set computation.

    Attributes:
        victim: the user who actually issued the cloak.
        plausible_issuers: users whose cloak reproduces the observed region.
        nominal_k: the k the profile asked for.
    """

    victim: Hashable
    plausible_issuers: frozenset[Hashable]
    nominal_k: int

    @property
    def posterior_anonymity(self) -> int:
        """|inversion set| — the anonymity actually delivered."""
        return len(self.plausible_issuers)

    @property
    def anonymity_ratio(self) -> float:
        """Delivered anonymity over requested anonymity (1.0 = as promised)."""
        return self.posterior_anonymity / self.nominal_k

    @property
    def entropy_bits(self) -> float:
        """Uncertainty (bits) of a uniform posterior over plausible issuers."""
        return math.log2(self.posterior_anonymity) if self.plausible_issuers else 0.0

    @property
    def is_reciprocal(self) -> bool:
        """Did the algorithm deliver at least the promised anonymity?"""
        return self.posterior_anonymity >= self.nominal_k


def posterior_anonymity(
    cloaker: Cloaker,
    victim: Hashable,
    requirement: PrivacyRequirement,
    observed_region: Rect | None = None,
) -> PosteriorResult:
    """Inversion set of one cloak under the omniscient adversary.

    Replays the algorithm for every user inside the observed region (users
    outside it cannot have issued it — every algorithm in this library
    returns a region containing its requester) and keeps those whose region
    matches.

    Args:
        cloaker: the algorithm under attack, loaded with the population.
        victim: the user whose cloak is being attacked.
        requirement: the requirement the victim used.
        observed_region: the region the adversary saw; recomputed from the
            victim when omitted.
    """
    if observed_region is None:
        observed_region = cloaker.cloak(victim, requirement).region
    plausible: set[Hashable] = set()
    for user in cloaker.users_in(observed_region):
        candidate_region = cloaker.cloak(user, requirement).region
        if regions_equal(candidate_region, observed_region):
            plausible.add(user)
    if victim not in plausible:  # pragma: no cover - replay determinism
        plausible.add(victim)
    return PosteriorResult(
        victim=victim,
        plausible_issuers=frozenset(plausible),
        nominal_k=requirement.k,
    )


def reciprocity_rate(
    cloaker: Cloaker,
    requirement: PrivacyRequirement,
    victims: list[Hashable],
) -> float:
    """Fraction of victims for whom the delivered anonymity >= nominal k."""
    if not victims:
        raise ValueError("no victims to analyse")
    reciprocal = sum(
        1
        for victim in victims
        if posterior_anonymity(cloaker, victim, requirement).is_reciprocal
    )
    return reciprocal / len(victims)
