"""Density-weighted location inference.

The region-only attacks in :mod:`repro.attacks.location` assume the
adversary knows nothing but the region.  A more realistic adversary also
knows the *population density* of the city (census data, past traffic) —
public knowledge the anonymizer cannot hide.  Under the uniform-over-users
prior, the victim's posterior inside a cloaked region is proportional to
density, so in a skewed city the adversary guesses the densest corner of
the region, not its centre.

This quantifies a real limitation of pure spatial k-anonymity that the
paper's successors (e.g. location-diversity work) addressed: a region
covering one packed block and three empty ones is nominally k-anonymous
but effectively pins the victim to the block.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.attacks.base import LocationAttack
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class DensityModel:
    """A grid histogram of population density over the universe.

    Built from any point sample of the population (the adversary's
    background knowledge); exposes posterior statistics over query
    regions.
    """

    def __init__(self, bounds: Rect, resolution: int = 32) -> None:
        if resolution < 1:
            raise ValueError("resolution must be positive")
        if bounds.is_degenerate:
            raise ValueError("bounds must have positive area")
        self.bounds = bounds
        self.resolution = resolution
        self._counts = np.zeros((resolution, resolution))

    def fit(self, points: Iterable[Point]) -> "DensityModel":
        """Accumulate observations; returns self for chaining."""
        res = self.resolution
        for p in points:
            if not self.bounds.contains_point(p):
                continue
            col = min(int((p.x - self.bounds.min_x) / self.bounds.width * res), res - 1)
            row = min(int((p.y - self.bounds.min_y) / self.bounds.height * res), res - 1)
            self._counts[row, col] += 1
        return self

    def cell_rect(self, col: int, row: int) -> Rect:
        w = self.bounds.width / self.resolution
        h = self.bounds.height / self.resolution
        return Rect(
            self.bounds.min_x + col * w,
            self.bounds.min_y + row * h,
            self.bounds.min_x + (col + 1) * w,
            self.bounds.min_y + (row + 1) * h,
        )

    def posterior_in(self, region: Rect) -> list[tuple[Rect, float]]:
        """Posterior mass per grid cell, restricted to ``region``.

        Mass is density x overlap-area, normalised over the region.  An
        all-empty region falls back to the uniform (area-proportional)
        posterior.
        """
        cells: list[tuple[Rect, float]] = []
        weights: list[float] = []
        res = self.resolution
        for row in range(res):
            for col in range(res):
                cell = self.cell_rect(col, row)
                overlap = cell.intersection_area(region)
                if overlap <= 0.0:
                    continue
                count = self._counts[row, col]
                cells.append((cell, overlap))
                weights.append(count * overlap / cell.area)
        total = sum(weights)
        if total <= 0.0:
            area_total = sum(overlap for _, overlap in cells)
            if area_total <= 0.0:
                return [(region, 1.0)]
            return [(cell, overlap / area_total) for cell, overlap in cells]
        return [
            (cell, weight / total) for (cell, _), weight in zip(cells, weights)
        ]

    def map_point(self, region: Rect) -> Point:
        """Maximum-a-posteriori guess: centre of the heaviest cell chunk."""
        posterior = self.posterior_in(region)
        best_cell, _ = max(posterior, key=lambda item: item[1])
        chunk = best_cell.intersection(region)
        return (chunk if chunk is not None else best_cell).center

    def effective_anonymity(self, region: Rect) -> float:
        """Exponential of the posterior entropy, in "equivalent cells".

        1.0 means the posterior is a point mass (no anonymity beyond one
        cell); higher values mean the density spreads the posterior.
        """
        posterior = self.posterior_in(region)
        entropy = -sum(p * np.log(p) for _, p in posterior if p > 0)
        return float(np.exp(entropy))


class DensityWeightedAttack(LocationAttack):
    """Guess the density-weighted MAP point of the cloaked region."""

    name = "density"

    def __init__(self, model: DensityModel) -> None:
        self.model = model

    def guess(self, region: Rect) -> Point:
        return self.model.map_point(region)
