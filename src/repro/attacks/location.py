"""Region-only location attacks.

* :class:`CenterAttack` — guess the centre.  Breaks naive cloaking
  completely ("an adversary can easily deduce the exact location as being
  the middle point of the cloaked spatial region", Section 5.1); against a
  well-designed space-dependent cloaker it is no better than random.
* :class:`BoundaryAttack` — bet that the victim sits on the region
  boundary.  Exploits the MBR leak ("having the MBR indicates that there is
  at least one data point on each edge"); scored by the distance from the
  victim to the boundary, plus a helper measuring how often the victim is
  *exactly* on the boundary.
* :class:`RandomGuessAttack` — the no-information baseline every other
  attack is compared against.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import LocationAttack
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.sampling import boundary_point, uniform_point


class CenterAttack(LocationAttack):
    """Guess the centre of the cloaked region."""

    name = "center"

    def guess(self, region: Rect) -> Point:
        return region.center


class RandomGuessAttack(LocationAttack):
    """Uniform random guess inside the region (the blind baseline)."""

    name = "random"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def guess(self, region: Rect) -> Point:
        return uniform_point(region, self._rng)


class BoundaryAttack(LocationAttack):
    """Guess a point on the region boundary.

    The point estimate is a uniform boundary sample (an adversary has no
    way to pick the right edge), so the interesting statistic is not the
    raw error but :func:`on_boundary_fraction` aggregated over many
    cloaks.  Every MBR edge carries *some* group member exactly, so group
    membership leaks; the requester herself — being the centre of her kNN
    group — sits on an edge less often, but still an order of magnitude
    more often than inside a space-partitioned region, where the boundary
    carries no data at all.
    """

    name = "boundary"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def guess(self, region: Rect) -> Point:
        return boundary_point(region, self._rng)


def distance_to_boundary(region: Rect, location: Point) -> float:
    """Distance from an interior point to the region's boundary."""
    if not region.contains_point(location):
        raise ValueError(f"{location} is not inside {region}")
    return min(
        location.x - region.min_x,
        region.max_x - location.x,
        location.y - region.min_y,
        region.max_y - location.y,
    )


def on_boundary_fraction(
    cloaks: list[tuple[Rect, Point]], tolerance: float = 1e-9
) -> float:
    """Fraction of (region, true location) pairs with the victim on the edge.

    The quantitative form of the paper's MBR information-leak argument.
    """
    if not cloaks:
        raise ValueError("no cloaks to analyse")
    on_edge = sum(
        1 for region, location in cloaks if region.on_boundary(location, tolerance)
    )
    return on_edge / len(cloaks)
