"""Public k-nearest-neighbours queries over private data (extension).

Generalises Figure 6b from "my nearest mobile user" to "my k nearest
mobile users" — the query a dispatcher actually issues ("send the three
closest couriers").  Over cloaked regions the answer is probabilistic:

* **pruning** — user ``o`` can be among the k nearest only if fewer than
  ``k`` other users are *guaranteed* closer; user ``o'`` is guaranteed
  closer when ``max_dist(q, R_o') < min_dist(q, R_o)``;
* **probabilities** — P(o is in the true k-NN set) estimated by joint
  Monte-Carlo draws under the uniform-in-region model, exactly like the
  1-NN case but tallying top-k membership.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.core.errors import QueryError
from repro.core.stores import PrivateStore
from repro.geometry.distances import max_dist, min_dist
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class PublicKNNResult:
    """Probabilistic k-NN answer over cloaked users.

    Attributes:
        query: the public query point.
        k: neighbours requested.
        probabilities: candidate -> P(candidate in the true k-NN set).
            Probabilities sum to ~k (k slots are always filled when the
            store holds at least k users).
        samples: Monte-Carlo draws used (0 when pruning already decided).
    """

    query: Point
    k: int
    probabilities: Mapping[Hashable, float]
    samples: int

    @property
    def candidates(self) -> set[Hashable]:
        return {o for o, p in self.probabilities.items() if p > 0.0}

    def top(self) -> list[Hashable]:
        """The k most probable members (the dispatcher's short-list)."""
        ranked = sorted(self.probabilities.items(), key=lambda item: -item[1])
        return [o for o, _ in ranked[: self.k]]

    @property
    def certain_members(self) -> set[Hashable]:
        """Users guaranteed to be in the k-NN set (probability 1)."""
        return {o for o, p in self.probabilities.items() if p >= 1.0 - 1e-12}

    @property
    def expected_overlap(self) -> float:
        """Expected |reported top-k ∩ true k-NN| (sums the top-k probs)."""
        ranked = sorted(self.probabilities.values(), reverse=True)
        return float(sum(ranked[: self.k]))


def knn_candidate_users(
    store: PrivateStore, query: Point, k: int
) -> tuple[list[Hashable], float]:
    """Candidates and the pruning bound for a public k-NN query.

    The bound is the k-th smallest ``max_dist``: k users are certainly
    within it, so anyone whose whole region lies beyond can never crack
    the top k.
    """
    if len(store) == 0:
        raise QueryError("k-NN query over an empty private store")
    if k < 1:
        raise QueryError(f"k must be positive, got {k}")
    k = min(k, len(store))
    worst_cases = sorted(max_dist(query, region) for _, region in store.items())
    bound = worst_cases[k - 1]
    candidates = [
        object_id
        for object_id, region in store.items()
        if min_dist(query, region) <= bound
    ]
    return candidates, bound


def public_knn_query(
    store: PrivateStore,
    query: Point,
    k: int,
    samples: int = 4096,
    rng: np.random.Generator | None = None,
) -> PublicKNNResult:
    """Probabilistic k nearest private users to ``query``.

    Args:
        store: the cloaked private data store.
        query: the public query location.
        k: neighbours wanted (capped at the store size).
        samples: Monte-Carlo draws; skipped when pruning leaves exactly k.
        rng: random generator (deterministic default when omitted).
    """
    if samples < 1:
        raise QueryError("samples must be positive")
    candidates, _ = knn_candidate_users(store, query, k)
    k = min(k, len(store))
    if len(candidates) == k:
        return PublicKNNResult(
            query=query,
            k=k,
            probabilities={c: 1.0 for c in candidates},
            samples=0,
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    regions = [store.region_of(c) for c in candidates]
    probs = estimate_knn_probabilities(regions, query, k, samples, rng)
    return PublicKNNResult(
        query=query,
        k=k,
        probabilities=dict(zip(candidates, probs)),
        samples=samples,
    )


def estimate_knn_probabilities(
    regions: Sequence[Rect],
    query: Point,
    k: int,
    samples: int,
    rng: np.random.Generator,
) -> list[float]:
    """Monte-Carlo P(region i's user is among the k nearest).

    One joint draw places every user uniformly in her region; the k
    smallest distances win that draw.  Vectorised over all draws.
    """
    n = len(regions)
    if n == 0:
        return []
    k = min(k, n)
    xs = np.empty((n, samples))
    ys = np.empty((n, samples))
    for i, region in enumerate(regions):
        xs[i] = (
            rng.uniform(region.min_x, region.max_x, size=samples)
            if region.width > 0
            else region.min_x
        )
        ys[i] = (
            rng.uniform(region.min_y, region.max_y, size=samples)
            if region.height > 0
            else region.min_y
        )
    d2 = (xs - query.x) ** 2 + (ys - query.y) ** 2
    # Indices of the k smallest distances per sample column.
    winners = np.argpartition(d2, k - 1, axis=0)[:k, :]
    counts = np.bincount(winners.ravel(), minlength=n)
    return [float(c) / samples for c in counts]


def exact_knn_users(
    exact_locations: dict[Hashable, Point], query: Point, k: int
) -> list[Hashable]:
    """Ground truth from exact locations (evaluation only)."""
    if not exact_locations:
        raise QueryError("k-NN query over an empty population")
    ranked = sorted(
        exact_locations, key=lambda i: exact_locations[i].distance_to(query)
    )
    return ranked[: min(k, len(ranked))]
