"""Privacy-aware query processing (Section 6 of the paper).

The two novel query types:

* private query over public data — :mod:`~repro.queries.private_range`,
  :mod:`~repro.queries.private_nn`;
* public query over private data — :mod:`~repro.queries.public_range`,
  :mod:`~repro.queries.public_nn`;

plus probabilistic answer formats and continuous (incremental) variants.
"""

from repro.queries.continuous import (
    ContinuousCountMonitor,
    ContinuousPrivateRange,
    RangeDelta,
)
from repro.queries.continuous_nn import ContinuousPrivateNN
from repro.queries.private_knn import (
    PrivateKNNResult,
    exact_knn_answer,
    private_knn_query,
    refine_knn_candidates,
)
from repro.queries.private_nn import (
    PrivateNNResult,
    exact_nn_answer,
    nn_probabilities,
    private_nn_query,
    pruning_radius,
    refine_nn_candidates,
)
from repro.queries.private_range import (
    PrivateRangeResult,
    exact_range_answer,
    private_range_query,
    refine_range_candidates,
)
from repro.queries.probabilistic import (
    CountAnswer,
    NearestAnswer,
    poisson_binomial_pmf,
)
from repro.queries.public_knn import (
    PublicKNNResult,
    estimate_knn_probabilities,
    exact_knn_users,
    knn_candidate_users,
    public_knn_query,
)
from repro.queries.public_nn import (
    PublicNNResult,
    certain_nn_user,
    estimate_nn_probabilities,
    exact_nn_user,
    nn_candidate_users,
    public_nn_query,
)
from repro.queries.public_range import (
    exact_range_count,
    membership_probability,
    naive_range_count,
    public_range_count,
)
from repro.queries.spec import (
    CountSpec,
    KNNSpec,
    NNSpec,
    QuerySpec,
    RangeSpec,
    dump_specs,
    is_user_bound,
    load_specs,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "PrivateRangeResult",
    "private_range_query",
    "refine_range_candidates",
    "exact_range_answer",
    "PrivateKNNResult",
    "private_knn_query",
    "refine_knn_candidates",
    "exact_knn_answer",
    "PrivateNNResult",
    "private_nn_query",
    "pruning_radius",
    "nn_probabilities",
    "refine_nn_candidates",
    "exact_nn_answer",
    "CountAnswer",
    "NearestAnswer",
    "poisson_binomial_pmf",
    "membership_probability",
    "public_range_count",
    "naive_range_count",
    "exact_range_count",
    "PublicNNResult",
    "public_nn_query",
    "nn_candidate_users",
    "certain_nn_user",
    "estimate_nn_probabilities",
    "exact_nn_user",
    "ContinuousCountMonitor",
    "ContinuousPrivateRange",
    "ContinuousPrivateNN",
    "RangeDelta",
    "PublicKNNResult",
    "public_knn_query",
    "knn_candidate_users",
    "estimate_knn_probabilities",
    "exact_knn_users",
    "QuerySpec",
    "RangeSpec",
    "NNSpec",
    "KNNSpec",
    "CountSpec",
    "is_user_bound",
    "spec_to_dict",
    "spec_from_dict",
    "dump_specs",
    "load_specs",
]
