"""Continuous spatio-temporal queries with incremental evaluation.

Section 5.3 of the paper: "processing the continuous queries at the
location-based server should be done incrementally".  Two continuous query
kinds are implemented, one per novel query type of Section 6:

* :class:`ContinuousCountMonitor` — a standing *public query over private
  data* ("how many users are in this district, continuously?").  Each
  cloaked-region update adjusts the probabilistic count in O(1) instead of
  recomputing over every user (experiment E12 measures the gap).
* :class:`ContinuousPrivateRange` — a standing *private query over public
  data* ("keep me posted on restaurants within r of me") for a moving,
  cloaked user.  On every region update the server ships only the
  candidate-set *delta* (+joined / -left), the incremental answer
  maintenance the SINA line of work applies to exact queries, here adapted
  to cloaked regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.core.errors import QueryError
from repro.core.stores import PrivateStore, PublicStore
from repro.geometry.rect import Rect
from repro.queries.private_range import private_range_query
from repro.queries.probabilistic import CountAnswer
from repro.queries.public_range import membership_probability


class ContinuousCountMonitor:
    """Standing probabilistic count over a fixed window.

    Maintains per-object membership probabilities; region updates touch one
    entry.  The expected count is kept as a running sum, so reading the
    answer is O(1); the exact PMF/interval formats are materialised on
    demand from the stored probabilities.
    """

    def __init__(self, window: Rect) -> None:
        if window.area < 0:  # pragma: no cover - Rect forbids this
            raise QueryError("query window must be a valid rectangle")
        self.window = window
        self._probabilities: dict[Hashable, float] = {}
        self._expected = 0.0
        self.updates_processed = 0

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def on_region_update(self, object_id: Hashable, region: Rect) -> float:
        """Process one cloaked-region update; returns the probability delta."""
        new_p = membership_probability(region, self.window)
        old_p = self._probabilities.get(object_id, 0.0)
        if region.intersects(self.window):
            # Touching regions stay in the answer with probability 0 so the
            # interval's "possible" end matches a fresh snapshot query.
            self._probabilities[object_id] = new_p
        else:
            self._probabilities.pop(object_id, None)
        self._expected += new_p - old_p
        self.updates_processed += 1
        return new_p - old_p

    def on_object_removed(self, object_id: Hashable) -> float:
        """Process a user unsubscribing; returns the probability delta."""
        old_p = self._probabilities.pop(object_id, 0.0)
        self._expected -= old_p
        self.updates_processed += 1
        return -old_p

    def seed_from_store(self, store: PrivateStore) -> None:
        """Initialise from the current contents of a private store."""
        for object_id, region in store.items():
            self.on_region_update(object_id, region)

    # ------------------------------------------------------------------
    # Answers
    # ------------------------------------------------------------------

    @property
    def expected_count(self) -> float:
        """The running absolute-value answer (O(1) read)."""
        return self._expected

    def answer(self) -> CountAnswer:
        """Full probabilistic answer (all three formats of Figure 6a)."""
        return CountAnswer(dict(self._probabilities))

    def recompute(self, store: PrivateStore) -> CountAnswer:
        """Non-incremental full re-evaluation (the E12 baseline)."""
        probabilities: dict[Hashable, float] = {
            object_id: membership_probability(region, self.window)
            for object_id, region in store.items()
            if region.intersects(self.window)
        }
        return CountAnswer(probabilities)


@dataclass(frozen=True)
class RangeDelta:
    """Incremental update to a continuous private range answer."""

    joined: tuple[Hashable, ...]
    left: tuple[Hashable, ...]

    @property
    def transmission_size(self) -> int:
        """Objects shipped for this update (both signs count)."""
        return len(self.joined) + len(self.left)

    @property
    def is_empty(self) -> bool:
        return not self.joined and not self.left


@dataclass
class ContinuousPrivateRange:
    """Standing private range query for one moving, cloaked user.

    Attributes:
        store: the public data store being monitored.
        radius: the range predicate.
        method: candidate method forwarded to the snapshot query.
    """

    store: PublicStore
    radius: float
    method: str = "exact"
    _candidates: set[Hashable] = field(default_factory=set, init=False)
    _region: Rect | None = field(default=None, init=False)
    deltas_sent: int = field(default=0, init=False)
    objects_shipped: int = field(default=0, init=False)

    def on_region_update(self, region: Rect) -> RangeDelta:
        """New cloaked region for the subscribed user; returns the delta.

        The client applies ``joined``/``left`` to its cached candidate list,
        so transmission is proportional to *change*, not answer size.
        """
        result = private_range_query(self.store, region, self.radius, self.method)
        new_candidates = set(result.candidates)
        joined = tuple(sorted(new_candidates - self._candidates, key=repr))
        left = tuple(sorted(self._candidates - new_candidates, key=repr))
        self._candidates = new_candidates
        self._region = region
        delta = RangeDelta(joined=joined, left=left)
        self.deltas_sent += 1
        self.objects_shipped += delta.transmission_size
        return delta

    def on_public_update(self, object_id: Hashable) -> RangeDelta:
        """A public object moved/appeared/left; refresh the affected entry."""
        if self._region is None:
            raise QueryError("continuous query has no region yet")
        return self.on_region_update(self._region)

    @property
    def candidates(self) -> set[Hashable]:
        """The client's current candidate view."""
        return set(self._candidates)

    @property
    def full_answer_cost(self) -> int:
        """What re-shipping the whole candidate set would have cost."""
        return len(self._candidates)
