"""Private k-nearest-neighbour queries over public data (extension).

The paper's Figure 5b treats 1-NN; real LBS requests are usually "the 5
nearest restaurants".  This module generalises the candidate-set machinery:
the server must return every object that could be among the k nearest of
*some* point of the cloaked region R.

Soundness rests on two facts:

* the k-th-NN distance function ``d_k(p)`` is 1-Lipschitz, so for every
  point ``p`` of R, ``d_k(p) <= max over corners c of d_k(c) +
  in_radius`` where ``in_radius`` is the largest distance from any point
  of R to its nearest corner — giving a sound global pruning radius;
* if ``k`` distinct competitors each beat object ``o`` at *all four
  corners* of R, then (half-plane convexity, as in the 1-NN filter) all
  ``k`` beat ``o`` everywhere in R, so ``o`` is never in any point's
  k-NN set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Literal

from repro.core.errors import QueryError
from repro.core.stores import PublicStore
from repro.geometry.distances import min_dist
from repro.geometry.point import Point
from repro.geometry.rect import Rect

KNNCandidateMethod = Literal["range", "filter"]


@dataclass(frozen=True)
class PrivateKNNResult:
    """Server-side answer to a private k-NN query.

    Attributes:
        region: the cloaked query region.
        k: how many neighbours the user wants.
        candidates: objects that may appear in the user's true k-NN list.
        method: candidate generator used.
        pruning_radius: the sound global radius used for the range stage.
    """

    region: Rect
    k: int
    candidates: tuple[Hashable, ...]
    method: KNNCandidateMethod
    pruning_radius: float

    @property
    def transmission_size(self) -> int:
        return len(self.candidates)


def _kth_nn_distance(store: PublicStore, point: Point, k: int) -> float:
    """Distance from ``point`` to its k-th nearest object."""
    distance = 0.0
    found = 0
    for _, d in store.nearest_iter(point):
        distance = d
        found += 1
        if found == k:
            return distance
    return distance  # fewer than k objects: the farthest one


def _corner_in_radius(region: Rect) -> float:
    """max over p in region of (distance from p to its nearest corner).

    Attained at the centre, where the nearest corner is half a diagonal
    away.
    """
    return math.hypot(region.width, region.height) / 2.0


def private_knn_query(
    store: PublicStore,
    region: Rect,
    k: int,
    method: KNNCandidateMethod = "filter",
) -> PrivateKNNResult:
    """Candidate set of a private k-NN query.

    Guarantee: for every point ``p`` of ``region``, all k true nearest
    objects of ``p`` are in the candidate set.

    Args:
        store: the public data store.
        region: the cloaked region from the anonymizer.
        k: neighbours requested; must be >= 1 (capped at the store size).
        method: ``"range"`` radius-only, or ``"filter"`` with the
            corner-dominance refinement.
    """
    if k < 1:
        raise QueryError(f"k must be positive, got {k}")
    if len(store) == 0:
        raise QueryError("k-NN query over an empty public store")
    k = min(k, len(store))
    radius = max(
        _kth_nn_distance(store, corner, k) for corner in region.corners
    ) + _corner_in_radius(region)
    window = region.expanded(radius + 1e-9 * (1.0 + radius))
    ids = [
        i
        for i in store.range_query(window)
        if min_dist(store.point_of(i), region) <= radius
    ]
    if method == "filter":
        ids = _k_dominance_filter(store, region, ids, k)
    elif method != "range":
        raise QueryError(f"unknown candidate method: {method!r}")
    return PrivateKNNResult(
        region=region,
        k=k,
        candidates=tuple(ids),
        method=method,
        pruning_radius=radius,
    )


def _k_dominance_filter(
    store: PublicStore, region: Rect, ids: list[Hashable], k: int
) -> list[Hashable]:
    """Drop ``o`` when k competitors each beat it everywhere in the region."""
    corners = region.corners
    corner_d2 = {
        i: tuple(store.point_of(i).squared_distance_to(c) for c in corners)
        for i in ids
    }
    kept = []
    for i in ids:
        own = corner_d2[i]
        dominators = 0
        for j in ids:
            if j == i:
                continue
            if all(d < o for d, o in zip(corner_d2[j], own)):
                dominators += 1
                if dominators >= k:
                    break
        if dominators < k:
            kept.append(i)
    return kept


def refine_knn_candidates(
    store: PublicStore,
    result: PrivateKNNResult,
    exact_location: Point,
) -> list[Hashable]:
    """Client-side refinement: the true k-NN list from the candidates."""
    if not result.candidates:
        raise QueryError("cannot refine an empty candidate set")
    ranked = sorted(
        result.candidates,
        key=lambda i: store.point_of(i).distance_to(exact_location),
    )
    return ranked[: result.k]


def exact_knn_answer(store: PublicStore, exact_location: Point, k: int) -> list[Hashable]:
    """Ground truth: the non-private k-NN list (evaluation only)."""
    if len(store) == 0:
        raise QueryError("k-NN query over an empty public store")
    return store.nearest(exact_location, k)
