"""Continuous private nearest-neighbour queries (extension).

The third continuous query kind: a moving, cloaked user keeps a standing
"my nearest gas station" subscription.  The server recomputes the NN
candidate set whenever the user's cloaked region changes and ships only
the delta, like :class:`~repro.queries.continuous.ContinuousPrivateRange`
does for range predicates.  An optional *stability* optimisation skips
recomputation entirely while the new region is contained in the previous
one (a shrinking region can only shrink the candidate set, so the cached
answer stays sound — it just may ship a few extra candidates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from repro.core.errors import QueryError
from repro.core.stores import PublicStore
from repro.geometry.rect import Rect
from repro.queries.continuous import RangeDelta
from repro.queries.private_nn import NNCandidateMethod, private_nn_query


@dataclass
class ContinuousPrivateNN:
    """Standing private NN query for one moving, cloaked user.

    Attributes:
        store: the public data store being monitored.
        method: candidate method forwarded to the snapshot query.
        lazy_shrink: keep the cached (sound, slightly larger) candidate
            set when the region shrinks inside the previous one instead of
            recomputing.
    """

    store: PublicStore
    method: NNCandidateMethod = "filter"
    lazy_shrink: bool = False
    _candidates: set[Hashable] = field(default_factory=set, init=False)
    _region: Rect | None = field(default=None, init=False)
    deltas_sent: int = field(default=0, init=False)
    objects_shipped: int = field(default=0, init=False)
    recomputations: int = field(default=0, init=False)

    def on_region_update(self, region: Rect) -> RangeDelta:
        """New cloaked region; returns the candidate-set delta."""
        if (
            self.lazy_shrink
            and self._region is not None
            and self._region.contains_rect(region)
        ):
            # Sound reuse: every NN of a point in the smaller region was an
            # NN candidate of the larger one.
            self._region = region
            self.deltas_sent += 1
            return RangeDelta(joined=(), left=())
        result = private_nn_query(self.store, region, self.method)
        self.recomputations += 1
        new_candidates = set(result.candidates)
        joined = tuple(sorted(new_candidates - self._candidates, key=repr))
        left = tuple(sorted(self._candidates - new_candidates, key=repr))
        self._candidates = new_candidates
        self._region = region
        delta = RangeDelta(joined=joined, left=left)
        self.deltas_sent += 1
        self.objects_shipped += delta.transmission_size
        return delta

    @property
    def candidates(self) -> set[Hashable]:
        """The client's current candidate view."""
        return set(self._candidates)

    @property
    def region(self) -> Rect:
        if self._region is None:
            raise QueryError("continuous NN query has no region yet")
        return self._region

    @property
    def full_answer_cost(self) -> int:
        return len(self._candidates)
