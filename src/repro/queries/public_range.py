"""Public range queries over private data (Section 6.2.2, Figure 6a).

An untrusted party (say, an administrator) asks "how many mobile users are
inside window Q?".  The server stores only cloaked regions, so each private
object contributes *probabilistically*: under the paper's stated assumption
that the exact location is uniform inside the cloaked region, object ``i``
with region ``R_i`` lies in Q with probability

    p_i = area(R_i ∩ Q) / area(R_i).

The naive alternative the paper criticises — treat every overlapping region
as a full member — is provided as :func:`naive_range_count` and is the
baseline of experiment E7 (on the paper's own Figure 6a it answers 5 where
the probabilistic answer is 2.7).
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.core.stores import PrivateStore
from repro.geometry.rect import Rect
from repro.queries.probabilistic import CountAnswer


def _axis_fraction(lo: float, hi: float, window_lo: float, window_hi: float) -> float:
    """Fraction of the uniform mass on [lo, hi] falling inside the window.

    A zero-length side is an exact coordinate: fraction is 0 or 1 by
    (inclusive) containment.
    """
    if hi == lo:
        return 1.0 if window_lo <= lo <= window_hi else 0.0
    overlap = min(hi, window_hi) - max(lo, window_lo)
    return min(1.0, max(0.0, overlap) / (hi - lo))


def membership_probability(region: Rect, window: Rect) -> float:
    """P(an object uniform in ``region`` lies inside ``window``).

    Computed per axis and multiplied, which (a) equals the area ratio for
    proper rectangles, (b) treats regions degenerate in one axis as the
    1-D uniform segments they are (the area ratio would be 0/0), and (c)
    survives denormal sides whose area product underflows to zero.
    """
    return _axis_fraction(
        region.min_x, region.max_x, window.min_x, window.max_x
    ) * _axis_fraction(region.min_y, region.max_y, window.min_y, window.max_y)


def _axis_fractions(
    lo: np.ndarray, hi: np.ndarray, window_lo: float, window_hi: float
) -> np.ndarray:
    """Vectorised :func:`_axis_fraction` over aligned side arrays.

    Applies the identical operation sequence (clamp, divide, clamp), so
    each element is bit-identical to the scalar function's result.
    """
    length = hi - lo
    overlap = np.minimum(hi, window_hi) - np.maximum(lo, window_lo)
    safe_length = np.where(length > 0.0, length, 1.0)
    proper = np.minimum(1.0, np.maximum(0.0, overlap) / safe_length)
    degenerate = ((window_lo <= lo) & (lo <= window_hi)).astype(np.float64)
    return np.where(length > 0.0, proper, degenerate)


def membership_probabilities(bounds: np.ndarray, window: Rect) -> np.ndarray:
    """Vectorised :func:`membership_probability` for many regions at once.

    Args:
        bounds: ``(n, 4)`` array of ``(min_x, min_y, max_x, max_y)`` rows
            (the layout of :meth:`PrivateStore.snapshot_arrays` and the
            indexes' ``snapshot_rects``).
        window: the public query window.

    Returns:
        Array of ``n`` per-region inclusion probabilities, each equal to
        the scalar :func:`membership_probability` of the same region.
    """
    fx = _axis_fractions(bounds[:, 0], bounds[:, 2], window.min_x, window.max_x)
    fy = _axis_fractions(bounds[:, 1], bounds[:, 3], window.min_y, window.max_y)
    return fx * fy


def public_range_count_batch(
    store: PrivateStore, windows: Sequence[Rect]
) -> list[CountAnswer]:
    """Sequential batch entry point: one :func:`public_range_count` per
    window.  The reference loop the vectorised engine
    (:class:`repro.engine.BatchEngine`) is checked against.
    """
    return [public_range_count(store, window) for window in windows]


def public_range_count(store: PrivateStore, window: Rect) -> CountAnswer:
    """Probabilistic count of private objects inside ``window``.

    Returns a :class:`CountAnswer` carrying all three of the paper's answer
    formats (expected value, interval, exact PMF).  Objects whose region
    does not touch ``window`` have probability zero and are omitted.
    """
    # Every id returned by the store intersects the window, so each one is
    # geometrically possible and belongs in the answer — including regions
    # that merely touch the window (probability 0 under the uniform model,
    # but still a legitimate "possible" member for the interval format).
    probabilities: dict[Hashable, float] = {
        object_id: membership_probability(store.region_of(object_id), window)
        for object_id in store.overlapping(window)
    }
    return CountAnswer(probabilities)


def naive_range_count(store: PrivateStore, window: Rect) -> int:
    """The paper's criticised baseline: count every overlapping region.

    "Dealing with each object as a non-zero size object would return five
    as the query answer, which is totally inaccurate."
    """
    return len(store.overlapping(window))


def exact_range_count(
    exact_locations: dict[Hashable, "object"], window: Rect
) -> int:
    """Ground truth count from exact locations (evaluation only).

    The server never has this information; the experiment harness uses it
    to score the probabilistic answers.
    """
    return sum(1 for p in exact_locations.values() if window.contains_point(p))
