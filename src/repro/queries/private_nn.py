"""Private nearest-neighbour queries over public data (Figure 5b).

The user asks "my nearest public object"; the server knows only the cloaked
region R.  The sound answer is the candidate set: every object that is the
nearest neighbour of *some* point of R.  The paper's Figure 5b walks through
exactly this: objects inside R are always candidates; object A is pruned
because B and C beat it everywhere in R; object D survives because a user on
R's right edge may be closest to it.

Three candidate generators of increasing tightness are implemented:

* ``range``  — a single pruning radius: ``m = min over objects of
  max_dist(R, o)``.  Whatever point of R the user is at, the object
  attaining ``m`` is within ``m``, so anything farther than ``m`` from R
  can never win.  One incremental-NN scan, loosest set.
* ``filter`` — ``range`` plus per-candidate dominance: prune ``o`` when
  some single competitor beats it over all of R
  (``max_dist(R, o') < min_dist(R, o)``).
* ``exact``  — the true candidate set: ``o`` survives iff its Voronoi cell
  intersects R, decided by half-plane clipping.  (Ablation A2 measures how
  much looser the cheap sets are.)

Every method guarantees no false negatives; the client refines locally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Literal, Sequence

from repro.core.errors import QueryError
from repro.core.stores import PublicStore
from repro.geometry.distances import max_dist, min_dist
from repro.geometry.point import Point
from repro.geometry.polygon import polygon_area, voronoi_cell_clip
from repro.geometry.rect import Rect

NNCandidateMethod = Literal["range", "filter", "exact"]


@dataclass(frozen=True)
class PrivateNNResult:
    """Server-side answer to a private NN query.

    Attributes:
        region: the cloaked query region.
        candidates: ids of objects that may be the user's nearest object.
        method: candidate generator used.
        pruning_radius: the ``m`` bound used by the range/filter stages
            (informational; 0.0 when the store held at most one object).
    """

    region: Rect
    candidates: tuple[Hashable, ...]
    method: NNCandidateMethod
    pruning_radius: float

    @property
    def transmission_size(self) -> int:
        return len(self.candidates)


def pruning_radius(store: PublicStore, region: Rect) -> tuple[float, list[Hashable]]:
    """The bound ``m = min_o max_dist(region, o)`` and the objects within it.

    Found without scanning the whole store: iterate objects nearest-first
    from the region centre, maintaining the best ``m`` so far; once an
    object's centre distance exceeds ``m`` no later object can improve it
    (``max_dist >= centre distance`` for points).  Returns ``(m, ids)``
    where ids are all objects with ``min_dist(o, region) <= m``.
    """
    if len(store) == 0:
        raise QueryError("nearest-neighbour query over an empty public store")
    centre = region.center
    m = float("inf")
    for object_id, centre_dist in store.nearest_iter(centre):
        if centre_dist > m:
            break
        m = min(m, max_dist(store.point_of(object_id), region))
    # The expanded window is only a prefilter (min_dist is the authority),
    # so pad it slightly: computing window edges as coordinate - m can
    # round to just inside the m-attaining object and lose it.
    window = region.expanded(m + 1e-9 * (1.0 + m))
    ids = [
        i
        for i in store.range_query(window)
        if min_dist(store.point_of(i), region) <= m
    ]
    return m, ids


def private_nn_query(
    store: PublicStore,
    region: Rect,
    method: NNCandidateMethod = "filter",
) -> PrivateNNResult:
    """Candidate set of a private nearest-neighbour query.

    Guarantee: for every point ``p`` of ``region``, the true nearest object
    of ``p`` is in the candidate set.
    """
    m, ids = pruning_radius(store, region)
    if method == "range":
        kept = ids
    elif method == "filter":
        kept = _dominance_filter(store, region, ids)
    elif method == "exact":
        kept = _voronoi_filter(store, region, _dominance_filter(store, region, ids))
    else:
        raise QueryError(f"unknown candidate method: {method!r}")
    return PrivateNNResult(
        region=region, candidates=tuple(kept), method=method, pruning_radius=m
    )


def private_nn_query_batch(
    store: PublicStore,
    regions: Sequence[Rect],
    method: NNCandidateMethod = "filter",
) -> list[PrivateNNResult]:
    """Sequential batch entry point: one candidate set per cloaked region.

    Dominance/Voronoi filtering resists vectorisation, so the batch
    engine routes private NN queries through this loop unchanged — batch
    answers are bit-identical to single-query answers by construction.
    """
    return [private_nn_query(store, region, method) for region in regions]


def _dominance_filter(
    store: PublicStore, region: Rect, ids: list[Hashable]
) -> list[Hashable]:
    """Drop ``o`` when one competitor beats it everywhere in ``region``.

    The test is corner dominance: the locus where ``o'`` beats ``o`` is a
    half-plane, and a convex region lies inside a half-plane iff all its
    vertices do — so ``o'`` strictly closer at all four corners means
    ``o'`` wins at every point of the region, and ``o`` can never be the
    answer.  This is exactly the paper's Figure 5b argument for
    eliminating object A ("it is guaranteed that targets B and C would be
    nearest to any point in the shaded area than target A").
    """
    pairs = [(i, store.point_of(i)) for i in ids]
    corners = region.corners
    corner_d2 = {
        i: tuple(p.squared_distance_to(c) for c in corners) for i, p in pairs
    }
    kept = []
    for i, _ in pairs:
        own = corner_d2[i]
        dominated = any(
            j != i and all(d < o for d, o in zip(corner_d2[j], own))
            for j, _ in pairs
        )
        if not dominated:
            kept.append(i)
    return kept


def _voronoi_filter(
    store: PublicStore, region: Rect, ids: list[Hashable]
) -> list[Hashable]:
    """Keep ``o`` iff its Voronoi cell (within the candidate set) meets R.

    Restricting competitors to the candidate set is exact: a pruned object
    loses everywhere in R to some candidate, so it cannot carve anything
    out of R for itself or defend ``o``'s cell.
    """
    points = {i: store.point_of(i) for i in ids}
    kept = []
    for i in ids:
        competitors = [p for j, p in points.items() if j != i]
        if voronoi_cell_clip(points[i], competitors, region):
            kept.append(i)
    return kept


def nn_probabilities(
    store: PublicStore, result: PrivateNNResult
) -> dict[Hashable, float]:
    """Analytic P(candidate is the NN) for a user uniform in the region.

    The probability of candidate ``o`` is ``area(VoronoiCell(o) ∩ R) /
    area(R)``.  For a degenerate region the single containing cell gets
    probability 1.  Complements the candidate set with the quality signal
    used in experiment E6.
    """
    region = result.region
    points = {i: store.point_of(i) for i in result.candidates}
    if region.area == 0.0:
        # Degenerate region: the answer is the plain NN of the point.
        centre = region.center
        best = min(points, key=lambda i: points[i].distance_to(centre))
        return {i: (1.0 if i == best else 0.0) for i in points}
    probs: dict[Hashable, float] = {}
    for i, p in points.items():
        competitors = [q for j, q in points.items() if j != i]
        cell = voronoi_cell_clip(p, competitors, region)
        probs[i] = polygon_area(cell) / region.area if cell else 0.0
    return probs


def refine_nn_candidates(
    store: PublicStore, result: PrivateNNResult, exact_location: Point
) -> Hashable:
    """Client-side refinement: the true nearest object from the candidates."""
    if not result.candidates:
        raise QueryError("cannot refine an empty candidate set")
    return min(
        result.candidates,
        key=lambda i: store.point_of(i).distance_to(exact_location),
    )


def exact_nn_answer(store: PublicStore, exact_location: Point) -> Hashable:
    """Ground truth: the non-private NN (baseline for QoS metrics)."""
    nearest = store.nearest(exact_location, k=1)
    if not nearest:
        raise QueryError("nearest-neighbour query over an empty public store")
    return nearest[0]
