"""Probabilistic answer representations (Section 6.2.2, Figure 6).

The paper proposes three answer formats for public queries over private
data and these classes implement all of them:

1. **absolute value** — the expected count (sum of per-object
   probabilities; the worked example's ``1 + 0.75 + 0.5 + 0.2 + 0.25 =
   2.7``),
2. **interval** — ``[certain, possible]`` (the example's ``[1, 5]``), and
3. **probability density function** — the exact distribution of the count,
   which for independent per-object inclusion probabilities is the
   Poisson–binomial distribution, computed here by exact dynamic
   programming (no sampling).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

#: Probabilities within this tolerance of 0/1 are treated as certain.
_CERTAINTY_EPS = 1e-12


def poisson_binomial_pmf(probs: Sequence[float]) -> np.ndarray:
    """Exact PMF of a sum of independent Bernoulli variables.

    Args:
        probs: the per-trial success probabilities, each in [0, 1].

    Returns:
        Array ``pmf`` of length ``len(probs) + 1`` with
        ``pmf[i] = P(count == i)``.

    The dynamic program folds one trial at a time in O(n^2); exact (to
    float precision) and comfortably fast for the thousands of objects a
    realistic query window overlaps.
    """
    for p in probs:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
    pmf = np.zeros(len(probs) + 1)
    pmf[0] = 1.0
    for n, p in enumerate(probs):
        # After n trials only entries [0, n] are populated.
        head = pmf[: n + 2].copy()
        head[1:] = head[1:] * (1.0 - p) + head[:-1] * p
        head[0] *= 1.0 - p
        pmf[: n + 2] = head
    return pmf


@dataclass(frozen=True)
class CountAnswer:
    """A probabilistic count: per-object inclusion probabilities.

    Attributes:
        probabilities: object id -> probability the object satisfies the
            query predicate.  Zero-probability objects may be omitted by
            constructors; including them changes nothing.
    """

    probabilities: Mapping[Hashable, float]

    def __post_init__(self) -> None:
        for object_id, p in self.probabilities.items():
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"probability of {object_id!r} out of range: {p}")

    # -- format 1: absolute value -------------------------------------

    @property
    def expected(self) -> float:
        """The absolute-value answer (sum of probabilities)."""
        return float(sum(self.probabilities.values()))

    # -- format 2: interval --------------------------------------------

    @property
    def certain(self) -> int:
        """Objects that contribute with probability 1 (interval lower end)."""
        return sum(
            1 for p in self.probabilities.values() if p >= 1.0 - _CERTAINTY_EPS
        )

    @property
    def possible(self) -> int:
        """Objects that could satisfy the predicate (interval upper end).

        Constructors include exactly the objects whose region makes the
        predicate *geometrically* possible, so this is simply the entry
        count.  An entry may carry probability 0.0 (a region touching the
        query window in a measure-zero set): the uniform model assigns it
        no mass, yet the user could truly sit on that shared boundary, so
        it still counts as possible.
        """
        return len(self.probabilities)

    @property
    def interval(self) -> tuple[int, int]:
        """The ``[min, max]`` interval answer."""
        return (self.certain, self.possible)

    # -- format 3: probability density function -------------------------

    def pmf(self) -> np.ndarray:
        """Exact distribution of the count (Poisson–binomial)."""
        return poisson_binomial_pmf(list(self.probabilities.values()))

    def probability_of_count(self, count: int) -> float:
        """P(exactly ``count`` objects satisfy the predicate)."""
        pmf = self.pmf()
        if not 0 <= count < len(pmf):
            return 0.0
        return float(pmf[count])

    def most_likely_count(self) -> int:
        """The mode of the count distribution."""
        return int(np.argmax(self.pmf()))

    def variance(self) -> float:
        """Variance of the count (sum of p * (1 - p))."""
        return float(sum(p * (1.0 - p) for p in self.probabilities.values()))

    def __len__(self) -> int:
        return len(self.probabilities)


@dataclass(frozen=True)
class NearestAnswer:
    """A probabilistic nearest-neighbour answer (Figure 6b formats).

    Attributes:
        probabilities: candidate object id -> probability it is the true
            nearest object.  Probabilities sum to 1 (up to estimation
            error) because exactly one object is nearest.
    """

    probabilities: Mapping[Hashable, float]

    def __post_init__(self) -> None:
        for object_id, p in self.probabilities.items():
            if not 0.0 <= p <= 1.0 + 1e-9:
                raise ValueError(f"probability of {object_id!r} out of range: {p}")

    @property
    def candidates(self) -> set[Hashable]:
        """Format 1: the set of potential nearest objects."""
        return {o for o, p in self.probabilities.items() if p > 0.0}

    @property
    def top(self) -> Hashable:
        """Format 2: the single most probable nearest object."""
        if not self.probabilities:
            raise ValueError("empty answer has no top candidate")
        return max(self.probabilities.items(), key=lambda item: item[1])[0]

    def ranked(self) -> list[tuple[Hashable, float]]:
        """Format 3: ``(object, probability)`` pairs, most probable first."""
        return sorted(self.probabilities.items(), key=lambda item: -item[1])

    @property
    def total_probability(self) -> float:
        return float(sum(self.probabilities.values()))

    def entropy(self) -> float:
        """Shannon entropy (bits) of the NN distribution.

        Zero means the server can name the nearest object with certainty
        despite cloaking; higher values quantify the privacy-induced answer
        uncertainty (experiment E8).
        """
        h = 0.0
        for p in self.probabilities.values():
            if p > 0.0:
                h -= p * math.log2(p)
        return h

    def __len__(self) -> int:
        return len(self.probabilities)
