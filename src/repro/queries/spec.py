"""Declarative query specifications: the system's single query language.

A :class:`QuerySpec` *describes* a question without choosing how to
answer it — no index backend, no kernel-vs-scalar route, no server entry
point.  The four spec classes cover the paper's query taxonomy
(range / NN / k-NN / count), each in a ``public`` flavor (exact
parameters, no privacy) and a ``private`` flavor (asked through the
anonymizer from a cloaked region, optionally bound to a registered
user).  :meth:`repro.core.system.PrivacySystem.query` accepts any spec
and routes it through the cost-based planner
(:mod:`repro.planner`), which picks the cheapest execution it can prove
result-identical.

Specs are frozen, validated at construction (bad queries fail before
they reach a server), and JSON round-trippable via
:meth:`to_dict` / :func:`spec_from_dict` — a workload is a list of
dicts, i.e. data, not code (see ``evalx/query_workload.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Hashable, Iterable, Mapping, Union

from repro.core.errors import QueryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Who is asking: ``public`` = exact parameters in the clear, ``private``
#: = through the anonymizer from a cloaked region.
QUERY_FLAVORS = ("public", "private")


def _require_flavor(flavor: str) -> None:
    if flavor not in QUERY_FLAVORS:
        raise QueryError(
            f"flavor must be one of {QUERY_FLAVORS}, got {flavor!r}"
        )


def _require_subject(spec) -> None:
    """Private-flavor specs name exactly one subject: a user or a region."""
    if (spec.user is None) == (spec.region is None):
        raise QueryError(
            f"private {spec.kind} spec needs exactly one of user= "
            f"(full pipeline) or region= (server-side candidates)"
        )


def _rect_out(rect: Rect | None) -> list[float] | None:
    return None if rect is None else list(rect.as_tuple())


def _rect_in(value) -> Rect | None:
    return None if value is None else Rect(*(float(v) for v in value))


def _point_out(point: Point | None) -> list[float] | None:
    return None if point is None else [point.x, point.y]


def _point_in(value) -> Point | None:
    return None if value is None else Point(float(value[0]), float(value[1]))


@dataclass(frozen=True)
class RangeSpec:
    """Range query.

    Public flavor: all public objects inside ``window``.
    Private flavor: all public objects within ``radius`` of the subject —
    a registered ``user`` (cloak + refine pipeline) or a cloaked
    ``region`` (server-side candidate set only).
    """

    flavor: str = "public"
    window: Rect | None = None
    user: Hashable | None = None
    region: Rect | None = None
    radius: float = 0.0
    method: str = "exact"
    kind: ClassVar[str] = "range"

    def __post_init__(self) -> None:
        _require_flavor(self.flavor)
        if self.flavor == "public":
            if self.window is None:
                raise QueryError("public range spec needs window=")
            if self.user is not None or self.region is not None:
                raise QueryError(
                    "public range spec takes no user/region subject"
                )
        else:
            if self.window is not None:
                raise QueryError(
                    "private range spec takes radius=, not window="
                )
            _require_subject(self)
            if self.radius < 0:
                raise QueryError(
                    f"radius must be non-negative, got {self.radius}"
                )
            if self.method not in ("exact", "mbr"):
                raise QueryError(
                    f"unknown candidate method: {self.method!r}"
                )


@dataclass(frozen=True)
class NNSpec:
    """Nearest-neighbour query.

    Public flavor: the nearest object to ``point`` — over the public
    store (``dataset="public"``, exact) or over the cloaked private
    regions (``dataset="private"``, the paper's probabilistic Figure 6b
    answer, Monte-Carlo seeded by ``seed``).
    Private flavor: "my nearest public object" for a ``user`` or from a
    cloaked ``region``.
    """

    flavor: str = "public"
    point: Point | None = None
    dataset: str = "public"
    samples: int = 4096
    seed: int = 0
    user: Hashable | None = None
    region: Rect | None = None
    method: str = "filter"
    kind: ClassVar[str] = "nn"

    def __post_init__(self) -> None:
        _require_flavor(self.flavor)
        if self.dataset not in ("public", "private"):
            raise QueryError(
                f"dataset must be 'public' or 'private', got {self.dataset!r}"
            )
        if self.flavor == "public":
            if self.point is None:
                raise QueryError("public nn spec needs point=")
            if self.user is not None or self.region is not None:
                raise QueryError("public nn spec takes no user/region subject")
            if self.samples < 0:
                raise QueryError("samples must be non-negative")
        else:
            if self.point is not None:
                raise QueryError("private nn spec locates its subject itself")
            if self.dataset != "public":
                raise QueryError(
                    "private nn queries answer over public objects; "
                    "dataset='private' is only meaningful for flavor='public'"
                )
            _require_subject(self)
            if self.method not in ("range", "filter", "exact"):
                raise QueryError(
                    f"unknown candidate method: {self.method!r}"
                )


@dataclass(frozen=True)
class KNNSpec:
    """k-nearest-neighbour query over the public objects.

    Public flavor: the canonical k-NN list for ``point``.
    Private flavor: the candidate superset for a ``user`` (with local
    refinement to the true k list) or a cloaked ``region``.
    """

    flavor: str = "public"
    k: int = 1
    point: Point | None = None
    user: Hashable | None = None
    region: Rect | None = None
    method: str = "filter"
    kind: ClassVar[str] = "knn"

    def __post_init__(self) -> None:
        _require_flavor(self.flavor)
        if self.k < 1:
            raise QueryError(f"k must be positive, got {self.k}")
        if self.flavor == "public":
            if self.point is None:
                raise QueryError("public knn spec needs point=")
            if self.user is not None or self.region is not None:
                raise QueryError(
                    "public knn spec takes no user/region subject"
                )
        else:
            if self.point is not None:
                raise QueryError("private knn spec locates its subject itself")
            _require_subject(self)
            if self.method not in ("range", "filter"):
                raise QueryError(
                    f"unknown candidate method: {self.method!r}"
                )


@dataclass(frozen=True)
class CountSpec:
    """Probabilistic count of cloaked private users inside ``window``.

    Only the public flavor exists: the paper reduces private-over-private
    queries to the other quadrants (end of its Section 6.1), so a private
    count is expressed as a public ``CountSpec`` over the asker's own
    cloaked neighbourhood.
    """

    window: Rect
    flavor: str = "public"
    kind: ClassVar[str] = "count"

    def __post_init__(self) -> None:
        _require_flavor(self.flavor)
        if self.flavor != "public":
            raise QueryError(
                "count queries have no private flavor: the paper reduces "
                "private-over-private queries to the public count quadrant"
            )
        if self.window is None:
            raise QueryError("count spec needs window=")


QuerySpec = Union[RangeSpec, NNSpec, KNNSpec, CountSpec]

#: Concrete spec classes, keyed by their ``kind`` tag.
SPEC_CLASSES: dict[str, type] = {
    cls.kind: cls for cls in (RangeSpec, NNSpec, KNNSpec, CountSpec)
}

#: For ``isinstance`` dispatch (``PrivacySystem.execute_batch`` accepts
#: either spec lists or legacy engine query lists).
SPEC_TYPES: tuple[type, ...] = tuple(SPEC_CLASSES.values())

_GEOM_FIELDS = {"window": (_rect_out, _rect_in), "region": (_rect_out, _rect_in),
                "point": (_point_out, _point_in)}


def is_user_bound(spec: QuerySpec) -> bool:
    """True when the spec runs the full per-user privacy pipeline."""
    return getattr(spec, "user", None) is not None


def spec_to_dict(spec: QuerySpec) -> dict:
    """Flat JSON-serialisable form; ``None`` fields are omitted.

    User ids must be JSON scalars (str/int/float/bool) to round-trip.
    """
    out: dict = {"kind": spec.kind}
    for field_ in fields(spec):
        value = getattr(spec, field_.name)
        if value is None:
            continue
        if field_.name in _GEOM_FIELDS:
            value = _GEOM_FIELDS[field_.name][0](value)
        elif field_.name == "user" and not isinstance(
            value, (str, int, float, bool)
        ):
            raise QueryError(
                f"user id {value!r} is not JSON-serialisable; "
                "use str or int ids in workloads-as-data"
            )
        out[field_.name] = value
    return out


def spec_from_dict(record: Mapping) -> QuerySpec:
    """Inverse of :func:`spec_to_dict` (dispatches on ``kind``)."""
    data = dict(record)
    kind = data.pop("kind", None)
    cls = SPEC_CLASSES.get(kind)
    if cls is None:
        raise QueryError(
            f"unknown spec kind {kind!r}; expected one of "
            f"{sorted(SPEC_CLASSES)}"
        )
    allowed = {field_.name for field_ in fields(cls)}
    unknown = set(data) - allowed
    if unknown:
        raise QueryError(
            f"unknown fields for {kind} spec: {sorted(unknown)}"
        )
    for name, (_, reader) in _GEOM_FIELDS.items():
        if name in data:
            data[name] = reader(data[name])
    return cls(**data)


def dump_specs(specs: Iterable[QuerySpec]) -> list[dict]:
    """A whole workload as plain data (JSON-ready list of dicts)."""
    return [spec_to_dict(spec) for spec in specs]


def load_specs(records: Iterable[Mapping]) -> list[QuerySpec]:
    """Inverse of :func:`dump_specs`."""
    return [spec_from_dict(record) for record in records]
