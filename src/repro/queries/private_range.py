"""Private range queries over public data (Section 6.2.1, Figure 5a).

The user asks "all public objects within ``radius`` of me", but the server
only knows her cloaked region R.  The server therefore returns the
*candidate set*: every object that could be within ``radius`` of **some**
point of R — i.e. every object within ``radius`` of the region itself.
That locus is the Minkowski sum of R with a disc (the paper's "rounded
rectangle"); the paper notes a real implementation would approximate it by
its MBR.  Both variants are provided (ablation A1):

* ``exact`` — keep objects with ``min_dist(point, R) <= radius``;
* ``mbr``   — keep objects inside ``R.expanded(radius)`` (a superset that
  additionally admits objects near the four rounded corners).

The client then refines the candidate list locally against her exact
location (:func:`refine_range_candidates`), preserving both privacy and the
exact answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Literal, Sequence

from repro.core.errors import QueryError
from repro.core.stores import PublicStore
from repro.geometry.distances import min_dist
from repro.geometry.point import Point
from repro.geometry.rect import Rect

CandidateMethod = Literal["exact", "mbr"]


@dataclass(frozen=True)
class PrivateRangeResult:
    """Server-side answer to a private range query.

    Attributes:
        region: the cloaked query region the server saw.
        radius: the query radius.
        candidates: ids of objects possibly within ``radius`` of the user.
        method: which candidate region was used.
    """

    region: Rect
    radius: float
    candidates: tuple[Hashable, ...]
    method: CandidateMethod

    @property
    def transmission_size(self) -> int:
        """Number of objects shipped to the client (communication cost)."""
        return len(self.candidates)


def private_range_query(
    store: PublicStore,
    region: Rect,
    radius: float,
    method: CandidateMethod = "exact",
) -> PrivateRangeResult:
    """Candidate set of a private range query.

    Guarantee: for every point ``p`` in ``region``, every object within
    ``radius`` of ``p`` is in the candidate set (no false negatives).

    Args:
        store: the public data store.
        region: the cloaked region produced by the anonymizer.
        radius: the user's range predicate, must be non-negative.
        method: ``"exact"`` rounded-rectangle filtering or ``"mbr"``
            expanded-rectangle approximation.
    """
    if radius < 0:
        raise QueryError(f"radius must be non-negative, got {radius}")
    window = region.expanded(radius)
    ids = store.range_query(window)
    if method == "mbr":
        kept: Sequence[Hashable] = ids
    elif method == "exact":
        kept = [i for i in ids if min_dist(store.point_of(i), region) <= radius]
    else:
        raise QueryError(f"unknown candidate method: {method!r}")
    return PrivateRangeResult(
        region=region, radius=radius, candidates=tuple(kept), method=method
    )


def private_range_query_batch(
    store: PublicStore,
    requests: Sequence[tuple[Rect, float]],
    method: CandidateMethod = "exact",
) -> list[PrivateRangeResult]:
    """Sequential batch entry point: one query per ``(region, radius)``.

    The reference loop the vectorised engine
    (:class:`repro.engine.BatchEngine`) is checked against.
    """
    return [
        private_range_query(store, region, radius, method)
        for region, radius in requests
    ]


def refine_range_candidates(
    store: PublicStore,
    result: PrivateRangeResult,
    exact_location: Point,
) -> list[Hashable]:
    """Client-side refinement: the true answer from the candidate set.

    This models the mobile user's local post-processing step; it is the
    only place the exact location meets the data, and it runs on the
    client, never the server.
    """
    return [
        i
        for i in result.candidates
        if store.point_of(i).distance_to(exact_location) <= result.radius
    ]


def exact_range_answer(
    store: PublicStore, exact_location: Point, radius: float
) -> list[Hashable]:
    """Ground truth: the non-private answer (baseline for QoS metrics)."""
    if radius < 0:
        raise QueryError(f"radius must be non-negative, got {radius}")
    window = Rect.from_center(exact_location, 2 * radius, 2 * radius)
    return [
        i
        for i in store.range_query(window)
        if store.point_of(i).distance_to(exact_location) <= radius
    ]
