"""Public nearest-neighbour queries over private data (Figure 6b).

A public object (the figure's gas station) asks for its nearest mobile
user, but users are stored as cloaked regions.  The processor:

1. **prunes** with min/max distance dominance — user ``A`` is eliminated
   when some other region's *worst case* (``max_dist``) still beats ``A``'s
   *best case* (``min_dist``), exactly the reasoning the paper applies to
   eliminate A, B, C in favour of D;
2. **ranks** the surviving candidates with P(candidate is nearest), by
   Monte-Carlo integration over the uniform-in-region location model
   (exact closed forms for rectangle NN probabilities do not exist in
   general; ablation A5 studies the sample-count/accuracy trade-off).

Answer formats mirror the paper: candidate set, single most-probable user,
or full probability distribution (:class:`~repro.queries.probabilistic.NearestAnswer`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.errors import QueryError
from repro.core.stores import PrivateStore
from repro.geometry.distances import max_dist, min_dist
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.probabilistic import NearestAnswer


@dataclass(frozen=True)
class PublicNNResult:
    """Answer to a public NN query over private data.

    Attributes:
        query: the public query point.
        answer: probabilistic NN distribution over candidate users.
        pruning_bound: the ``min over regions of max_dist`` used to prune.
        samples: Monte-Carlo samples used (0 when the answer was certain).
    """

    query: Point
    answer: NearestAnswer
    pruning_bound: float
    samples: int

    @property
    def candidates(self) -> set[Hashable]:
        return self.answer.candidates


def nn_candidate_users(
    store: PrivateStore, query: Point
) -> tuple[list[Hashable], float]:
    """Candidate users and the pruning bound.

    A user survives iff ``min_dist(query, region) <= m`` where
    ``m = min over users of max_dist(query, region)``: the user attaining
    ``m`` is within ``m`` wherever she actually is, so anyone whose whole
    region lies beyond ``m`` can never be nearest.
    """
    if len(store) == 0:
        raise QueryError("nearest-neighbour query over an empty private store")
    m = min(max_dist(query, region) for _, region in store.items())
    candidates = [
        object_id
        for object_id, region in store.items()
        if min_dist(query, region) <= m
    ]
    return candidates, m


def public_nn_query(
    store: PrivateStore,
    query: Point,
    samples: int = 4096,
    rng: np.random.Generator | None = None,
) -> PublicNNResult:
    """Probabilistic nearest private user to ``query``.

    Args:
        store: the private (cloaked) data store.
        query: the public query location.
        samples: Monte-Carlo draws for probability estimation; ignored when
            a single candidate survives pruning.
        rng: random generator (a fixed default seed keeps results
            reproducible when omitted).
    """
    if samples < 1:
        raise QueryError("samples must be positive")
    candidates, bound = nn_candidate_users(store, query)
    if len(candidates) == 1:
        answer = NearestAnswer({candidates[0]: 1.0})
        return PublicNNResult(query=query, answer=answer, pruning_bound=bound, samples=0)
    rng = rng if rng is not None else np.random.default_rng(0)
    probs = estimate_nn_probabilities(
        [store.region_of(c) for c in candidates], query, samples, rng
    )
    answer = NearestAnswer(dict(zip(candidates, probs)))
    return PublicNNResult(
        query=query, answer=answer, pruning_bound=bound, samples=samples
    )


def estimate_nn_probabilities(
    regions: Sequence[Rect],
    query: Point,
    samples: int,
    rng: np.random.Generator,
) -> list[float]:
    """Monte-Carlo P(region i holds the nearest user) for each region.

    Each user's location is drawn uniformly from her region, independently
    across users (the paper's uniformity assumption); the winner of each
    joint draw is tallied.  Fully vectorised: one ``(n_regions, samples)``
    distance matrix.
    """
    n = len(regions)
    if n == 0:
        return []
    xs = np.empty((n, samples))
    ys = np.empty((n, samples))
    for i, region in enumerate(regions):
        xs[i] = (
            rng.uniform(region.min_x, region.max_x, size=samples)
            if region.width > 0
            else region.min_x
        )
        ys[i] = (
            rng.uniform(region.min_y, region.max_y, size=samples)
            if region.height > 0
            else region.min_y
        )
    d2 = (xs - query.x) ** 2 + (ys - query.y) ** 2
    winners = np.argmin(d2, axis=0)
    counts = np.bincount(winners, minlength=n)
    return [float(c) / samples for c in counts]


def certain_nn_user(store: PrivateStore, query: Point) -> Hashable | None:
    """The guaranteed nearest user, when one exists.

    A user is certainly nearest when her *worst case* beats every other
    user's *best case* (``max_dist(q, R) <= min over others of
    min_dist(q, R')``).  Returns ``None`` when cloaking leaves genuine
    ambiguity — which is precisely the privacy working as intended.
    """
    candidates, _ = nn_candidate_users(store, query)
    if len(candidates) == 1:
        return candidates[0]
    for candidate in candidates:
        worst = max_dist(query, store.region_of(candidate))
        others_best = min(
            min_dist(query, store.region_of(other))
            for other in candidates
            if other != candidate
        )
        if worst <= others_best:
            return candidate
    return None


def exact_nn_user(exact_locations: dict[Hashable, Point], query: Point) -> Hashable:
    """Ground truth from exact locations (evaluation only)."""
    if not exact_locations:
        raise QueryError("nearest-neighbour query over an empty population")
    return min(exact_locations, key=lambda i: exact_locations[i].distance_to(query))
