"""The privacy-aware location-based database server (Section 6).

The server supports all four combinations of Section 6.1's data/query
taxonomy:

=================== ======================= ============================
query \\ data        public data             private data
=================== ======================= ============================
public query        classic spatio-temporal  probabilistic range / NN
                    range & NN               (Figure 6)
private query       candidate-set range & NN reducible to the other two
                    (Figure 5)               (see paper, end of §6.1)
=================== ======================= ============================

It never receives exact private locations: private data arrives only as
cloaked regions pushed by the :class:`~repro.core.anonymizer.LocationAnonymizer`.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.core.errors import QueryError
from repro.core.stores import PrivateStore, PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.continuous import ContinuousCountMonitor
from repro.queries.private_nn import PrivateNNResult, private_nn_query
from repro.queries.private_range import PrivateRangeResult, private_range_query
from repro.queries.probabilistic import CountAnswer
from repro.queries.public_nn import PublicNNResult, public_nn_query
from repro.queries.public_range import naive_range_count, public_range_count


class LocationServer:
    """Privacy-aware location-based database server."""

    def __init__(self) -> None:
        self.public = PublicStore()
        self.private = PrivateStore()
        self._monitors: dict[Hashable, ContinuousCountMonitor] = {}
        self.queries_served = 0
        self.queries_by_kind: dict[str, int] = {}
        self.region_updates_received = 0

    def stats(self) -> dict[str, float]:
        """Operational snapshot: store sizes, update and query counters."""
        out: dict[str, float] = {
            "public_objects": float(len(self.public)),
            "private_regions": float(len(self.private)),
            "monitors": float(len(self._monitors)),
            "region_updates": float(self.region_updates_received),
            "queries_served": float(self.queries_served),
        }
        for kind, count in sorted(self.queries_by_kind.items()):
            out[f"queries_{kind}"] = float(count)
        return out

    def _count_query(self, kind: str) -> None:
        self.queries_served += 1
        self.queries_by_kind[kind] = self.queries_by_kind.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # Public data maintenance (exact locations, no privacy)
    # ------------------------------------------------------------------

    def add_public_object(self, object_id: Hashable, point: Point) -> None:
        """Register a stationary or moving public object."""
        self.public.add(object_id, point)

    def move_public_object(self, object_id: Hashable, point: Point) -> None:
        self.public.move(object_id, point)

    def remove_public_object(self, object_id: Hashable) -> None:
        self.public.remove(object_id)

    # ------------------------------------------------------------------
    # Private data maintenance (cloaked regions from the anonymizer)
    # ------------------------------------------------------------------

    def receive_region(self, pseudonym: Hashable, region: Rect) -> None:
        """Store/refresh a cloaked region and wake affected monitors."""
        self.region_updates_received += 1
        self.private.set_region(pseudonym, region)
        for monitor in self._monitors.values():
            monitor.on_region_update(pseudonym, region)

    def forget_region(self, pseudonym: Hashable) -> None:
        """Drop a pseudonym (user unsubscribed or pseudonym rotated)."""
        self.private.remove(pseudonym)
        for monitor in self._monitors.values():
            monitor.on_object_removed(pseudonym)

    # ------------------------------------------------------------------
    # Private queries over public data (Figure 5)
    # ------------------------------------------------------------------

    def private_range(
        self, region: Rect, radius: float, method: str = "exact"
    ) -> PrivateRangeResult:
        """Candidate set for "public objects within ``radius`` of me"."""
        self._count_query("private_range")
        return private_range_query(self.public, region, radius, method)

    def private_nn(self, region: Rect, method: str = "filter") -> PrivateNNResult:
        """Candidate set for "my nearest public object"."""
        self._count_query("private_nn")
        return private_nn_query(self.public, region, method)

    # ------------------------------------------------------------------
    # Public queries over private data (Figure 6)
    # ------------------------------------------------------------------

    def public_count(self, window: Rect) -> CountAnswer:
        """Probabilistic count of private users inside ``window``."""
        self._count_query("public_count")
        return public_range_count(self.private, window)

    def public_count_naive(self, window: Rect) -> int:
        """The paper's criticised count-every-overlap baseline."""
        self._count_query("public_count_naive")
        return naive_range_count(self.private, window)

    def public_nn(
        self,
        query: Point,
        samples: int = 4096,
        rng: np.random.Generator | None = None,
    ) -> PublicNNResult:
        """Probabilistic nearest private user to a public query point."""
        self._count_query("public_nn")
        return public_nn_query(self.private, query, samples, rng)

    # ------------------------------------------------------------------
    # Public queries over public data (the classic case, for completeness)
    # ------------------------------------------------------------------

    def public_range_over_public(self, window: Rect) -> list[Hashable]:
        """Classic exact range query on public objects."""
        self._count_query("public_over_public_range")
        return self.public.range_query(window)

    def public_nn_over_public(self, query: Point, k: int = 1) -> list[Hashable]:
        """Classic exact k-NN query on public objects."""
        if k < 1:
            raise QueryError("k must be positive")
        self._count_query("public_over_public_nn")
        return self.public.nearest(query, k)

    # ------------------------------------------------------------------
    # Continuous queries
    # ------------------------------------------------------------------

    def register_count_monitor(
        self, monitor_id: Hashable, window: Rect
    ) -> ContinuousCountMonitor:
        """Install a standing probabilistic count over ``window``.

        The monitor is seeded with the current private data and then
        maintained incrementally on every region update.
        """
        if monitor_id in self._monitors:
            raise QueryError(f"duplicate monitor id: {monitor_id!r}")
        monitor = ContinuousCountMonitor(window)
        monitor.seed_from_store(self.private)
        self._monitors[monitor_id] = monitor
        return monitor

    def drop_count_monitor(self, monitor_id: Hashable) -> None:
        if monitor_id not in self._monitors:
            raise QueryError(f"unknown monitor id: {monitor_id!r}")
        del self._monitors[monitor_id]

    def monitor(self, monitor_id: Hashable) -> ContinuousCountMonitor:
        try:
            return self._monitors[monitor_id]
        except KeyError:
            raise QueryError(f"unknown monitor id: {monitor_id!r}") from None
