"""The privacy-aware location-based database server (Section 6).

The server supports all four combinations of Section 6.1's data/query
taxonomy:

=================== ======================= ============================
query \\ data        public data             private data
=================== ======================= ============================
public query        classic spatio-temporal  probabilistic range / NN
                    range & NN               (Figure 6)
private query       candidate-set range & NN reducible to the other two
                    (Figure 5)               (see paper, end of §6.1)
=================== ======================= ============================

It never receives exact private locations: private data arrives only as
cloaked regions pushed by the :class:`~repro.core.anonymizer.LocationAnonymizer`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.core.errors import QueryError
from repro.core.stores import PrivateStore, PublicStore
from repro.engine.batch import BatchEngine, BatchResult
from repro.engine.queries import BatchQuery
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import Telemetry, get_telemetry
from repro.obs.events import (
    CANDIDATES_GENERATED,
    MONITOR_DROPPED,
    MONITOR_REGISTERED,
    POI_ADDED,
    POI_MOVED,
    POI_REMOVED,
    SERVER_QUERY,
)
from repro.queries.continuous import ContinuousCountMonitor
from repro.queries.private_nn import PrivateNNResult, private_nn_query
from repro.queries.private_range import PrivateRangeResult, private_range_query
from repro.queries.probabilistic import CountAnswer
from repro.queries.public_nn import PublicNNResult, public_nn_query
from repro.queries.public_range import naive_range_count, public_range_count


@dataclass(frozen=True)
class ServerStats:
    """Typed operational snapshot — counts are ints, never coerced to float.

    Attributes:
        public_objects / private_regions / monitors: store sizes now.
        region_updates: cloaked-region pushes received over the lifetime.
        queries_served: total queries, with the per-kind breakdown in
            ``queries_by_kind``.
    """

    public_objects: int
    private_regions: int
    monitors: int
    region_updates: int
    queries_served: int
    queries_by_kind: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, int]:
        """Flat ``{name: int}`` form (telemetry snapshots, exporters)."""
        out = {
            "public_objects": self.public_objects,
            "private_regions": self.private_regions,
            "monitors": self.monitors,
            "region_updates": self.region_updates,
            "queries_served": self.queries_served,
        }
        for kind, count in sorted(self.queries_by_kind.items()):
            out[f"queries_{kind}"] = count
        return out


class LocationServer:
    """Privacy-aware location-based database server.

    Args:
        telemetry: observability sink for spans and query metrics; the
            process-global telemetry is used when omitted (a
            :class:`~repro.core.system.PrivacySystem` injects its own).
    """

    def __init__(self, telemetry: Telemetry | None = None) -> None:
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self.public = PublicStore()
        self.private = PrivateStore()
        self._monitors: dict[Hashable, ContinuousCountMonitor] = {}
        self._engine: BatchEngine | None = None
        self._planner = None
        self.queries_served = 0
        self.queries_by_kind: dict[str, int] = {}
        self.region_updates_received = 0

    def stats(self) -> ServerStats:
        """Operational snapshot: store sizes, update and query counters."""
        return ServerStats(
            public_objects=len(self.public),
            private_regions=len(self.private),
            monitors=len(self._monitors),
            region_updates=self.region_updates_received,
            queries_served=self.queries_served,
            queries_by_kind=dict(self.queries_by_kind),
        )

    def _count_query(self, kind: str) -> None:
        self.queries_served += 1
        self.queries_by_kind[kind] = self.queries_by_kind.get(kind, 0) + 1
        self.telemetry.count("server.queries", kind=kind)
        # Durable accounting record: replaying these reconstructs the
        # served-query counters after a crash (repro.persist).  ``query``
        # not ``kind`` — the latter is the event-envelope key.
        self.telemetry.emit(SERVER_QUERY, query=kind, n=1)

    def record_query(self, kind: str) -> None:
        """Count one externally executed query under ``kind``.

        The cost-based planner's native-equivalent entry points use this
        so a planned query is accounted exactly like the entry point it
        replaces, whatever backend or route actually ran.
        """
        self._count_query(kind)

    # ------------------------------------------------------------------
    # Public data maintenance (exact locations, no privacy)
    # ------------------------------------------------------------------

    def add_public_object(self, object_id: Hashable, point: Point) -> None:
        """Register a stationary or moving public object."""
        self.public.add(object_id, point)
        self.telemetry.emit(
            POI_ADDED, object=str(object_id), x=point.x, y=point.y
        )

    def move_public_object(self, object_id: Hashable, point: Point) -> None:
        self.public.move(object_id, point)
        self.telemetry.emit(
            POI_MOVED, object=str(object_id), x=point.x, y=point.y
        )

    def remove_public_object(self, object_id: Hashable) -> None:
        self.public.remove(object_id)
        self.telemetry.emit(POI_REMOVED, object=str(object_id))

    # ------------------------------------------------------------------
    # Private data maintenance (cloaked regions from the anonymizer)
    # ------------------------------------------------------------------

    def receive_region(self, pseudonym: Hashable, region: Rect) -> None:
        """Store/refresh a cloaked region and wake affected monitors."""
        self.region_updates_received += 1
        self.private.set_region(pseudonym, region)
        for monitor in self._monitors.values():
            monitor.on_region_update(pseudonym, region)

    def receive_regions(self, regions: "dict[Hashable, Rect]") -> None:
        """Store/refresh a whole batch of cloaked regions at once.

        The bulk counterpart of :meth:`receive_region` for the vectorized
        anonymizer path: one store-level batch insert (which may rebuild
        the backing R-tree by STR packing), one snapshot invalidation,
        and the same monitor wake-ups per region.
        """
        if not regions:
            return
        self.region_updates_received += len(regions)
        with self.telemetry.span("server.receive_regions", n=len(regions)):
            self.private.set_regions(regions)
        if self._monitors:
            for pseudonym, region in regions.items():
                for monitor in self._monitors.values():
                    monitor.on_region_update(pseudonym, region)

    def forget_region(self, pseudonym: Hashable) -> None:
        """Drop a pseudonym (user unsubscribed or pseudonym rotated)."""
        self.private.remove(pseudonym)
        for monitor in self._monitors.values():
            monitor.on_object_removed(pseudonym)

    # ------------------------------------------------------------------
    # Private queries over public data (Figure 5)
    # ------------------------------------------------------------------

    def private_range(
        self, region: Rect, radius: float, method: str = "exact"
    ) -> PrivateRangeResult:
        """Candidate set for "public objects within ``radius`` of me"."""
        self._count_query("private_range")
        with self.telemetry.span("server.private_range", method=method):
            result = private_range_query(self.public, region, radius, method)
        self.telemetry.observe(
            "candidates", len(result.candidates), query="private_range"
        )
        self.telemetry.emit(
            CANDIDATES_GENERATED,
            query="private_range",
            method=method,
            candidates=len(result.candidates),
            region_area=region.area,
            radius=radius,
        )
        return result

    def private_nn(self, region: Rect, method: str = "filter") -> PrivateNNResult:
        """Candidate set for "my nearest public object"."""
        self._count_query("private_nn")
        with self.telemetry.span("server.private_nn", method=method):
            result = private_nn_query(self.public, region, method)
        self.telemetry.observe("candidates", len(result.candidates), query="private_nn")
        self.telemetry.emit(
            CANDIDATES_GENERATED,
            query="private_nn",
            method=method,
            candidates=len(result.candidates),
            region_area=region.area,
        )
        return result

    # ------------------------------------------------------------------
    # Public queries over private data (Figure 6)
    # ------------------------------------------------------------------

    def public_count(self, window: Rect) -> CountAnswer:
        """Probabilistic count of private users inside ``window``."""
        self._count_query("public_count")
        with self.telemetry.span("server.public_count"):
            return public_range_count(self.private, window)

    def public_count_naive(self, window: Rect) -> int:
        """The paper's criticised count-every-overlap baseline."""
        self._count_query("public_count_naive")
        with self.telemetry.span("server.public_count_naive"):
            return naive_range_count(self.private, window)

    def public_nn(
        self,
        query: Point,
        samples: int = 4096,
        rng: np.random.Generator | None = None,
    ) -> PublicNNResult:
        """Probabilistic nearest private user to a public query point."""
        self._count_query("public_nn")
        with self.telemetry.span("server.public_nn", samples=samples):
            return public_nn_query(self.private, query, samples, rng)

    # ------------------------------------------------------------------
    # Public queries over public data (the classic case, for completeness)
    # ------------------------------------------------------------------

    def public_range_over_public(self, window: Rect) -> list[Hashable]:
        """Classic exact range query on public objects."""
        self._count_query("public_over_public_range")
        with self.telemetry.span("server.public_range"):
            return self.public.range_query(window)

    def public_nn_over_public(self, query: Point, k: int = 1) -> list[Hashable]:
        """Classic exact k-NN query on public objects."""
        if k < 1:
            raise QueryError("k must be positive")
        self._count_query("public_over_public_nn")
        with self.telemetry.span("server.public_nn_exact", k=k):
            return self.public.nearest(query, k)

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    @property
    def engine(self) -> BatchEngine:
        """The server's batch executor (snapshot cache shared across calls)."""
        if self._engine is None:
            self._engine = BatchEngine(self)
        return self._engine

    @property
    def planner(self):
        """The server's cost-based query planner (created lazily).

        Lazy import keeps :mod:`repro.planner` out of the core import
        graph for callers that never plan.
        """
        if self._planner is None:
            from repro.planner import QueryPlanner

            self._planner = QueryPlanner(self)
        return self._planner

    def execute_batch(
        self,
        queries: list[BatchQuery],
        *,
        vectorize: bool = True,
        routes: "list[bool] | None" = None,
    ) -> list[BatchResult]:
        """Answer a heterogeneous query batch in one vectorised pass.

        Every query sees the same frozen snapshot of both stores; results
        align with the input order and match the per-query entry points
        (see ``docs/batch_engine.md``).  Queries are counted in
        :meth:`stats` under their batch kind names.  ``routes`` is the
        planner's per-query vectorized/scalar choice vector (see
        :meth:`repro.engine.batch.BatchEngine.execute`).
        """
        batch = list(queries)
        self.queries_served += len(batch)
        kinds: dict[str, int] = {}
        for query in batch:
            kinds[query.kind] = kinds.get(query.kind, 0) + 1
        for kind, n in kinds.items():
            self.queries_by_kind[kind] = self.queries_by_kind.get(kind, 0) + n
            self.telemetry.count("server.queries", amount=n, kind=kind)
            self.telemetry.emit(SERVER_QUERY, query=kind, n=n)
        return self.engine.execute(batch, vectorize=vectorize, routes=routes)

    # ------------------------------------------------------------------
    # Continuous queries
    # ------------------------------------------------------------------

    def register_count_monitor(
        self, monitor_id: Hashable, window: Rect
    ) -> ContinuousCountMonitor:
        """Install a standing probabilistic count over ``window``.

        The monitor is seeded with the current private data and then
        maintained incrementally on every region update.
        """
        if monitor_id in self._monitors:
            raise QueryError(f"duplicate monitor id: {monitor_id!r}")
        monitor = ContinuousCountMonitor(window)
        monitor.seed_from_store(self.private)
        self._monitors[monitor_id] = monitor
        self.telemetry.emit(
            MONITOR_REGISTERED,
            monitor=str(monitor_id),
            min_x=window.min_x,
            min_y=window.min_y,
            max_x=window.max_x,
            max_y=window.max_y,
        )
        return monitor

    def drop_count_monitor(self, monitor_id: Hashable) -> None:
        if monitor_id not in self._monitors:
            raise QueryError(f"unknown monitor id: {monitor_id!r}")
        del self._monitors[monitor_id]
        self.telemetry.emit(MONITOR_DROPPED, monitor=str(monitor_id))

    def monitor(self, monitor_id: Hashable) -> ContinuousCountMonitor:
        try:
            return self._monitors[monitor_id]
        except KeyError:
            raise QueryError(f"unknown monitor id: {monitor_id!r}") from None
