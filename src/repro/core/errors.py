"""Exception hierarchy for the privacy-aware location system."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ProfileError(ReproError):
    """An invalid privacy profile or privacy requirement."""


class CloakingError(ReproError):
    """The anonymizer could not produce any region for a request."""


class RegistrationError(ReproError):
    """Invalid user registration or lookup at the anonymizer/server."""


class QueryError(ReproError):
    """An ill-formed query submitted to the location server."""
