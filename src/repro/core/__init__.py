"""Core: privacy profiles, the Location Anonymizer, and the database server.

The leaf modules (errors, profiles) are imported eagerly; the orchestration
classes are loaded lazily via module ``__getattr__`` because they depend on
:mod:`repro.cloaking` and :mod:`repro.queries`, which in turn import this
package's leaf modules — eager imports would be circular.
"""

from repro.core.errors import (
    CloakingError,
    ProfileError,
    QueryError,
    RegistrationError,
    ReproError,
)
from repro.core.profiles import (
    NO_PRIVACY,
    PrivacyProfile,
    PrivacyRequirement,
    ProfileEntry,
    example_profile,
    hhmm,
    time_of_day,
)

__all__ = [
    "ReproError",
    "ProfileError",
    "CloakingError",
    "RegistrationError",
    "QueryError",
    "PrivacyRequirement",
    "PrivacyProfile",
    "ProfileEntry",
    "NO_PRIVACY",
    "hhmm",
    "time_of_day",
    "example_profile",
    "PublicStore",
    "PrivateStore",
    "LocationServer",
    "LocationAnonymizer",
    "PrivacySystem",
    "QoSLedger",
    "RangeQueryOutcome",
    "NNQueryOutcome",
    "save_public_store",
    "load_public_store",
    "save_private_store",
    "load_private_store",
    "save_profiles",
    "load_profiles",
]

_LAZY = {
    "PublicStore": ("repro.core.stores", "PublicStore"),
    "save_public_store": ("repro.core.persistence", "save_public_store"),
    "load_public_store": ("repro.core.persistence", "load_public_store"),
    "save_private_store": ("repro.core.persistence", "save_private_store"),
    "load_private_store": ("repro.core.persistence", "load_private_store"),
    "save_profiles": ("repro.core.persistence", "save_profiles"),
    "load_profiles": ("repro.core.persistence", "load_profiles"),
    "PrivateStore": ("repro.core.stores", "PrivateStore"),
    "LocationServer": ("repro.core.server", "LocationServer"),
    "LocationAnonymizer": ("repro.core.anonymizer", "LocationAnonymizer"),
    "PrivacySystem": ("repro.core.system", "PrivacySystem"),
    "QoSLedger": ("repro.core.system", "QoSLedger"),
    "RangeQueryOutcome": ("repro.core.system", "RangeQueryOutcome"),
    "NNQueryOutcome": ("repro.core.system", "NNQueryOutcome"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
