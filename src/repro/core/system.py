"""End-to-end privacy-aware LBS pipeline (Figure 1 of the paper).

``PrivacySystem`` wires the three entities of the architecture — mobile
users, the Location Anonymizer, and the location-based database server —
plus a mobility model, and keeps the quality-of-service ledger that the
privacy/QoS trade-off experiments (E9) read.

The central tension the paper describes is made measurable here: a query's
*answer quality* never degrades (candidate sets always contain the true
answer and the client refines locally), what degrades with stronger privacy
is the *cost* — candidate-set transmission sizes and probabilistic-answer
uncertainty.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field, replace
from typing import Hashable

import numpy as np

from repro.cloaking.base import Cloaker
from repro.cloaking.incremental import IncrementalCloaker
from repro.core.anonymizer import LocationAnonymizer
from repro.core.errors import QueryError, RegistrationError
from repro.core.server import LocationServer
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.core.profiles import profile_rows
from repro.mobility.users import MobileUser, UserMode
from repro.obs import Telemetry
from repro.obs.events import (
    CLOCK_ADVANCED,
    LOG_TRUNCATED,
    QUERY_COMPLETED,
    USER_ADDED,
    USER_MODE_CHANGED,
    USER_MOVED,
    WAL_ROTATED,
)
from repro.queries.private_knn import refine_knn_candidates
from repro.queries.private_nn import refine_nn_candidates
from repro.queries.private_range import exact_range_answer, refine_range_candidates
from repro.queries.spec import (
    KNNSpec,
    NNSpec,
    QuerySpec,
    RangeSpec,
    SPEC_TYPES,
    is_user_bound,
)

#: Auto-rotate the WAL at checkpoint time once it exceeds this size.
DEFAULT_WAL_ROTATE_BYTES = 32 * 1024 * 1024


@dataclass(frozen=True)
class RangeQueryOutcome:
    """Ledger entry for one end-to-end private range query.

    Attributes:
        user_id: who asked.
        cloak_area: area of the cloaked region used.
        candidates: server-to-client transmission size.
        answer_size: size of the refined (true) answer.
        correct: did refinement produce exactly the ground-truth answer?
    """

    user_id: Hashable
    cloak_area: float
    candidates: int
    answer_size: int
    correct: bool

    @property
    def overhead(self) -> float:
        """Candidates shipped per true answer object (>= 1.0)."""
        return self.candidates / max(1, self.answer_size)


@dataclass(frozen=True)
class NNQueryOutcome:
    """Ledger entry for one end-to-end private NN query."""

    user_id: Hashable
    cloak_area: float
    candidates: int
    correct: bool


@dataclass(frozen=True)
class KNNQueryOutcome:
    """Ledger entry for one end-to-end private k-NN query.

    ``correct`` compares the refined list's distance sequence against
    the canonical k-NN answer's, so equidistant permutations count as
    correct (the paper's answer-quality guarantee is distance-exact,
    not id-exact, under ties).
    """

    user_id: Hashable
    cloak_area: float
    k: int
    candidates: int
    answer_size: int
    correct: bool

    @property
    def overhead(self) -> float:
        """Candidates shipped per true answer object (>= 1.0)."""
        return self.candidates / max(1, self.answer_size)


@dataclass
class QoSLedger:
    """Accumulated quality-of-service statistics."""

    range_outcomes: list[RangeQueryOutcome] = field(default_factory=list)
    nn_outcomes: list[NNQueryOutcome] = field(default_factory=list)
    knn_outcomes: list[KNNQueryOutcome] = field(default_factory=list)

    def summary(self) -> dict[str, float]:
        """Aggregate trade-off metrics for reports."""
        out: dict[str, float] = {}
        if self.range_outcomes:
            out["range_queries"] = len(self.range_outcomes)
            out["range_mean_candidates"] = float(
                np.mean([o.candidates for o in self.range_outcomes])
            )
            out["range_mean_overhead"] = float(
                np.mean([o.overhead for o in self.range_outcomes])
            )
            out["range_accuracy"] = float(
                np.mean([o.correct for o in self.range_outcomes])
            )
            out["mean_cloak_area"] = float(
                np.mean([o.cloak_area for o in self.range_outcomes])
            )
        if self.nn_outcomes:
            out["nn_queries"] = len(self.nn_outcomes)
            out["nn_mean_candidates"] = float(
                np.mean([o.candidates for o in self.nn_outcomes])
            )
            out["nn_accuracy"] = float(np.mean([o.correct for o in self.nn_outcomes]))
        if self.knn_outcomes:
            out["knn_queries"] = len(self.knn_outcomes)
            out["knn_mean_candidates"] = float(
                np.mean([o.candidates for o in self.knn_outcomes])
            )
            out["knn_mean_overhead"] = float(
                np.mean([o.overhead for o in self.knn_outcomes])
            )
            out["knn_accuracy"] = float(
                np.mean([o.correct for o in self.knn_outcomes])
            )
        return out


class PrivacySystem:
    """Users + anonymizer + server, stepped together.

    Args:
        bounds: the universe rectangle.
        cloaker: the anonymizer's cloaking algorithm.
        rotate_pseudonyms: pseudonym policy forwarded to the anonymizer.
        telemetry: observability sink shared by the whole pipeline.  Each
            system gets its own :class:`~repro.obs.Telemetry` by default so
            two systems in one process never mix their metrics; pass one in
            to aggregate across systems or to start with tracing disabled.
    """

    def __init__(
        self,
        bounds: Rect,
        cloaker: Cloaker | IncrementalCloaker,
        rotate_pseudonyms: bool = False,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.bounds = bounds
        self.obs = telemetry if telemetry is not None else Telemetry()
        self.server = LocationServer(telemetry=self.obs)
        self.anonymizer = LocationAnonymizer(
            cloaker,
            self.server,
            rotate_pseudonyms=rotate_pseudonyms,
            telemetry=self.obs,
        )
        self.users: dict[Hashable, MobileUser] = {}
        self.ledger = QoSLedger()
        self.clock = 0.0
        #: Live monitoring (repro.obs.timeseries / repro.obs.risk); None
        #: until :meth:`enable_monitoring` — a disabled system pays one
        #: attribute check per entry point.
        self.timeseries = None
        self.risk = None
        self._wal_dir: str | None = None

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def add_poi(self, object_id: Hashable, point: Point) -> None:
        """Add a public point of interest (gas station, restaurant...)."""
        self.server.add_public_object(object_id, point)

    def add_user(self, user: MobileUser) -> None:
        """Add a mobile user; visible modes register with the anonymizer."""
        if user.user_id in self.users:
            raise RegistrationError(f"duplicate user: {user.user_id!r}")
        self.users[user.user_id] = user
        # System-level durable record (covers passive users, who never
        # reach the anonymizer and so never get a ``user.admitted``).
        self.obs.emit(
            USER_ADDED,
            user=str(user.user_id),
            x=user.location.x,
            y=user.location.y,
            mode=user.mode.value,
            speed=user.speed,
            profile=profile_rows(user.profile),
        )
        if user.is_visible:
            self.anonymizer.register(user.user_id, user.profile, user.location)

    def set_mode(self, user_id: Hashable, mode: UserMode) -> None:
        """Switch a user's participation mode, (un)registering as needed."""
        user = self._user(user_id)
        was_visible = user.is_visible
        self.obs.emit(USER_MODE_CHANGED, user=str(user_id), mode=mode.value)
        user.mode = mode
        if user.is_visible and not was_visible:
            self.anonymizer.register(user.user_id, user.profile, user.location)
        elif was_visible and not user.is_visible:
            self.anonymizer.unregister(user.user_id)

    # ------------------------------------------------------------------
    # Simulation stepping
    # ------------------------------------------------------------------

    def apply_movement(self, positions: dict[Hashable, Point], dt: float = 1.0) -> None:
        """Apply one mobility-model step's positions and publish regions."""
        self.clock += dt
        self.obs.emit(CLOCK_ADVANCED, t=self.clock, dt=dt)
        for user_id, point in positions.items():
            user = self._user(user_id)
            user.location = point
            if user.is_visible:
                # The anonymizer emits the durable ``user.moved`` record.
                self.anonymizer.update_location(user_id, point)
            else:
                self.obs.emit(
                    USER_MOVED, user=str(user_id), x=point.x, y=point.y
                )
        for user_id in positions:
            if self._user(user_id).is_visible:
                self.anonymizer.publish(user_id, self.clock)

    def publish_all(self, *, bulk: bool = False) -> None:
        """Push fresh cloaked regions for every visible user.

        ``bulk=True`` routes through the vectorized one-pass population
        cloaker (:meth:`LocationAnonymizer.publish_all_bulk`) — same
        regions, one numpy pass plus a single server batch push.
        """
        with self.obs.correlate("b"):
            if bulk:
                self.anonymizer.publish_all_bulk(self.clock)
            else:
                self.anonymizer.publish_all(self.clock)
        if self.timeseries is not None:
            self.timeseries.maybe_sample()

    # ------------------------------------------------------------------
    # The declarative query entry point
    # ------------------------------------------------------------------

    @property
    def planner(self):
        """The server's cost-based planner, wired to this world's bounds."""
        planner = self.server.planner
        if planner.replicas.universe is None:
            planner.set_universe(self.bounds)
        return planner

    def query(self, spec: QuerySpec):
        """Answer one declarative :class:`~repro.queries.spec.QuerySpec`.

        The single front door for all four query types in both flavors.
        User-bound private specs run the full pipeline (cloak -> planned
        server execution -> client refinement) with QoS accounting and
        return ``(outcome, refined_answer)``; everything else is routed
        by the cost-based planner and returns the server-side answer
        (see :meth:`repro.planner.QueryPlanner.execute` for the result
        type per spec).
        """
        if not isinstance(spec, SPEC_TYPES):
            raise QueryError(
                f"query() takes a QuerySpec, got {type(spec).__name__}"
            )
        # One correlation id per front-door request: every span, event
        # and planner decision below joins on it (repro.obs.correlate).
        with self.obs.correlate("q"):
            if is_user_bound(spec):
                if isinstance(spec, RangeSpec):
                    result = self._user_range(spec)
                elif isinstance(spec, KNNSpec):
                    result = self._user_knn(spec)
                else:
                    result = self._user_nn(spec)
            else:
                result = self.planner.execute(spec)
        if self.timeseries is not None:
            self.timeseries.maybe_sample()
        return result

    def _cloaked(self, spec):
        """Cloak the spec's user and return the region-bound spec form."""
        cloak = self.anonymizer.cloak_user(spec.user, self.clock)
        return cloak, replace(spec, user=None, region=cloak.region)

    def _user_range(
        self, spec: RangeSpec
    ) -> tuple[RangeQueryOutcome, list[Hashable]]:
        """Full pipeline: cloak -> planned candidates -> client refinement."""
        user = self._visible_user(spec.user)
        with self.obs.span("query.private_range", method=spec.method):
            cloak, bound = self._cloaked(spec)
            result = self.planner.execute(bound)
            with self.obs.span("client.refine", query="private_range"):
                refined = refine_range_candidates(
                    self.server.public, result, user.location
                )
        truth = exact_range_answer(self.server.public, user.location, spec.radius)
        outcome = RangeQueryOutcome(
            user_id=spec.user,
            cloak_area=cloak.region.area,
            candidates=len(result.candidates),
            answer_size=len(refined),
            correct=sorted(refined, key=repr) == sorted(truth, key=repr),
        )
        self.ledger.range_outcomes.append(outcome)
        self.obs.observe("qos.range_overhead", outcome.overhead)
        self.obs.emit(
            QUERY_COMPLETED,
            query="private_range",
            user=str(spec.user),
            candidates=outcome.candidates,
            answer_size=outcome.answer_size,
            overhead=outcome.overhead,
            correct=outcome.correct,
            cloak_area=outcome.cloak_area,
        )
        return outcome, refined

    def _user_nn(self, spec: NNSpec) -> tuple[NNQueryOutcome, Hashable]:
        """Full pipeline for a private nearest-neighbour query."""
        user = self._visible_user(spec.user)
        with self.obs.span("query.private_nn", method=spec.method):
            cloak, bound = self._cloaked(spec)
            result = self.planner.execute(bound)
            with self.obs.span("client.refine", query="private_nn"):
                refined = refine_nn_candidates(
                    self.server.public, result, user.location
                )
        truth = self.server.public.nearest(user.location, k=1)[0]
        outcome = NNQueryOutcome(
            user_id=spec.user,
            cloak_area=cloak.region.area,
            candidates=len(result.candidates),
            correct=refined == truth,
        )
        self.ledger.nn_outcomes.append(outcome)
        self.obs.observe("qos.nn_candidates", outcome.candidates)
        self.obs.emit(
            QUERY_COMPLETED,
            query="private_nn",
            user=str(spec.user),
            candidates=outcome.candidates,
            answer_size=1,
            overhead=float(outcome.candidates),
            correct=outcome.correct,
            cloak_area=outcome.cloak_area,
        )
        return outcome, refined

    def _user_knn(
        self, spec: KNNSpec
    ) -> tuple[KNNQueryOutcome, list[Hashable]]:
        """Full pipeline for a private k-NN query."""
        user = self._visible_user(spec.user)
        with self.obs.span("query.private_knn", method=spec.method):
            cloak, bound = self._cloaked(spec)
            result = self.planner.execute(bound)
            with self.obs.span("client.refine", query="private_knn"):
                refined = refine_knn_candidates(
                    self.server.public, result, user.location
                )
        truth = self.server.public.nearest(
            user.location, k=min(spec.k, len(self.server.public))
        )
        location = user.location

        def distances(items):
            return [
                self.server.public.point_of(i).distance_to(location)
                for i in items
            ]

        outcome = KNNQueryOutcome(
            user_id=spec.user,
            cloak_area=cloak.region.area,
            k=spec.k,
            candidates=len(result.candidates),
            answer_size=len(refined),
            correct=distances(refined) == distances(truth),
        )
        self.ledger.knn_outcomes.append(outcome)
        self.obs.observe("qos.knn_candidates", outcome.candidates)
        self.obs.emit(
            QUERY_COMPLETED,
            query="private_knn",
            user=str(spec.user),
            k=spec.k,
            candidates=outcome.candidates,
            answer_size=outcome.answer_size,
            overhead=outcome.overhead,
            correct=outcome.correct,
            cloak_area=outcome.cloak_area,
        )
        return outcome, refined

    # ------------------------------------------------------------------
    # Deprecated positional wrappers (pre-QuerySpec API)
    # ------------------------------------------------------------------

    def user_range_query(
        self, user_id: Hashable, radius: float, method: str = "exact"
    ) -> tuple[RangeQueryOutcome, list[Hashable]]:
        """Deprecated: use ``query(RangeSpec(flavor="private", ...))``."""
        warnings.warn(
            "PrivacySystem.user_range_query() is deprecated; use "
            "query(RangeSpec(flavor='private', user=..., radius=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(
            RangeSpec(
                flavor="private", user=user_id, radius=radius, method=method
            )
        )

    def user_nn_query(
        self, user_id: Hashable, method: str = "filter"
    ) -> tuple[NNQueryOutcome, Hashable]:
        """Deprecated: use ``query(NNSpec(flavor="private", user=...))``."""
        warnings.warn(
            "PrivacySystem.user_nn_query() is deprecated; use "
            "query(NNSpec(flavor='private', user=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.query(NNSpec(flavor="private", user=user_id, method=method))

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def execute_batch(self, queries: list, *, vectorize: bool = True) -> list:
        """Answer a heterogeneous batch, results aligned with input order.

        Accepts either :class:`~repro.queries.spec.QuerySpec` values
        (planned per query by the cost-based planner; user-bound specs
        run the full QoS-accounted pipeline) or legacy
        :mod:`repro.engine.queries` batch queries (forwarded untouched
        to :meth:`~repro.core.server.LocationServer.execute_batch`,
        where ``vectorize`` applies).
        """
        batch = list(queries)
        with self.obs.correlate("b"), self.obs.span(
            "system.execute_batch", size=len(batch)
        ):
            if not batch or not isinstance(batch[0], SPEC_TYPES):
                results = self.server.execute_batch(batch, vectorize=vectorize)
            else:
                results = [None] * len(batch)
                planned: list[int] = []
                for position, spec in enumerate(batch):
                    if is_user_bound(spec):
                        results[position] = self.query(spec)
                    else:
                        planned.append(position)
                if planned:
                    answers = self.planner.execute_batch(
                        [batch[p] for p in planned]
                    )
                    for position, answer in zip(planned, answers):
                        results[position] = answer
        if self.timeseries is not None:
            self.timeseries.maybe_sample()
        return results

    # ------------------------------------------------------------------
    # Live monitoring (time-series windows + online privacy risk)
    # ------------------------------------------------------------------

    def enable_monitoring(
        self,
        *,
        interval: float = 1.0,
        keep: int = 120,
        resolution: int = 16,
        max_speed: float | None = None,
        seed: bool = True,
    ) -> "PrivacySystem":
        """Turn on windowed telemetry sampling and online risk scoring.

        Installs a :class:`~repro.obs.timeseries.TimeSeriesStore` (one
        window per ``interval`` seconds, ``keep`` windows retained) and a
        :class:`~repro.obs.risk.PrivacyRiskMonitor` tapping the event
        stream; each cut window triggers one risk score, so the
        ``risk.*`` gauges and ``risk.scored`` events track the same
        cadence the windows do.  ``seed=True`` primes the risk monitor
        from current anonymizer/server state so a mid-run enable does
        not start blind.  Idempotent; returns ``self`` for chaining.
        """
        from repro.obs.risk import PrivacyRiskMonitor
        from repro.obs.timeseries import TimeSeriesStore

        if self.timeseries is None:
            self.timeseries = TimeSeriesStore(
                self.obs, interval=interval, keep=keep
            )
        if self.risk is None:
            self.risk = PrivacyRiskMonitor(
                self.bounds,
                resolution=resolution,
                max_speed=max_speed,
                telemetry=self.obs,
            )
            self.risk.install(self.obs.events)
            if seed:
                self.risk.seed_from(self)
            self.timeseries.on_sample.append(self._score_risk)
        return self

    def disable_monitoring(self) -> None:
        """Detach the risk monitor tap and drop the time-series store."""
        if self.risk is not None:
            self.risk.uninstall()
            self.risk = None
        self.timeseries = None

    def _score_risk(self, window) -> None:
        """on_sample hook: one risk score per cut window."""
        if self.risk is not None:
            self.risk.score()

    # ------------------------------------------------------------------
    # Durability (checkpoints + WAL; see docs/durability.md)
    # ------------------------------------------------------------------

    def attach_wal(self, directory) -> None:
        """Stream every future event to ``<directory>/wal.jsonl``.

        Also drops a ``wal-meta.json`` sidecar (bounds, pseudonym policy,
        cloaker configuration) so :meth:`recover` can cold-start from the
        log alone when no checkpoint was ever written.  Attach before the
        first mutation: the WAL can only replay what it has seen.
        """
        from repro.persist.checkpoint import write_wal_meta

        write_wal_meta(self, directory)
        self._wal_dir = str(directory)
        self.obs.events.attach_jsonl(os.path.join(self._wal_dir, "wal.jsonl"))

    def rotate_wal(self) -> str | None:
        """Seal the live WAL into a segment file and start a fresh one.

        The old ``wal.jsonl`` is renamed to ``wal-<last_seq>.jsonl`` and
        the fresh WAL opens with a ``log.truncated`` marker carrying
        ``rotated_to``, so :class:`~repro.persist.recovery.Recovery` can
        tell a deliberate rotation (fine, as long as a checkpoint covers
        the rotated-away prefix) from accidental truncation (refused).
        Returns the segment file name, or ``None`` when no WAL is
        attached or nothing has been streamed yet.
        """
        log = self.obs.events
        if self._wal_dir is None or log._sink is None:
            return None
        streamed = log._streamed_seq
        if streamed <= 0:
            return None
        from repro.persist.checkpoint import WAL_NAME

        wal_path = os.path.join(self._wal_dir, WAL_NAME)
        segment = f"wal-{streamed:012d}.jsonl"
        log.detach_jsonl()
        rotated_bytes = (
            os.path.getsize(wal_path) if os.path.exists(wal_path) else 0
        )
        os.replace(wal_path, os.path.join(self._wal_dir, segment))
        marker = {
            "kind": LOG_TRUNCATED,
            "seq": streamed,
            "first_seq": 1,
            "last_seq": streamed,
            "lost": streamed,
            "reason": "rotated",
            "rotated_to": segment,
        }
        with open(wal_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(marker, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        # Re-attach: ring seqs are all <= streamed, so no backfill occurs
        # and the fresh WAL stays marker-first.
        log.attach_jsonl(wal_path)
        self.obs.emit(
            WAL_ROTATED,
            segment=segment,
            last_seq=streamed,
            bytes=rotated_bytes,
        )
        return segment

    def checkpoint(
        self,
        directory,
        *,
        rotate_wal_over: int | None = DEFAULT_WAL_ROTATE_BYTES,
    ) -> str:
        """Write an atomic versioned checkpoint of the whole pipeline.

        Returns the checkpoint file path and emits ``persist.checkpoint``.
        Replay after recovery starts from the WAL sequence number the
        checkpoint records, so the WAL tail stays short.  When the live
        WAL has grown past ``rotate_wal_over`` bytes it is rotated
        *before* the checkpoint is written — the checkpoint's sequence
        number then covers the rotation point, keeping the replay tail
        contiguous.  Pass ``rotate_wal_over=None`` to never rotate.
        """
        from repro.persist.checkpoint import WAL_NAME, write_checkpoint

        if (
            rotate_wal_over is not None
            and self._wal_dir is not None
            and self.obs.events._sink is not None
        ):
            wal_path = os.path.join(self._wal_dir, WAL_NAME)
            if (
                os.path.exists(wal_path)
                and os.path.getsize(wal_path) > rotate_wal_over
            ):
                self.rotate_wal()
        return write_checkpoint(self, directory)

    @classmethod
    def recover(
        cls,
        directory,
        *,
        cloaker: Cloaker | IncrementalCloaker | None = None,
        telemetry: Telemetry | None = None,
        allow_gaps: bool = False,
        attach: bool = False,
    ) -> "PrivacySystem":
        """Reconstruct a system from ``directory``'s checkpoint + WAL tail.

        Restores the newest readable checkpoint (cold-starts from the WAL
        alone when none exists) and replays every logged event past it.
        Declared WAL gaps (``log.truncated`` markers, sequence holes)
        raise :class:`~repro.persist.recovery.RecoveryError` unless
        ``allow_gaps=True``.  ``cloaker`` overrides the recorded cloaker
        configuration (required when the configuration was not
        serialisable).  ``attach=True`` re-attaches the recovered system
        to the same WAL, so the resumed session keeps appending a
        seq-contiguous durable trail.
        """
        from repro.persist.recovery import Recovery

        return Recovery(
            directory,
            cloaker=cloaker,
            telemetry=telemetry,
            allow_gaps=allow_gaps,
            attach=attach,
        ).recover()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def telemetry(self) -> dict:
        """One pipeline-wide observability snapshot.

        Merges the telemetry sink's view (per-stage latency quantiles,
        counters, gauges, value histograms) with the structures the sink
        cannot see from the outside: per-index work counters, the server's
        operational stats, and the QoS ledger summary.  The result is
        JSON-serialisable as-is (``repro.obs.export.to_json``).
        """
        snapshot = self.obs.snapshot()
        indexes: dict[str, dict[str, int]] = {
            "server.public": self.server.public.index_counters.snapshot(),
            "server.private": self.server.private.index_counters.snapshot(),
        }
        cloak_index = self.anonymizer.cloaker.spatial_index()
        if cloak_index is not None:
            indexes["anonymizer.cloaker"] = cloak_index.counters.snapshot()
        snapshot["indexes"] = indexes
        snapshot["server"] = self.server.stats().as_dict()
        snapshot["qos"] = self.ledger.summary()
        return snapshot

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _user(self, user_id: Hashable) -> MobileUser:
        try:
            return self.users[user_id]
        except KeyError:
            raise RegistrationError(f"unknown user: {user_id!r}") from None

    def _visible_user(self, user_id: Hashable) -> MobileUser:
        user = self._user(user_id)
        if not user.is_visible:
            raise RegistrationError(
                f"user {user_id!r} is passive and cannot issue queries"
            )
        if user.mode is not UserMode.QUERY:
            user.mode = UserMode.QUERY
        return user
