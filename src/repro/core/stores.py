"""Data stores of the privacy-aware location-based database server.

Section 6.1 of the paper splits server-side data into:

* **public data** — exact locations that need no protection: stationary
  facilities (gas stations, hospitals) and moving public objects (police
  cars, on-site workers).  Held in :class:`PublicStore`.
* **private data** — mobile users represented *only* by their cloaked
  spatial regions; the server never sees their exact points.  Held in
  :class:`PrivateStore`.

Both stores are thin R-tree wrappers: they add identity bookkeeping and the
iteration hooks the query processors need.
"""

from __future__ import annotations

from collections import deque
from itertools import islice
from typing import Iterator, Mapping

import numpy as np

from repro.core.errors import RegistrationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import IndexCounters, ItemId
from repro.index.rtree import RTree

#: Mutations each store remembers for incremental snapshot deltas; gaps
#: wider than this force a full snapshot re-capture (bounded memory).
CHANGELOG_KEEP = 4096

#: A batch covering at least this fraction of the resulting private store
#: rebuilds the R-tree by STR bulk loading instead of per-item updates.
REBUILD_FRACTION = 0.5


class PublicStore:
    """Exact point objects (the paper's "public data")."""

    def __init__(self, max_entries: int = 16) -> None:
        self._rtree = RTree(max_entries=max_entries)
        self._points: dict[ItemId, Point] = {}
        self._version = 0
        self._snapshot: tuple[tuple[ItemId, ...], np.ndarray, np.ndarray] | None = None
        self._changelog: deque[tuple[ItemId, Point | None]] = deque(
            maxlen=CHANGELOG_KEEP
        )

    @classmethod
    def from_points(
        cls, points: dict[ItemId, Point], max_entries: int = 16
    ) -> "PublicStore":
        """Bulk-load a store from a full catalogue (STR-packed R-tree).

        The right constructor for static POI datasets: a packed tree is
        shallower and tighter than one grown by repeated inserts.
        """
        store = cls(max_entries=max_entries)
        store._points = dict(points)
        store._rtree = RTree.bulk_load(
            {object_id: Rect.from_point(p) for object_id, p in points.items()},
            max_entries=max_entries,
        )
        return store

    def add(self, object_id: ItemId, point: Point) -> None:
        """Register a public object at ``point``."""
        if object_id in self._points:
            raise RegistrationError(f"duplicate public object: {object_id!r}")
        self._points[object_id] = point
        self._rtree.insert(object_id, Rect.from_point(point))
        self._touch(object_id, point)

    def move(self, object_id: ItemId, point: Point) -> None:
        """Update a moving public object (e.g. a police car)."""
        if object_id not in self._points:
            raise RegistrationError(f"unknown public object: {object_id!r}")
        self._rtree.update(object_id, Rect.from_point(point))
        self._points[object_id] = point
        self._touch(object_id, point)

    def remove(self, object_id: ItemId) -> None:
        if object_id not in self._points:
            raise RegistrationError(f"unknown public object: {object_id!r}")
        self._rtree.delete(object_id)
        del self._points[object_id]
        self._touch(object_id, None)

    def _touch(self, object_id: ItemId, payload: Point | None) -> None:
        self._version += 1
        self._snapshot = None
        self._changelog.append((object_id, payload))

    @property
    def version(self) -> int:
        """Monotonic mutation counter (snapshot-cache invalidation key)."""
        return self._version

    def changes_since(
        self, version: int
    ) -> list[tuple[ItemId, Point | None]] | None:
        """Mutations after ``version``, oldest-first (``None`` payload =
        removal); ``None`` when the changelog no longer covers the gap
        and callers must re-capture."""
        return _changes_since(self._changelog, self._version, version)

    def snapshot_arrays(
        self,
    ) -> tuple[tuple[ItemId, ...], np.ndarray, np.ndarray]:
        """Point-in-time ``(ids, xs, ys)`` view of every public object.

        Built once per store version via the backing index's bulk export
        (:meth:`~repro.index.base.SpatialIndex.snapshot_rects`) and reused
        until the next mutation, so consecutive batches over a quiescent
        store pay nothing.  The arrays are immutable (non-writeable).
        """
        if self._snapshot is None:
            ids, bounds = self._rtree.snapshot_rects()
            xs = bounds[:, 0].copy()
            ys = bounds[:, 1].copy()
            xs.flags.writeable = False
            ys.flags.writeable = False
            self._snapshot = (tuple(ids), xs, ys)
        return self._snapshot

    def point_of(self, object_id: ItemId) -> Point:
        try:
            return self._points[object_id]
        except KeyError:
            raise RegistrationError(f"unknown public object: {object_id!r}") from None

    def range_query(self, window: Rect) -> list[ItemId]:
        """Objects whose exact point lies in ``window``."""
        return self._rtree.range_query(window)

    def nearest(self, point: Point, k: int = 1) -> list[ItemId]:
        return self._rtree.nearest(point, k)

    def nearest_iter(self, point: Point) -> Iterator[tuple[ItemId, float]]:
        """Incremental nearest-first iteration of ``(id, distance)``."""
        return self._rtree.nearest_iter(point)

    @property
    def index_counters(self) -> IndexCounters:
        """Cumulative work counters of the backing R-tree (observability)."""
        return self._rtree.counters

    def items(self) -> Iterator[tuple[ItemId, Point]]:
        return iter(self._points.items())

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ItemId]:
        return iter(self._points)

    def __contains__(self, object_id: ItemId) -> bool:
        return object_id in self._points


class PrivateStore:
    """Cloaked-region objects (the paper's "private data").

    The paper stresses that privacy is managed *before* storage: "we aim
    not to store the data at all.  Instead, we store perturbed version of
    the data."  Accordingly this store accepts only regions; there is no
    API through which an exact private location could even enter.
    """

    def __init__(self, max_entries: int = 16) -> None:
        self._max_entries = max_entries
        self._rtree = RTree(max_entries=max_entries)
        self._regions: dict[ItemId, Rect] = {}
        self._version = 0
        self._snapshot: tuple[tuple[ItemId, ...], np.ndarray] | None = None
        self._changelog: deque[tuple[ItemId, Rect | None]] = deque(
            maxlen=CHANGELOG_KEEP
        )

    def set_region(self, object_id: ItemId, region: Rect) -> None:
        """Insert or replace the cloaked region of ``object_id``."""
        if object_id in self._regions:
            self._rtree.update(object_id, region)
        else:
            self._rtree.insert(object_id, region)
        self._regions[object_id] = region
        self._touch(object_id, region)

    def set_regions(self, regions: Mapping[ItemId, Rect]) -> None:
        """Insert or replace many cloaked regions in one batch.

        The bulk publication step of the vectorized anonymizer path.  When
        the batch covers at least :data:`REBUILD_FRACTION` of the
        resulting store, the backing R-tree is rebuilt by STR bulk loading
        (near-100 % fill, tight MBRs) instead of churned item by item —
        the dominant case, since a reporting round republishes everybody.
        The changelog stays one entry per version bump either way, so
        incremental snapshot deltas keep working across bulk rounds.
        """
        if not regions:
            return
        fresh = sum(
            1 for object_id in regions if object_id not in self._regions
        )
        total = len(self._regions) + fresh
        if len(regions) >= REBUILD_FRACTION * total:
            self._regions.update(regions)
            rebuilt = RTree.bulk_load(
                self._regions, max_entries=self._max_entries
            )
            rebuilt._obs_counters = self._rtree.counters
            self._rtree = rebuilt
        else:
            for object_id, region in regions.items():
                if object_id in self._regions:
                    self._rtree.update(object_id, region)
                else:
                    self._rtree.insert(object_id, region)
                self._regions[object_id] = region
        self._version += len(regions)
        self._snapshot = None
        self._changelog.extend(regions.items())

    def remove(self, object_id: ItemId) -> None:
        if object_id not in self._regions:
            raise RegistrationError(f"unknown private object: {object_id!r}")
        self._rtree.delete(object_id)
        del self._regions[object_id]
        self._touch(object_id, None)

    def _touch(self, object_id: ItemId, payload: Rect | None) -> None:
        self._version += 1
        self._snapshot = None
        self._changelog.append((object_id, payload))

    @property
    def version(self) -> int:
        """Monotonic mutation counter (snapshot-cache invalidation key)."""
        return self._version

    def changes_since(
        self, version: int
    ) -> list[tuple[ItemId, Rect | None]] | None:
        """Mutations after ``version``, oldest-first (``None`` payload =
        removal); ``None`` when the changelog no longer covers the gap
        and callers must re-capture."""
        return _changes_since(self._changelog, self._version, version)

    def snapshot_arrays(self) -> tuple[tuple[ItemId, ...], np.ndarray]:
        """Point-in-time ``(ids, bounds)`` view of every cloaked region.

        ``bounds`` is an immutable ``(n, 4)`` array of ``(min_x, min_y,
        max_x, max_y)`` rows aligned with ``ids``; cached per store
        version like :meth:`PublicStore.snapshot_arrays`.
        """
        if self._snapshot is None:
            ids, bounds = self._rtree.snapshot_rects()
            bounds.flags.writeable = False
            self._snapshot = (tuple(ids), bounds)
        return self._snapshot

    def region_of(self, object_id: ItemId) -> Rect:
        try:
            return self._regions[object_id]
        except KeyError:
            raise RegistrationError(f"unknown private object: {object_id!r}") from None

    def overlapping(self, window: Rect) -> list[ItemId]:
        """Objects whose cloaked region intersects ``window``."""
        return self._rtree.range_query(window)

    @property
    def index_counters(self) -> IndexCounters:
        """Cumulative work counters of the backing R-tree (observability)."""
        return self._rtree.counters

    def items(self) -> Iterator[tuple[ItemId, Rect]]:
        return iter(self._regions.items())

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[ItemId]:
        return iter(self._regions)

    def __contains__(self, object_id: ItemId) -> bool:
        return object_id in self._regions


def _changes_since(
    changelog: deque, current_version: int, version: int
) -> list | None:
    """Tail of ``changelog`` covering ``current_version - version`` entries.

    Versions advance by exactly one per logged mutation, so the gap *is*
    the entry count.  Returns ``None`` for gaps the bounded log no longer
    covers (or nonsensical future versions), signalling a full re-capture.
    """
    delta = current_version - version
    if delta < 0:
        return None
    if delta == 0:
        return []
    if delta > len(changelog):
        return None
    return list(islice(changelog, len(changelog) - delta, None))
