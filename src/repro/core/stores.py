"""Data stores of the privacy-aware location-based database server.

Section 6.1 of the paper splits server-side data into:

* **public data** — exact locations that need no protection: stationary
  facilities (gas stations, hospitals) and moving public objects (police
  cars, on-site workers).  Held in :class:`PublicStore`.
* **private data** — mobile users represented *only* by their cloaked
  spatial regions; the server never sees their exact points.  Held in
  :class:`PrivateStore`.

Both stores are thin R-tree wrappers: they add identity bookkeeping and the
iteration hooks the query processors need.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.errors import RegistrationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import IndexCounters, ItemId
from repro.index.rtree import RTree


class PublicStore:
    """Exact point objects (the paper's "public data")."""

    def __init__(self, max_entries: int = 16) -> None:
        self._rtree = RTree(max_entries=max_entries)
        self._points: dict[ItemId, Point] = {}

    @classmethod
    def from_points(
        cls, points: dict[ItemId, Point], max_entries: int = 16
    ) -> "PublicStore":
        """Bulk-load a store from a full catalogue (STR-packed R-tree).

        The right constructor for static POI datasets: a packed tree is
        shallower and tighter than one grown by repeated inserts.
        """
        store = cls(max_entries=max_entries)
        store._points = dict(points)
        store._rtree = RTree.bulk_load(
            {object_id: Rect.from_point(p) for object_id, p in points.items()},
            max_entries=max_entries,
        )
        return store

    def add(self, object_id: ItemId, point: Point) -> None:
        """Register a public object at ``point``."""
        if object_id in self._points:
            raise RegistrationError(f"duplicate public object: {object_id!r}")
        self._points[object_id] = point
        self._rtree.insert(object_id, Rect.from_point(point))

    def move(self, object_id: ItemId, point: Point) -> None:
        """Update a moving public object (e.g. a police car)."""
        if object_id not in self._points:
            raise RegistrationError(f"unknown public object: {object_id!r}")
        self._rtree.update(object_id, Rect.from_point(point))
        self._points[object_id] = point

    def remove(self, object_id: ItemId) -> None:
        if object_id not in self._points:
            raise RegistrationError(f"unknown public object: {object_id!r}")
        self._rtree.delete(object_id)
        del self._points[object_id]

    def point_of(self, object_id: ItemId) -> Point:
        try:
            return self._points[object_id]
        except KeyError:
            raise RegistrationError(f"unknown public object: {object_id!r}") from None

    def range_query(self, window: Rect) -> list[ItemId]:
        """Objects whose exact point lies in ``window``."""
        return self._rtree.range_query(window)

    def nearest(self, point: Point, k: int = 1) -> list[ItemId]:
        return self._rtree.nearest(point, k)

    def nearest_iter(self, point: Point) -> Iterator[tuple[ItemId, float]]:
        """Incremental nearest-first iteration of ``(id, distance)``."""
        return self._rtree.nearest_iter(point)

    @property
    def index_counters(self) -> IndexCounters:
        """Cumulative work counters of the backing R-tree (observability)."""
        return self._rtree.counters

    def items(self) -> Iterator[tuple[ItemId, Point]]:
        return iter(self._points.items())

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ItemId]:
        return iter(self._points)

    def __contains__(self, object_id: ItemId) -> bool:
        return object_id in self._points


class PrivateStore:
    """Cloaked-region objects (the paper's "private data").

    The paper stresses that privacy is managed *before* storage: "we aim
    not to store the data at all.  Instead, we store perturbed version of
    the data."  Accordingly this store accepts only regions; there is no
    API through which an exact private location could even enter.
    """

    def __init__(self, max_entries: int = 16) -> None:
        self._rtree = RTree(max_entries=max_entries)
        self._regions: dict[ItemId, Rect] = {}

    def set_region(self, object_id: ItemId, region: Rect) -> None:
        """Insert or replace the cloaked region of ``object_id``."""
        if object_id in self._regions:
            self._rtree.update(object_id, region)
        else:
            self._rtree.insert(object_id, region)
        self._regions[object_id] = region

    def remove(self, object_id: ItemId) -> None:
        if object_id not in self._regions:
            raise RegistrationError(f"unknown private object: {object_id!r}")
        self._rtree.delete(object_id)
        del self._regions[object_id]

    def region_of(self, object_id: ItemId) -> Rect:
        try:
            return self._regions[object_id]
        except KeyError:
            raise RegistrationError(f"unknown private object: {object_id!r}") from None

    def overlapping(self, window: Rect) -> list[ItemId]:
        """Objects whose cloaked region intersects ``window``."""
        return self._rtree.range_query(window)

    @property
    def index_counters(self) -> IndexCounters:
        """Cumulative work counters of the backing R-tree (observability)."""
        return self._rtree.counters

    def items(self) -> Iterator[tuple[ItemId, Rect]]:
        return iter(self._regions.items())

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[ItemId]:
        return iter(self._regions)

    def __contains__(self, object_id: ItemId) -> bool:
        return object_id in self._regions
