"""User privacy profiles (Section 4, Figure 2 of the paper).

A profile fixes, per time-of-day interval, the three tunables the paper
defines:

* ``k`` — the anonymity level: the cloaked region must contain at least
  ``k`` users (the requesting user included), so the user is
  indistinguishable among ``k``.
* ``min_area`` (A_min) — lower bound on the cloaked region's area,
  protecting users in dense areas (a stadium crowd makes ``k`` cheap).
* ``max_area`` (A_max) — upper bound on the region's area, protecting
  quality of service in sparse areas.

Profiles are temporal (Figure 2): the same user can run ``k = 1`` during
work hours and ``k = 1000`` at night.  Times are seconds since midnight;
intervals wrap around midnight, exactly like the figure's "10:00 PM -"
row that extends to the next morning.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.core.errors import ProfileError

SECONDS_PER_DAY = 86_400.0


def hhmm(text: str) -> float:
    """Parse ``"HH:MM"`` (24-hour) into seconds since midnight."""
    try:
        hours_text, minutes_text = text.split(":")
        hours = int(hours_text)
        minutes = int(minutes_text)
    except ValueError as exc:
        raise ProfileError(f"malformed time of day: {text!r}") from exc
    if not (0 <= hours < 24 and 0 <= minutes < 60):
        raise ProfileError(f"time of day out of range: {text!r}")
    return hours * 3600.0 + minutes * 60.0


def time_of_day(timestamp: float) -> float:
    """Fold an absolute timestamp (seconds) onto ``[0, 86400)``."""
    return timestamp % SECONDS_PER_DAY


@dataclass(frozen=True, slots=True)
class PrivacyRequirement:
    """The (k, A_min, A_max) triple of Section 4.

    ``max_area = None`` means unbounded.  A requirement may be
    *contradictory* (``min_area > max_area``); the paper explicitly allows
    this and makes the anonymizer best-effort, so validation flags rather
    than forbids it — see :meth:`is_contradictory`.
    """

    k: int = 1
    min_area: float = 0.0
    max_area: float | None = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ProfileError(f"k must be >= 1, got {self.k}")
        if self.min_area < 0:
            raise ProfileError(f"min_area must be >= 0, got {self.min_area}")
        if self.max_area is not None and self.max_area <= 0:
            raise ProfileError(f"max_area must be > 0, got {self.max_area}")

    @property
    def is_contradictory(self) -> bool:
        """True when no area can satisfy both A_min and A_max."""
        return self.max_area is not None and self.min_area > self.max_area

    @property
    def wants_privacy(self) -> bool:
        """True when the user asked for any protection at all.

        The paper's "private data" is exactly the users with non-zero
        ``k`` or A_min (Section 6.1); ``k = 1`` with no area floor means
        the exact location may be published.
        """
        return self.k > 1 or self.min_area > 0

    def area_satisfied(self, area: float) -> bool:
        """Does ``area`` meet this requirement's area window?"""
        if area < self.min_area:
            return False
        return self.max_area is None or area <= self.max_area

    def restrictiveness(self) -> tuple[int, float, float]:
        """Sort key: larger means more restrictive.

        Larger ``k``, larger A_min, and smaller A_max are each more
        restrictive (Section 4).
        """
        inv_max = 0.0 if self.max_area is None else 1.0 / self.max_area
        return (self.k, self.min_area, inv_max)


#: The requirement of a user who shares everything (public data).
NO_PRIVACY = PrivacyRequirement(k=1, min_area=0.0, max_area=None)


@dataclass(frozen=True, slots=True)
class ProfileEntry:
    """One schedule row: the requirement in force from ``start`` onwards.

    ``start`` is seconds since midnight.  An entry stays in force until the
    next entry's start, wrapping past midnight (Figure 2's last row runs
    from 10 PM to 8 AM).
    """

    start: float
    requirement: PrivacyRequirement

    def __post_init__(self) -> None:
        if not 0 <= self.start < SECONDS_PER_DAY:
            raise ProfileError(
                f"entry start must be in [0, {SECONDS_PER_DAY}), got {self.start}"
            )


class PrivacyProfile:
    """A temporal schedule of privacy requirements.

    The schedule covers the full day cyclically: at any time the requirement
    in force is the one with the latest start not after the current
    time-of-day, wrapping to the last entry of the day for times before the
    first start.

    Args:
        entries: schedule rows; starts must be distinct.  An empty schedule
            yields :data:`NO_PRIVACY` at all times.
    """

    def __init__(self, entries: Iterable[ProfileEntry] = ()) -> None:
        ordered = sorted(entries, key=lambda e: e.start)
        starts = [e.start for e in ordered]
        if len(set(starts)) != len(starts):
            raise ProfileError("profile entries must have distinct start times")
        self._entries: tuple[ProfileEntry, ...] = tuple(ordered)
        self._starts: list[float] = starts

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def always(
        cls, k: int = 1, min_area: float = 0.0, max_area: float | None = None
    ) -> "PrivacyProfile":
        """A time-invariant profile."""
        return cls([ProfileEntry(0.0, PrivacyRequirement(k, min_area, max_area))])

    @classmethod
    def from_schedule(
        cls, rows: Sequence[tuple[str, PrivacyRequirement]]
    ) -> "PrivacyProfile":
        """Build from ``("HH:MM", requirement)`` rows."""
        return cls(ProfileEntry(hhmm(start), req) for start, req in rows)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    @property
    def entries(self) -> tuple[ProfileEntry, ...]:
        return self._entries

    def requirement_at(self, timestamp: float) -> PrivacyRequirement:
        """The requirement in force at the absolute ``timestamp`` (seconds)."""
        if not self._entries:
            return NO_PRIVACY
        tod = time_of_day(timestamp)
        idx = bisect.bisect_right(self._starts, tod) - 1
        if idx < 0:
            # Before the first start: the last entry wraps from yesterday.
            idx = len(self._entries) - 1
        return self._entries[idx].requirement

    def wants_privacy_at(self, timestamp: float) -> bool:
        """Does the user require any protection at ``timestamp``?"""
        return self.requirement_at(timestamp).wants_privacy

    def max_k(self) -> int:
        """The largest k anywhere in the schedule (capacity planning)."""
        if not self._entries:
            return 1
        return max(e.requirement.k for e in self._entries)

    # ------------------------------------------------------------------
    # Updates (Section 4: "users have the ability to change their privacy
    # profiles at any time")
    # ------------------------------------------------------------------

    def with_entry(self, entry: ProfileEntry) -> "PrivacyProfile":
        """A new profile with ``entry`` added or replacing a same-start row."""
        kept = [e for e in self._entries if e.start != entry.start]
        return PrivacyProfile(kept + [entry])

    def without_entry(self, start: float) -> "PrivacyProfile":
        """A new profile with the row starting at ``start`` removed."""
        if start not in self._starts:
            raise ProfileError(f"no profile entry starting at {start}")
        return PrivacyProfile(e for e in self._entries if e.start != start)

    def scaled_k(self, factor: float) -> "PrivacyProfile":
        """A new profile with every k scaled by ``factor`` (min 1).

        Convenience for trade-off sweeps (experiment E9).
        """
        if factor <= 0:
            raise ProfileError("scale factor must be positive")
        return PrivacyProfile(
            ProfileEntry(
                e.start,
                replace(e.requirement, k=max(1, round(e.requirement.k * factor))),
            )
            for e in self._entries
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PrivacyProfile):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:
        rows = ", ".join(
            f"{e.start / 3600:.2f}h->k={e.requirement.k}" for e in self._entries
        )
        return f"PrivacyProfile({rows})"


def profile_rows(profile: PrivacyProfile) -> list[list]:
    """Flatten a profile to JSON-ready ``[start, k, A_min, A_max]`` rows.

    The wire/checkpoint form used by the durable event log and
    :mod:`repro.persist` (``max_area = None`` serialises as ``null``).
    Inverse of :func:`profile_from_rows`.
    """
    return [
        [e.start, e.requirement.k, e.requirement.min_area, e.requirement.max_area]
        for e in profile.entries
    ]


def profile_from_rows(rows: Iterable[Sequence]) -> PrivacyProfile:
    """Rebuild a profile from :func:`profile_rows` output."""
    return PrivacyProfile(
        ProfileEntry(
            float(start),
            PrivacyRequirement(
                k=int(k),
                min_area=float(min_area),
                max_area=None if max_area is None else float(max_area),
            ),
        )
        for start, k, min_area, max_area in rows
    )


def example_profile() -> PrivacyProfile:
    """The exact profile of the paper's Figure 2.

    ======== ===== ========= =========
    Time     k     Min. area Max. area
    ======== ===== ========= =========
    8:00 AM  1     —         —
    5:00 PM  100   1 mile    3 miles
    10:00 PM 1000  5 miles   —
    ======== ===== ========= =========

    Areas are interpreted as square miles.
    """
    return PrivacyProfile.from_schedule(
        [
            ("08:00", PrivacyRequirement(k=1)),
            ("17:00", PrivacyRequirement(k=100, min_area=1.0, max_area=3.0)),
            ("22:00", PrivacyRequirement(k=1000, min_area=5.0)),
        ]
    )
