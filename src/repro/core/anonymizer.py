"""The Location Anonymizer — the trusted third party (Sections 3 and 5).

The anonymizer sits between mobile users and the location-based database
server.  It:

1. registers users with their privacy profiles;
2. receives exact location updates (the only component besides the user
   herself that ever sees them);
3. cloaks locations per the profile in force at the current time and
   pushes only the cloaked region — under a pseudonym — to the server;
4. proxies user queries so the server sees a region and a pseudonym, never
   an identity or a point.

Pseudonym policy: by default each user keeps one stable pseudonym, which
preserves continuous-query semantics but exposes the update *stream* to the
linkage attack of :mod:`repro.attacks.linkage`.  With
``rotate_pseudonyms=True`` every publish retires the previous pseudonym,
trading server-side continuity for unlinkability — the trade-off the
paper's "avoid location tracking" related-work category gestures at.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Hashable

from repro.cloaking.base import CloakResult, Cloaker
from repro.cloaking.incremental import IncrementalCloaker
from repro.core.errors import RegistrationError
from repro.core.profiles import PrivacyProfile, PrivacyRequirement, profile_rows
from repro.core.server import LocationServer
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import Telemetry, get_telemetry
from repro.obs.events import (
    CLOAK_ATTEMPT,
    CLOAK_BULK,
    CLOAK_DEGRADED,
    CLOAK_ESCALATED,
    CLOAK_RESULT,
    PROFILE_UPDATED,
    REGION_PUBLISHED,
    REGIONS_PUBLISHED_BULK,
    USER_ADMITTED,
    USER_MOVED,
    USER_RETIRED,
)
from repro.queries.private_nn import PrivateNNResult
from repro.queries.private_range import PrivateRangeResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.cloak import BulkCloakOutcome


@dataclass
class _Registration:
    profile: PrivacyProfile
    pseudonym: str
    published: bool = False


class LocationAnonymizer:
    """Trusted third party between mobile users and the database server.

    Args:
        cloaker: the cloaking algorithm (optionally an
            :class:`~repro.cloaking.incremental.IncrementalCloaker`).
        server: the downstream database server; may be attached later via
            :meth:`connect`.
        rotate_pseudonyms: retire the previous pseudonym on every publish.
        telemetry: observability sink for the admission/cloak/publish
            spans; the process-global telemetry is used when omitted.
    """

    def __init__(
        self,
        cloaker: Cloaker | IncrementalCloaker,
        server: LocationServer | None = None,
        rotate_pseudonyms: bool = False,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.cloaker = cloaker
        self.server = server
        self.rotate_pseudonyms = rotate_pseudonyms
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        self._registrations: dict[Hashable, _Registration] = {}
        # Plain integer (not itertools.count) so checkpointing can read
        # and recovery can restore the counter without consuming it.
        self._pseudonym_seq = 0
        #: Outcome of the most recent :meth:`publish_all_bulk` round, kept
        #: for observability (EXPLAIN reads its path/group summaries).
        self.last_bulk_outcome: "BulkCloakOutcome | None" = None

    def connect(self, server: LocationServer) -> None:
        """Attach the downstream server."""
        self.server = server

    # ------------------------------------------------------------------
    # Registration and location updates
    # ------------------------------------------------------------------

    def register(
        self, user_id: Hashable, profile: PrivacyProfile, location: Point
    ) -> str:
        """Subscribe a user; returns her (initial) pseudonym."""
        if user_id in self._registrations:
            raise RegistrationError(f"user already registered: {user_id!r}")
        with self.telemetry.span("anonymizer.admission"):
            self.cloaker.add_user(user_id, location)
            registration = _Registration(
                profile=profile, pseudonym=self._fresh_pseudonym()
            )
            self._registrations[user_id] = registration
        self.telemetry.set_gauge("anonymizer.registered_users", len(self._registrations))
        # x/y/profile make the event replayable: a recovery engine can
        # re-admit the user (same pseudonym, same requirement schedule)
        # from the record alone.  Exact coordinates stay anonymizer-side
        # knowledge — the WAL is trusted-tier state, never server state.
        self.telemetry.emit(
            USER_ADMITTED,
            user=str(user_id),
            pseudonym=registration.pseudonym,
            population=len(self._registrations),
            x=location.x,
            y=location.y,
            profile=profile_rows(profile),
        )
        return registration.pseudonym

    def unregister(self, user_id: Hashable) -> None:
        """Unsubscribe a user and retire her server-side region."""
        registration = self._registration_of(user_id)
        self.cloaker.remove_user(user_id)
        if self.server is not None and registration.published:
            self.server.forget_region(registration.pseudonym)
        del self._registrations[user_id]
        self.telemetry.set_gauge("anonymizer.registered_users", len(self._registrations))
        self.telemetry.emit(
            USER_RETIRED,
            user=str(user_id),
            pseudonym=registration.pseudonym,
            population=len(self._registrations),
        )

    def update_location(self, user_id: Hashable, location: Point) -> None:
        """Receive an exact location report (kept inside the anonymizer)."""
        self._registration_of(user_id)
        with self.telemetry.span("user.update"):
            self.cloaker.move_user(user_id, location)
        self.telemetry.emit(
            USER_MOVED, user=str(user_id), x=location.x, y=location.y
        )

    def update_profile(self, user_id: Hashable, profile: PrivacyProfile) -> None:
        """Users may change their privacy profiles at any time (Section 4)."""
        self._registration_of(user_id).profile = profile
        self.telemetry.emit(
            PROFILE_UPDATED, user=str(user_id), profile=profile_rows(profile)
        )

    def registered_users(self) -> list[Hashable]:
        return list(self._registrations)

    def pseudonym_of(self, user_id: Hashable) -> str:
        return self._registration_of(user_id).pseudonym

    # ------------------------------------------------------------------
    # Cloaking and publication
    # ------------------------------------------------------------------

    def requirement_for(self, user_id: Hashable, t: float) -> PrivacyRequirement:
        """The requirement in force for ``user_id`` at time ``t``."""
        return self._registration_of(user_id).profile.requirement_at(t)

    def cloak_user(self, user_id: Hashable, t: float) -> CloakResult:
        """Cloak one user under her current profile.

        Users whose requirement asks for no privacy get a degenerate
        (exact-point) region — they are effectively public data.

        Best effort (Section 5): a k exceeding the subscribed population
        is clamped to the population — the densest anonymity that exists —
        and the returned result still carries the *original* requirement,
        so ``k_satisfied`` correctly reads False.
        """
        with self.telemetry.span("anonymizer.cloak", algo=self.cloaker.name):
            requirement = self.requirement_for(user_id, t)
            self.telemetry.emit(
                CLOAK_ATTEMPT,
                user=str(user_id),
                t=t,
                algo=self.cloaker.name,
                k=requirement.k,
                min_area=requirement.min_area,
                max_area=requirement.max_area,
            )
            if not requirement.wants_privacy:
                point = self.cloaker.location_of(user_id)
                result = CloakResult(
                    region=Rect.from_point(point), user_count=1, requirement=requirement
                )
                self._emit_cloak_result(user_id, t, result)
                return result
            population = self.cloaker.user_count()
            if requirement.k > population:
                effective = replace(requirement, k=max(1, population))
                self.telemetry.emit(
                    CLOAK_ESCALATED,
                    user=str(user_id),
                    t=t,
                    requested_k=requirement.k,
                    effective_k=effective.k,
                    population=population,
                )
                result = self.cloaker.cloak(user_id, effective)
                result = CloakResult(
                    region=result.region,
                    user_count=result.user_count,
                    requirement=requirement,
                    reused=result.reused,
                )
            else:
                result = self.cloaker.cloak(user_id, requirement)
        self.telemetry.observe("cloak_area", result.area)
        self._emit_cloak_result(user_id, t, result)
        return result

    def _emit_cloak_result(self, user_id: Hashable, t: float, result: CloakResult) -> None:
        """Emit the per-query privacy audit record (plus any degradation)."""
        requirement = result.requirement
        degraded = not result.fully_satisfied
        seq = self.telemetry.emit(
            CLOAK_RESULT,
            user=str(user_id),
            t=t,
            algo=self.cloaker.name,
            k=requirement.k,
            k_achieved=result.user_count,
            min_area=requirement.min_area,
            max_area=requirement.max_area,
            area=result.area,
            k_satisfied=result.k_satisfied,
            area_satisfied=result.area_satisfied,
            reused=result.reused,
            degraded=degraded,
        )
        if degraded and seq is not None:
            self.telemetry.emit(
                CLOAK_DEGRADED,
                user=str(user_id),
                t=t,
                result_seq=seq,
                k=requirement.k,
                k_achieved=result.user_count,
                min_area=requirement.min_area,
                area=result.area,
            )

    def publish(self, user_id: Hashable, t: float) -> CloakResult:
        """Cloak and push one user's region to the server."""
        if self.server is None:
            raise RegistrationError("anonymizer is not connected to a server")
        result = self.cloak_user(user_id, t)
        self._push(user_id, result)
        return result

    def publish_all(self, t: float, shared: bool = True) -> dict[Hashable, CloakResult]:
        """Cloak and push every registered user (one reporting round).

        With ``shared=True`` (default) the round runs through the
        Section 5.3 shared-execution engine: users falling in the same
        space partition with the same requirement are cloaked once.  Users
        whose requirement asks for no privacy publish their exact point
        directly (nothing to share).  ``shared=False`` falls back to
        per-user execution (useful for apples-to-apples measurements).
        """
        if self.server is None:
            raise RegistrationError("anonymizer is not connected to a server")
        # One batch correlation id per publication round; reused when the
        # system front door already opened one (repro.obs.correlate).
        with self.telemetry.correlate("b", reuse=True):
            if not shared:
                return {
                    user_id: self.publish(user_id, t)
                    for user_id in self._registrations
                }
            from repro.cloaking.shared import CloakRequest, cloak_batch

            results: dict[Hashable, CloakResult] = {}
            requests: list[CloakRequest] = []
            population = self.cloaker.user_count()
            for user_id, registration in self._registrations.items():
                requirement = registration.profile.requirement_at(t)
                if not requirement.wants_privacy or requirement.k > population:
                    # Exact-point and clamped best-effort paths keep their
                    # specialised handling in cloak_user.
                    results[user_id] = self.cloak_user(user_id, t)
                    continue
                requests.append(CloakRequest(user_id, requirement))
            outcome = cloak_batch(
                self.cloaker, requests, emit=self.telemetry.emit
            )
            # Batched users bypass cloak_user, so their per-query audit
            # records are emitted here (the others already emitted theirs).
            for user_id, result in outcome.results.items():
                self._emit_cloak_result(user_id, t, result)
            results.update(outcome.results)
            for user_id, result in results.items():
                self._push(user_id, result)
            return results

    def publish_all_bulk(self, t: float) -> dict[Hashable, CloakResult]:
        """Cloak and push every registered user in one vectorized pass.

        The write-path counterpart of the server's batch engine: the whole
        population is cloaked by the numpy kernels of
        :mod:`repro.engine.cloak` (scalar fallback for algorithms without
        one) and published to the server as a single bulk region batch.
        Escalation and degradation semantics match :meth:`cloak_user`
        exactly — the per-user path remains the differential-testing
        oracle — but auditing is aggregated: one ``cloak.bulk`` event per
        distinct requirement replaces the per-user event stream, with
        every degradation declared in-band, and one
        ``regions.published_bulk`` event covers the push.
        """
        if self.server is None:
            raise RegistrationError("anonymizer is not connected to a server")
        from repro.engine.cloak import bulk_cloak

        # One batch correlation id per bulk round; reused when the system
        # front door already opened one (repro.obs.correlate).
        with self.telemetry.correlate("b", reuse=True):
            with self.telemetry.span(
                "anonymizer.publish_bulk", algo=self.cloaker.name
            ):
                requests = [
                    (user_id, registration.profile.requirement_at(t))
                    for user_id, registration in self._registrations.items()
                ]
                outcome = bulk_cloak(self.cloaker, requests)
                self.last_bulk_outcome = outcome
                for group in outcome.groups:
                    self.telemetry.emit(
                        CLOAK_BULK,
                        t=t,
                        algo=outcome.algo,
                        path=outcome.path,
                        **group,
                    )
                regions: dict[str, Rect] = {}
                rows: list[list] = []
                area_sum = 0.0
                rotated = 0
                rotate = self.rotate_pseudonyms
                for user_id, result in outcome.results.items():
                    registration = self._registrations[user_id]
                    if rotate and registration.published:
                        self.server.forget_region(registration.pseudonym)
                        registration.pseudonym = self._fresh_pseudonym()
                        rotated += 1
                    region = result.region
                    regions[registration.pseudonym] = region
                    registration.published = True
                    area_sum += region.area
                    rows.append(
                        [
                            str(user_id),
                            registration.pseudonym,
                            region.min_x,
                            region.min_y,
                            region.max_x,
                            region.max_y,
                        ]
                    )
                self.server.receive_regions(regions)
            self.telemetry.count(
                "anonymizer.bulk_cloaks", amount=len(requests)
            )
            # ``regions`` rows (user, pseudonym, region sides) make the
            # bulk push replayable from the WAL with rotation included:
            # a row whose pseudonym differs from the replayer's current
            # registration implies the old pseudonym was retired.
            self.telemetry.emit(
                REGIONS_PUBLISHED_BULK,
                n=len(regions),
                rotated=rotated,
                area_sum=area_sum,
                path=outcome.path,
                algo=outcome.algo,
                escalated=outcome.escalated,
                degraded=outcome.degraded,
                regions=rows,
            )
        return outcome.results

    def _push(self, user_id: Hashable, result: CloakResult) -> None:
        """Send one cloaked region to the server under the pseudonym policy."""
        registration = self._registration_of(user_id)
        with self.telemetry.span("anonymizer.publish"):
            rotated = self.rotate_pseudonyms and registration.published
            old_pseudonym = registration.pseudonym
            if rotated:
                self.server.forget_region(registration.pseudonym)
                registration.pseudonym = self._fresh_pseudonym()
            region = result.region
            self.server.receive_region(registration.pseudonym, region)
            registration.published = True
        # user + region sides make the publication replayable (WAL); the
        # old pseudonym lets replay retire the rotated-away region.
        self.telemetry.emit(
            REGION_PUBLISHED,
            pseudonym=registration.pseudonym,
            area=result.area,
            rotated=rotated,
            user=str(user_id),
            min_x=region.min_x,
            min_y=region.min_y,
            max_x=region.max_x,
            max_y=region.max_y,
            **({"old_pseudonym": old_pseudonym} if rotated else {}),
        )

    # ------------------------------------------------------------------
    # Trade-off previews (Section 1: "users would have the ability to
    # tune a set of parameters to achieve a personal trade-off")
    # ------------------------------------------------------------------

    def preview(
        self, user_id: Hashable, ks: "list[int]", min_area: float = 0.0
    ) -> list[tuple[int, float, int]]:
        """What-if cloaks at several anonymity levels, without publishing.

        Returns ``(k, region_area, users_inside)`` per requested ``k`` so a
        client UI can show the user what each privacy level would cost her
        in region size right now, right here.  Nothing reaches the server.
        """
        self._registration_of(user_id)
        rows = []
        for k in ks:
            result = self.cloaker.cloak(
                user_id, PrivacyRequirement(k=k, min_area=min_area)
            )
            rows.append((k, result.area, result.user_count))
        return rows

    def suggest_k_for_area(
        self, user_id: Hashable, max_area: float, k_ceiling: int | None = None
    ) -> int:
        """The largest k whose cloaked region stays within ``max_area``.

        Binary-searches over k, which is sound when cloaked area is
        non-decreasing in k.  That holds for every algorithm here except
        the Hilbert cloaker, whose bucket re-partitioning can shrink the
        region as k grows; for Hilbert the result is a useful heuristic
        rather than the exact maximum.  Returns at least 1 (an exact
        point always "fits").
        """
        self._registration_of(user_id)
        if max_area < 0:
            raise RegistrationError("max_area must be non-negative")
        population = self.cloaker.user_count()
        hi = min(k_ceiling, population) if k_ceiling is not None else population
        lo = 1
        if hi < 1:
            return 1

        def area_at(k: int) -> float:
            return self.cloaker.cloak(user_id, PrivacyRequirement(k=k)).area

        if area_at(hi) <= max_area:
            return hi
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if area_at(mid) <= max_area:
                lo = mid
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Query proxying (identity and location hiding)
    # ------------------------------------------------------------------

    def private_range_query(
        self, user_id: Hashable, radius: float, t: float, method: str = "exact"
    ) -> tuple[CloakResult, PrivateRangeResult]:
        """Proxy a range query: the server sees only the cloaked region."""
        if self.server is None:
            raise RegistrationError("anonymizer is not connected to a server")
        cloak = self.cloak_user(user_id, t)
        return cloak, self.server.private_range(cloak.region, radius, method)

    def private_nn_query(
        self, user_id: Hashable, t: float, method: str = "filter"
    ) -> tuple[CloakResult, PrivateNNResult]:
        """Proxy a nearest-neighbour query through the cloaked region."""
        if self.server is None:
            raise RegistrationError("anonymizer is not connected to a server")
        cloak = self.cloak_user(user_id, t)
        return cloak, self.server.private_nn(cloak.region, method)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _registration_of(self, user_id: Hashable) -> _Registration:
        try:
            return self._registrations[user_id]
        except KeyError:
            raise RegistrationError(f"unknown user: {user_id!r}") from None

    def _fresh_pseudonym(self) -> str:
        self._pseudonym_seq += 1
        return f"anon-{self._pseudonym_seq:06d}"
