"""Persistence: save and restore server-side state.

A database server must survive restarts.  The formats are deliberately
plain tab-separated text — greppable, diffable, and stable — mirroring the
trace format of :mod:`repro.mobility.trace`:

* public store:  ``object_id  x  y``
* private store: ``pseudonym  min_x  min_y  max_x  max_y``
* profiles:      ``user_id  start_seconds  k  min_area  max_area`` (one
  line per schedule row; ``-`` for an unbounded max).

Ids are serialised with ``str`` and restored as strings (documented
canonicalisation, same as traces).
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping

from repro.core.profiles import PrivacyProfile, PrivacyRequirement, ProfileEntry
from repro.core.stores import PrivateStore, PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect


def save_public_store(store: PublicStore, path: str | Path) -> int:
    """Write every public object; returns the row count."""
    rows = 0
    with open(path, "w", encoding="utf-8") as handle:
        for object_id, point in sorted(store.items(), key=lambda kv: str(kv[0])):
            handle.write(f"{object_id}\t{point.x!r}\t{point.y!r}\n")
            rows += 1
    return rows


def load_public_store(path: str | Path) -> PublicStore:
    """Read a store written by :func:`save_public_store`."""
    store = PublicStore()
    for line_no, parts in _read_rows(path, expected_fields=3):
        object_id, x_text, y_text = parts
        store.add(object_id, Point(float(x_text), float(y_text)))
    return store


def save_private_store(store: PrivateStore, path: str | Path) -> int:
    """Write every cloaked region; returns the row count."""
    rows = 0
    with open(path, "w", encoding="utf-8") as handle:
        for object_id, region in sorted(store.items(), key=lambda kv: str(kv[0])):
            handle.write(
                f"{object_id}\t{region.min_x!r}\t{region.min_y!r}\t"
                f"{region.max_x!r}\t{region.max_y!r}\n"
            )
            rows += 1
    return rows


def load_private_store(path: str | Path) -> PrivateStore:
    """Read a store written by :func:`save_private_store`."""
    store = PrivateStore()
    for line_no, parts in _read_rows(path, expected_fields=5):
        object_id, *coords = parts
        store.set_region(object_id, Rect(*(float(c) for c in coords)))
    return store


def save_profiles(profiles: Mapping[object, PrivacyProfile], path: str | Path) -> int:
    """Write one line per (user, schedule row); returns the row count.

    Users with empty profiles are written as a single row with k = 1 at
    start 0 so they round-trip (an empty profile means "no privacy").
    """
    rows = 0
    with open(path, "w", encoding="utf-8") as handle:
        for user_id in sorted(profiles, key=str):
            entries = profiles[user_id].entries or (
                ProfileEntry(0.0, PrivacyRequirement()),
            )
            for entry in entries:
                requirement = entry.requirement
                max_text = "-" if requirement.max_area is None else repr(requirement.max_area)
                handle.write(
                    f"{user_id}\t{entry.start!r}\t{requirement.k}\t"
                    f"{requirement.min_area!r}\t{max_text}\n"
                )
                rows += 1
    return rows


def load_profiles(path: str | Path) -> dict[str, PrivacyProfile]:
    """Read profiles written by :func:`save_profiles`."""
    schedule: dict[str, list[ProfileEntry]] = {}
    for line_no, parts in _read_rows(path, expected_fields=5):
        user_id, start_text, k_text, min_text, max_text = parts
        requirement = PrivacyRequirement(
            k=int(k_text),
            min_area=float(min_text),
            max_area=None if max_text == "-" else float(max_text),
        )
        schedule.setdefault(user_id, []).append(
            ProfileEntry(float(start_text), requirement)
        )
    return {user_id: PrivacyProfile(entries) for user_id, entries in schedule.items()}


def _read_rows(path: str | Path, expected_fields: int):
    """Yield ``(line_no, fields)`` for each non-empty line, validating arity."""
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != expected_fields:
                raise ValueError(
                    f"{path}:{line_no}: expected {expected_fields} fields, "
                    f"got {len(parts)}"
                )
            yield line_no, parts
