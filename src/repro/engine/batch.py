"""The vectorized batch query executor.

:class:`BatchEngine` answers a heterogeneous list of queries in one
pass: it freezes the server's object tables into a
:class:`~repro.engine.snapshot.ServerSnapshot` (reused across batches
while the stores are quiescent), groups the batch by query kind, and
runs each group through a vectorised kernel where one exists —
rectangle containment, radius membership, k-NN distance ranking,
probabilistic count.  Kinds that resist vectorisation (private NN with
its dominance/Voronoi filters) are routed through the existing
per-query processors unchanged, so their batched answers are
bit-identical to the scalar path by construction.

Canonical result order: id lists follow snapshot row order (ranges,
counts) or nearest-first with snapshot-rank tie-breaks (k-NN), in both
the vectorised and the sequential (``vectorize=False``) modes — the
two modes are interchangeable and differential-testable.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.engine import kernels
from repro.engine.queries import (
    BatchQuery,
    PrivateNNQuery,
    PrivateRangeQuery,
    PublicCountQuery,
    PublicNNQuery,
    PublicRangeQuery,
)
from repro.engine.snapshot import ServerSnapshot
from repro.obs import Telemetry
from repro.obs.events import (
    BATCH_EXECUTED,
    SNAPSHOT_CAPTURED,
    SNAPSHOT_DELTA,
    SNAPSHOT_REUSED,
)
from repro.queries.private_nn import PrivateNNResult, private_nn_query
from repro.queries.private_range import PrivateRangeResult, private_range_query
from repro.queries.probabilistic import CountAnswer
from repro.queries.public_range import (
    membership_probabilities,
    membership_probability,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import LocationServer

#: Result of one batch query, by kind: ``private_range`` ->
#: :class:`PrivateRangeResult`, ``private_nn`` -> :class:`PrivateNNResult`,
#: ``public_range`` / ``public_nn`` -> tuple of ids, ``public_count`` ->
#: :class:`CountAnswer`.
BatchResult = object


class BatchEngine:
    """Executes query batches against a frozen snapshot of one server.

    Args:
        server: the :class:`~repro.core.server.LocationServer` to answer
            from.  The engine reads the server's stores; it never mutates
            them.
        telemetry: observability sink; the server's own when omitted.
    """

    def __init__(
        self, server: "LocationServer", telemetry: Telemetry | None = None
    ) -> None:
        self.server = server
        self.telemetry = telemetry if telemetry is not None else server.telemetry
        self._cached: ServerSnapshot | None = None

    # ------------------------------------------------------------------
    # Snapshot lifecycle
    # ------------------------------------------------------------------

    def snapshot(self) -> ServerSnapshot:
        """The current frozen view, recaptured only after store mutations."""
        cached = self._cached
        if cached is not None and cached.matches(self.server):
            self.telemetry.count("engine.snapshot", result="reused")
            self.telemetry.emit(
                SNAPSHOT_REUSED,
                n_public=cached.n_public,
                n_private=cached.n_private,
            )
            return cached
        if cached is not None:
            with self.telemetry.span("engine.snapshot_delta"):
                absorbed = cached.absorb(self.server)
            if absorbed is not None:
                self._cached = absorbed
                self.telemetry.count("engine.snapshot", result="delta")
                self.telemetry.emit(
                    SNAPSHOT_DELTA,
                    n_public=absorbed.n_public,
                    n_private=absorbed.n_private,
                    public_gap=absorbed.public_version - cached.public_version,
                    private_gap=(
                        absorbed.private_version - cached.private_version
                    ),
                )
                return absorbed
        with self.telemetry.span("engine.snapshot"):
            self._cached = ServerSnapshot.capture(self.server)
        self.telemetry.count("engine.snapshot", result="captured")
        self.telemetry.emit(
            SNAPSHOT_CAPTURED,
            n_public=self._cached.n_public,
            n_private=self._cached.n_private,
        )
        return self._cached

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        queries: Iterable[BatchQuery],
        *,
        vectorize: bool = True,
        routes: Sequence[bool] | None = None,
    ) -> list[BatchResult]:
        """Answer every query, results aligned with the input order.

        Args:
            queries: any mix of the five batch query kinds.
            vectorize: ``False`` forces the per-query scalar path for
                every kind (the differential-testing reference); results
                are normalised identically in both modes.
            routes: optional per-query route vector from the cost-based
                planner, aligned with ``queries`` (``True`` = vectorized
                kernel, ``False`` = scalar processor).  Overrides
                ``vectorize`` per position; kinds without a kernel
                (``private_nn``) stay scalar regardless.
        """
        batch = list(queries)
        if routes is not None and len(routes) != len(batch):
            raise ValueError(
                f"routes length {len(routes)} != batch size {len(batch)}"
            )
        # Same batch scope as any enclosing system/server entry point —
        # a direct engine call mints its own batch id (repro.obs.correlate).
        with self.telemetry.correlate("b", reuse=True):
            with self.telemetry.span(
                "engine.batch", size=len(batch), vectorize=vectorize
            ):
                snapshot = self.snapshot()
                self.telemetry.observe("engine.batch_size", len(batch))
                results: list[BatchResult] = [None] * len(batch)
                groups: dict[tuple[str, bool], list[int]] = {}
                for position, query in enumerate(batch):
                    wanted = (
                        vectorize if routes is None else bool(routes[position])
                    )
                    vectorized = wanted and query.kind != "private_nn"
                    groups.setdefault((query.kind, vectorized), []).append(
                        position
                    )
                kinds: dict[str, int] = {}
                for (kind, vectorized), positions in groups.items():
                    kinds[kind] = kinds.get(kind, 0) + len(positions)
                    self.telemetry.count(
                        "engine.queries",
                        amount=len(positions),
                        kind=kind,
                        path="vectorized" if vectorized else "scalar",
                    )
                    handler = getattr(
                        self, f"_{kind}_{'vec' if vectorized else 'seq'}"
                    )
                    with self.telemetry.span(
                        f"engine.{kind}", n=len(positions)
                    ):
                        answers = handler(
                            snapshot, [batch[p] for p in positions]
                        )
                    for position, answer in zip(positions, answers):
                        results[position] = answer
            self.telemetry.emit(
                BATCH_EXECUTED,
                size=len(batch),
                vectorize=vectorize,
                kinds=dict(sorted(kinds.items())),
            )
        return results

    # ------------------------------------------------------------------
    # Public range over public data
    # ------------------------------------------------------------------

    def _public_range_vec(
        self, snapshot: ServerSnapshot, queries: Sequence[PublicRangeQuery]
    ) -> list[tuple]:
        windows = kernels.windows_array([q.window for q in queries])
        rows_per_query = kernels.points_in_windows_grid(
            snapshot.public_grid, windows
        )
        ids = snapshot.public_ids
        return [tuple(ids[row] for row in rows) for rows in rows_per_query]

    def _public_range_seq(
        self, snapshot: ServerSnapshot, queries: Sequence[PublicRangeQuery]
    ) -> list[tuple]:
        rank = snapshot.public_rank
        fallback = snapshot.n_public
        return [
            tuple(
                sorted(
                    self.server.public.range_query(q.window),
                    key=lambda item: rank.get(item, fallback),
                )
            )
            for q in queries
        ]

    # ------------------------------------------------------------------
    # Public k-NN over public data
    # ------------------------------------------------------------------

    def _public_nn_vec(
        self, snapshot: ServerSnapshot, queries: Sequence[PublicNNQuery]
    ) -> list[tuple]:
        qx = np.array([q.point.x for q in queries])
        qy = np.array([q.point.y for q in queries])
        rows_per_query = kernels.knn_points_grid(
            snapshot.public_grid, qx, qy, [q.k for q in queries]
        )
        ids = snapshot.public_ids
        return [tuple(ids[row] for row in rows) for rows in rows_per_query]

    def _public_nn_seq(
        self, snapshot: ServerSnapshot, queries: Sequence[PublicNNQuery]
    ) -> list[tuple]:
        return [
            tuple(self.server.public.nearest(q.point, q.k)) for q in queries
        ]

    # ------------------------------------------------------------------
    # Public probabilistic count over private data
    # ------------------------------------------------------------------

    def _public_count_vec(
        self, snapshot: ServerSnapshot, queries: Sequence[PublicCountQuery]
    ) -> list[CountAnswer]:
        windows = kernels.windows_array([q.window for q in queries])
        rows_per_query = kernels.rects_intersecting_window(
            snapshot.private_bounds, windows
        )
        answers = []
        ids = snapshot.private_ids
        for query, rows in zip(queries, rows_per_query):
            probs = membership_probabilities(
                snapshot.private_bounds[rows], query.window
            )
            answers.append(
                CountAnswer(
                    {ids[row]: float(p) for row, p in zip(rows, probs)}
                )
            )
        return answers

    def _public_count_seq(
        self, snapshot: ServerSnapshot, queries: Sequence[PublicCountQuery]
    ) -> list[CountAnswer]:
        rank = snapshot.private_rank
        fallback = snapshot.n_private
        answers = []
        for q in queries:
            overlapping = sorted(
                self.server.private.overlapping(q.window),
                key=lambda item: rank.get(item, fallback),
            )
            answers.append(
                CountAnswer(
                    {
                        item: membership_probability(
                            self.server.private.region_of(item), q.window
                        )
                        for item in overlapping
                    }
                )
            )
        return answers

    # ------------------------------------------------------------------
    # Private range over public data
    # ------------------------------------------------------------------

    def _private_range_vec(
        self, snapshot: ServerSnapshot, queries: Sequence[PrivateRangeQuery]
    ) -> list[PrivateRangeResult]:
        regions = kernels.windows_array([q.region for q in queries])
        radii = np.array([q.radius for q in queries])
        rows_per_query: list = [None] * len(queries)
        # The exact method applies the rounded-rectangle distance test;
        # the mbr method keeps everything inside the expanded window.
        exact = [i for i, q in enumerate(queries) if q.method == "exact"]
        mbr = [i for i, q in enumerate(queries) if q.method != "exact"]
        if exact:
            for i, rows in zip(
                exact,
                kernels.points_within_radius(
                    snapshot.public_xs,
                    snapshot.public_ys,
                    regions[exact],
                    radii[exact],
                ),
            ):
                rows_per_query[i] = rows
        if mbr:
            expanded = regions[mbr].copy()
            expanded[:, 0] -= radii[mbr]
            expanded[:, 1] -= radii[mbr]
            expanded[:, 2] += radii[mbr]
            expanded[:, 3] += radii[mbr]
            for i, rows in zip(
                mbr,
                kernels.points_in_windows(
                    snapshot.public_xs, snapshot.public_ys, expanded
                ),
            ):
                rows_per_query[i] = rows
        ids = snapshot.public_ids
        return [
            PrivateRangeResult(
                region=q.region,
                radius=q.radius,
                candidates=tuple(ids[row] for row in rows_per_query[i]),
                method=q.method,
            )
            for i, q in enumerate(queries)
        ]

    def _private_range_seq(
        self, snapshot: ServerSnapshot, queries: Sequence[PrivateRangeQuery]
    ) -> list[PrivateRangeResult]:
        return [
            self._canonical_candidates(
                snapshot,
                private_range_query(
                    self.server.public, q.region, q.radius, q.method
                ),
            )
            for q in queries
        ]

    # ------------------------------------------------------------------
    # Private NN over public data (non-vectorizable: scalar both modes)
    # ------------------------------------------------------------------

    def _private_nn_seq(
        self, snapshot: ServerSnapshot, queries: Sequence[PrivateNNQuery]
    ) -> list[PrivateNNResult]:
        return [
            self._canonical_candidates(
                snapshot,
                private_nn_query(self.server.public, q.region, q.method),
            )
            for q in queries
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _canonical_candidates(self, snapshot: ServerSnapshot, result):
        """Re-order a scalar result's candidate tuple into snapshot order."""
        rank = snapshot.public_rank
        fallback = snapshot.n_public
        return dataclasses.replace(
            result,
            candidates=tuple(
                sorted(
                    result.candidates, key=lambda item: rank.get(item, fallback)
                )
            ),
        )
