"""Batch query descriptions.

One frozen dataclass per query kind the server answers, so a
heterogeneous workload is just a list of these values.  Each class
carries a ``kind`` tag the :class:`~repro.engine.batch.BatchEngine` uses
to group queries for vectorised execution; parameter validation mirrors
the scalar entry points (bad queries fail at construction, before the
batch runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Union

from repro.core.errors import QueryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.private_nn import NNCandidateMethod
from repro.queries.private_range import CandidateMethod


@dataclass(frozen=True)
class PrivateRangeQuery:
    """"Public objects within ``radius`` of me", asked from a cloaked region."""

    region: Rect
    radius: float
    method: CandidateMethod = "exact"
    kind: ClassVar[str] = "private_range"

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise QueryError(f"radius must be non-negative, got {self.radius}")
        if self.method not in ("exact", "mbr"):
            raise QueryError(f"unknown candidate method: {self.method!r}")


@dataclass(frozen=True)
class PrivateNNQuery:
    """"My nearest public object", asked from a cloaked region."""

    region: Rect
    method: NNCandidateMethod = "filter"
    kind: ClassVar[str] = "private_nn"

    def __post_init__(self) -> None:
        if self.method not in ("range", "filter", "exact"):
            raise QueryError(f"unknown candidate method: {self.method!r}")


@dataclass(frozen=True)
class PublicRangeQuery:
    """Classic exact range query over the public objects."""

    window: Rect
    kind: ClassVar[str] = "public_range"


@dataclass(frozen=True)
class PublicNNQuery:
    """Classic exact k-NN query over the public objects."""

    point: Point
    k: int = 1
    kind: ClassVar[str] = "public_nn"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise QueryError("k must be positive")


@dataclass(frozen=True)
class PublicCountQuery:
    """Probabilistic count of private (cloaked) users inside ``window``."""

    window: Rect
    kind: ClassVar[str] = "public_count"


BatchQuery = Union[
    PrivateRangeQuery,
    PrivateNNQuery,
    PublicRangeQuery,
    PublicNNQuery,
    PublicCountQuery,
]
