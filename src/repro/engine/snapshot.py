"""Frozen server state for batch execution.

A :class:`ServerSnapshot` is the point-in-time copy of both server
stores that a whole batch executes against: every query in the batch
sees the same objects regardless of how long the batch takes or how the
kernels chunk the work.  Capture is one O(n) bulk export per store
(:meth:`~repro.index.base.SpatialIndex.snapshot_rects`) and the stores
cache it per mutation counter, so back-to-back batches over a quiescent
server share the same arrays (see ``docs/batch_engine.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.engine import kernels
from repro.index.base import ItemId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import LocationServer


@dataclass(frozen=True)
class ServerSnapshot:
    """Immutable numpy view of the server's object tables.

    Attributes:
        public_version / private_version: store mutation counters at
            capture time (the cache key for snapshot reuse).
        public_ids: public object ids, aligned with ``public_xs``/``public_ys``.
        public_xs / public_ys: exact public coordinates (read-only).
        private_ids: pseudonyms, aligned with ``private_bounds`` rows.
        private_bounds: ``(m, 4)`` cloaked-region sides ``(min_x, min_y,
            max_x, max_y)`` (read-only).
        public_rank / private_rank: id -> row, the canonical result order
            of the batch engine.
    """

    public_version: int
    private_version: int
    public_ids: tuple[ItemId, ...]
    public_xs: np.ndarray
    public_ys: np.ndarray
    private_ids: tuple[ItemId, ...]
    private_bounds: np.ndarray
    public_rank: Mapping[ItemId, int]
    private_rank: Mapping[ItemId, int]

    @classmethod
    def capture(cls, server: "LocationServer") -> "ServerSnapshot":
        """Freeze ``server``'s current public and private tables."""
        public_ids, xs, ys = server.public.snapshot_arrays()
        private_ids, bounds = server.private.snapshot_arrays()
        return cls(
            public_version=server.public.version,
            private_version=server.private.version,
            public_ids=public_ids,
            public_xs=xs,
            public_ys=ys,
            private_ids=private_ids,
            private_bounds=bounds,
            public_rank={item: row for row, item in enumerate(public_ids)},
            private_rank={item: row for row, item in enumerate(private_ids)},
        )

    def matches(self, server: "LocationServer") -> bool:
        """True when ``server``'s stores have not mutated since capture."""
        return (
            self.public_version == server.public.version
            and self.private_version == server.private.version
        )

    @cached_property
    def public_grid(self) -> kernels.PointGrid:
        """Uniform grid over the public points, built lazily per snapshot.

        Cached on the snapshot (``cached_property`` writes straight into
        ``__dict__``, which a frozen dataclass permits), so every batch
        answered from the same snapshot shares one grid.
        """
        return kernels.PointGrid(self.public_xs, self.public_ys)

    @property
    def n_public(self) -> int:
        return len(self.public_ids)

    @property
    def n_private(self) -> int:
        return len(self.private_ids)
