"""Frozen server state for batch execution.

A :class:`ServerSnapshot` is the point-in-time copy of both server
stores that a whole batch executes against: every query in the batch
sees the same objects regardless of how long the batch takes or how the
kernels chunk the work.  Capture is one O(n) bulk export per store
(:meth:`~repro.index.base.SpatialIndex.snapshot_rects`) and the stores
cache it per mutation counter, so back-to-back batches over a quiescent
server share the same arrays (see ``docs/batch_engine.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.engine import kernels
from repro.index.base import ItemId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import LocationServer


@dataclass(frozen=True)
class ServerSnapshot:
    """Immutable numpy view of the server's object tables.

    Attributes:
        public_version / private_version: store mutation counters at
            capture time (the cache key for snapshot reuse).
        public_ids: public object ids, aligned with ``public_xs``/``public_ys``.
        public_xs / public_ys: exact public coordinates (read-only).
        private_ids: pseudonyms, aligned with ``private_bounds`` rows.
        private_bounds: ``(m, 4)`` cloaked-region sides ``(min_x, min_y,
            max_x, max_y)`` (read-only).
        public_rank / private_rank: id -> row, the canonical result order
            of the batch engine.
    """

    public_version: int
    private_version: int
    public_ids: tuple[ItemId, ...]
    public_xs: np.ndarray
    public_ys: np.ndarray
    private_ids: tuple[ItemId, ...]
    private_bounds: np.ndarray
    public_rank: Mapping[ItemId, int]
    private_rank: Mapping[ItemId, int]

    @classmethod
    def capture(cls, server: "LocationServer") -> "ServerSnapshot":
        """Freeze ``server``'s current public and private tables."""
        public_ids, xs, ys = server.public.snapshot_arrays()
        private_ids, bounds = server.private.snapshot_arrays()
        return cls(
            public_version=server.public.version,
            private_version=server.private.version,
            public_ids=public_ids,
            public_xs=xs,
            public_ys=ys,
            private_ids=private_ids,
            private_bounds=bounds,
            public_rank={item: row for row, item in enumerate(public_ids)},
            private_rank={item: row for row, item in enumerate(private_ids)},
        )

    def matches(self, server: "LocationServer") -> bool:
        """True when ``server``'s stores have not mutated since capture."""
        return (
            self.public_version == server.public.version
            and self.private_version == server.private.version
        )

    def absorb(self, server: "LocationServer") -> "ServerSnapshot | None":
        """A fresh snapshot built by replaying store deltas onto this one.

        Cost is proportional to the number of mutations since capture,
        not to the store sizes: location-update batches touching a few
        rows of a large table copy-and-patch the coordinate arrays in
        place of a full re-freeze, and membership changes rebuild only
        the affected table.  Sides without any change share this
        snapshot's arrays (and the public side its lazily built
        :attr:`public_grid`) outright.

        Returns ``None`` when either store's bounded changelog no longer
        covers the gap — the caller falls back to :meth:`capture`.
        """
        public_changes = server.public.changes_since(self.public_version)
        private_changes = server.private.changes_since(self.private_version)
        if public_changes is None or private_changes is None:
            return None
        public = _replay(
            self.public_ids,
            (self.public_xs, self.public_ys),
            self.public_rank,
            [
                (oid, None if p is None else (p.x, p.y))
                for oid, p in public_changes
            ],
        )
        private = _replay(
            self.private_ids,
            (self.private_bounds,),
            self.private_rank,
            [
                (oid, None if r is None else (r.min_x, r.min_y, r.max_x, r.max_y))
                for oid, r in private_changes
            ],
        )
        pub_ids, (pub_xs, pub_ys), pub_rank = public
        priv_ids, (priv_bounds,), priv_rank = private
        absorbed = ServerSnapshot(
            public_version=server.public.version,
            private_version=server.private.version,
            public_ids=pub_ids,
            public_xs=pub_xs,
            public_ys=pub_ys,
            private_ids=priv_ids,
            private_bounds=priv_bounds,
            public_rank=pub_rank,
            private_rank=priv_rank,
        )
        if not public_changes and "public_grid" in self.__dict__:
            absorbed.__dict__["public_grid"] = self.public_grid
        return absorbed

    @cached_property
    def public_grid(self) -> kernels.PointGrid:
        """Uniform grid over the public points, built lazily per snapshot.

        Cached on the snapshot (``cached_property`` writes straight into
        ``__dict__``, which a frozen dataclass permits), so every batch
        answered from the same snapshot shares one grid.
        """
        return kernels.PointGrid(self.public_xs, self.public_ys)

    @property
    def n_public(self) -> int:
        return len(self.public_ids)

    @property
    def n_private(self) -> int:
        return len(self.private_ids)


def _replay(
    ids: tuple[ItemId, ...],
    columns: tuple[np.ndarray, ...],
    rank: Mapping[ItemId, int],
    changes: list,
) -> tuple[tuple[ItemId, ...], tuple[np.ndarray, ...], Mapping[ItemId, int]]:
    """Apply a store changelog tail to one side's frozen table.

    ``changes`` is oldest-first ``(id, values | None)`` where ``values``
    is one scalar per 1-D column (or one row for a 2-D column) and
    ``None`` means removal; only the final state per id matters, so the
    list is collapsed last-wins first.  Pure updates patch copies of the
    arrays and keep ``ids``/``rank`` shared; membership changes rebuild
    the table with survivors in their original row order and additions
    appended in changelog order (matching how the store's own snapshot
    export orders fresh inserts).
    """
    if not changes:
        return ids, columns, rank
    final: dict[ItemId, tuple | None] = {}
    order: list[ItemId] = []
    for object_id, values in changes:
        if object_id not in final:
            order.append(object_id)
        final[object_id] = values
    removals = [o for o, v in final.items() if v is None and o in rank]
    additions = [o for o in order if final[o] is not None and o not in rank]
    updates = {o: v for o, v in final.items() if v is not None and o in rank}

    def _assign(arrays: tuple[np.ndarray, ...], row_of) -> None:
        for object_id, values in updates.items():
            row = row_of(object_id)
            if len(arrays) == 1:
                arrays[0][row] = values
            else:
                for array, value in zip(arrays, values):
                    array[row] = value

    if not removals and not additions:
        patched = tuple(np.array(col) for col in columns)
        _assign(patched, rank.__getitem__)
        for col in patched:
            col.flags.writeable = False
        return ids, patched, rank
    gone = set(removals)
    keep = [row for row, object_id in enumerate(ids) if object_id not in gone]
    new_ids = tuple([ids[row] for row in keep] + additions)
    base = len(keep)
    rebuilt = []
    for col in columns:
        shape = (len(new_ids),) + col.shape[1:]
        out = np.empty(shape, dtype=col.dtype)
        out[:base] = col[keep]
        rebuilt.append(out)
    rebuilt = tuple(rebuilt)
    new_rank = {object_id: row for row, object_id in enumerate(new_ids)}
    for object_id in additions:
        updates[object_id] = final[object_id]
    _assign(rebuilt, new_rank.__getitem__)
    for col in rebuilt:
        col.flags.writeable = False
    return new_ids, rebuilt, new_rank
