"""One-pass vectorized population cloaking (the bulk write path).

Where :mod:`repro.cloaking` blurs one user at a time, this module cloaks
the *entire subscribed population* in a single numpy pass, the write-side
counterpart of the read-side batch kernels in :mod:`repro.engine.kernels`:

* **Pyramid kernel** — one ``bincount`` per pyramid level builds the full
  occupancy histogram; level-``h`` cell codes are derived from the finest
  codes by right-shifting (exact, because multiplying a float by a power
  of two is exact in IEEE-754, so ``floor(v * 2^H) >> (H - h) ==
  floor(v * 2^h)`` — the same cell :meth:`PyramidGrid.cell_at` returns).
  Satisfaction ``count >= k and area >= A_min`` is monotone along a cell
  column, so each user's chosen level is just the per-column count of
  satisfied levels, no search loop at all.
* **Grid kernel** — one ``bincount`` builds cell occupancy, 2-D prefix
  sums turn :meth:`GridIndex.block_count` into O(1) lookups, and the
  greedy line-annexation loop of :class:`GridCloaker` runs once per
  *unique* ``(cell, k, A_min)`` group instead of once per user, with the
  exact scalar tie-break order preserved.

Both kernels replicate the scalar cloakers' IEEE operation sequence for
cell assignment, cell geometry and the final inclusive user count, so the
regions are **identical** — not merely equivalent — to the per-user
oracle's; ``tests/conformance/test_cloak_differential.py`` holds them to
that.  Cloakers without a kernel (data-dependent algorithms, incremental
wrappers, neighbour-merge pyramids) fall back to a scalar loop over
``cloaker.cloak`` with the same escalation semantics, so
``bulk_cloak`` is total over every cloaker in the package.

Escalation and degradation are decided in batch: requested ``k`` values
above the subscribed population are clamped (best effort, Section 5 of
the paper) while results carry the *original* requirement, exactly like
:meth:`LocationAnonymizer.cloak_user`, and per-profile aggregates are
returned so callers can emit ``cloak.bulk`` audit events without a
per-user event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Hashable, Sequence

import numpy as np

from repro.cloaking.base import CloakResult, Cloaker, UserId
from repro.cloaking.grid_cloak import GridCloaker, _better
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyRequirement
from repro.engine import kernels
from repro.geometry.rect import Rect

#: A bulk cloak request: ``(user_id, requirement)`` with the *original*
#: (unclamped) requirement; escalation is decided inside :func:`bulk_cloak`.
BulkRequest = tuple[UserId, PrivacyRequirement]


@dataclass
class BulkCloakOutcome:
    """Everything one bulk cloaking round produced.

    Attributes:
        results: per-user :class:`CloakResult`, carrying each user's
            *original* requirement (so ``k_satisfied`` reads correctly for
            escalated users), in request order.
        path: ``"kernel"`` when a numpy kernel ran, ``"scalar"`` when the
            per-user fallback loop did.
        algo: the cloaker's algorithm name.
        escalated: how many users had ``k`` clamped to the population.
        groups: per-(k, A_min, A_max) aggregate dicts, ready to be emitted
            as ``cloak.bulk`` events (see :func:`group_stats` for keys).
    """

    results: dict[UserId, CloakResult]
    path: str
    algo: str
    escalated: int
    groups: list[dict] = field(default_factory=list)

    @property
    def degraded(self) -> int:
        """Users whose region missed the original requirement."""
        return sum(g["degraded"] for g in self.groups)


def supports_kernel(cloaker: object) -> bool:
    """True when :func:`bulk_cloak` has a vectorized kernel for ``cloaker``.

    Kernels exist for the two fixed space-partitioning algorithms whose
    regions depend only on the user's cell and requirement; everything
    else (data-dependent algorithms, incremental wrappers, the
    neighbour-merge pyramid variant) takes the scalar fallback.
    """
    if type(cloaker) is GridCloaker:
        return True
    return type(cloaker) is PyramidCloaker and not cloaker._neighbor_merge


def bulk_cloak(
    cloaker: Cloaker,
    requests: Sequence[BulkRequest],
    population: int | None = None,
) -> BulkCloakOutcome:
    """Cloak many users in one pass, differential-identical to the oracle.

    Args:
        cloaker: any cloaker (or incremental wrapper) tracking the
            population; routed to a numpy kernel when one exists.
        requests: ``(user_id, requirement)`` pairs with original
            requirements; users asking for no privacy get exact-point
            regions, users asking for more anonymity than exists get the
            clamped best effort.
        population: subscribed-population override (defaults to
            ``cloaker.user_count()``).

    Returns:
        A :class:`BulkCloakOutcome`; ``outcome.results[user]`` equals what
        :meth:`LocationAnonymizer.cloak_user` would have produced.
    """
    if population is None:
        population = cloaker.user_count()
    kernel = supports_kernel(cloaker)
    results: dict[UserId, CloakResult] = {}
    escalated_ids: set[UserId] = set()
    cloak_ids: list[UserId] = []
    cloak_reqs: list[PrivacyRequirement] = []
    k_eff: list[int] = []
    for user_id, requirement in requests:
        if not requirement.wants_privacy:
            point = cloaker.location_of(user_id)
            results[user_id] = CloakResult(
                region=Rect.from_point(point), user_count=1, requirement=requirement
            )
            continue
        effective = requirement.k
        if requirement.k > population:
            effective = max(1, population)
            escalated_ids.add(user_id)
        cloak_ids.append(user_id)
        cloak_reqs.append(requirement)
        k_eff.append(effective)
    if cloak_ids:
        if kernel:
            regions, counts = _kernel_cloak(
                cloaker,
                cloak_ids,
                np.asarray(k_eff, dtype=np.int64),
                np.fromiter(
                    (r.min_area for r in cloak_reqs), dtype=float, count=len(cloak_reqs)
                ),
            )
            cloaker.stats.cloaks += len(cloak_ids)
            for user_id, requirement, region, count in zip(
                cloak_ids, cloak_reqs, regions, counts
            ):
                results[user_id] = CloakResult(
                    region=region, user_count=int(count), requirement=requirement
                )
        else:
            for user_id, requirement, effective in zip(cloak_ids, cloak_reqs, k_eff):
                scoped = (
                    requirement
                    if effective == requirement.k
                    else replace(requirement, k=effective)
                )
                result = cloaker.cloak(user_id, scoped)
                results[user_id] = CloakResult(
                    region=result.region,
                    user_count=result.user_count,
                    requirement=requirement,
                    reused=result.reused,
                )
    return BulkCloakOutcome(
        results=results,
        path="kernel" if kernel else "scalar",
        algo=cloaker.name,
        escalated=len(escalated_ids),
        groups=group_stats(results, escalated_ids),
    )


def group_stats(
    results: dict[UserId, CloakResult], escalated_ids: set[UserId]
) -> list[dict]:
    """Per-profile aggregates of a bulk round, ready for ``cloak.bulk``.

    One dict per distinct (k, A_min, A_max) requirement, keyed exactly
    like :func:`repro.obs.audit._profile_key` so the auditor can fold the
    aggregates into the same profile tallies as per-user events.  Every
    miss is declared in-band (``degraded`` counts it), keeping the bulk
    path at zero undeclared violations by construction.
    """
    groups: dict[tuple, dict] = {}
    for user_id, result in results.items():
        requirement = result.requirement
        key = (requirement.k, requirement.min_area, requirement.max_area)
        group = groups.get(key)
        if group is None:
            group = groups[key] = {
                "k": requirement.k,
                "min_area": requirement.min_area,
                "max_area": requirement.max_area,
                "n": 0,
                "escalated": 0,
                "k_attained": 0,
                "area_attained": 0,
                "fully_attained": 0,
                "degraded": 0,
                "k_sum": 0,
                "k_min": None,
                "area_sum": 0.0,
                "area_min": None,
            }
        group["n"] += 1
        if user_id in escalated_ids:
            group["escalated"] += 1
        k_ok = result.user_count >= requirement.k
        area = result.region.area
        area_ok = requirement.area_satisfied(area)
        group["k_attained"] += k_ok
        group["area_attained"] += area_ok
        if k_ok and area_ok:
            group["fully_attained"] += 1
        else:
            group["degraded"] += 1
        group["k_sum"] += result.user_count
        group["area_sum"] += area
        if group["k_min"] is None or result.user_count < group["k_min"]:
            group["k_min"] = result.user_count
        if group["area_min"] is None or area < group["area_min"]:
            group["area_min"] = area
    return [groups[key] for key in sorted(groups, key=_group_order)]


def _group_order(key: tuple) -> tuple:
    k, min_area, max_area = key
    return (k, min_area, float("inf") if max_area is None else max_area)


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------


def _kernel_cloak(
    cloaker: Cloaker,
    cloak_ids: list[UserId],
    ks: np.ndarray,
    min_areas: np.ndarray,
) -> tuple[list[Rect], np.ndarray]:
    """Dispatch to the matching kernel; returns (regions, user counts)."""
    rank = {user_id: row for row, user_id in enumerate(cloaker.snapshot_ids())}
    rows = np.fromiter(
        (rank[user_id] for user_id in cloak_ids), dtype=np.intp, count=len(cloak_ids)
    )
    if type(cloaker) is PyramidCloaker:
        return _pyramid_bulk(cloaker, rows, ks, min_areas)
    return _grid_bulk(cloaker, rows, ks, min_areas)


def _pyramid_bulk(
    cloaker: PyramidCloaker,
    rows: np.ndarray,
    ks: np.ndarray,
    min_areas: np.ndarray,
) -> tuple[list[Rect], np.ndarray]:
    """Whole-population pyramid cloaking: bincount histograms + level sums.

    Exactness argument: ``cell_at`` computes ``int(v * 2^level)`` with
    ``v = (x - min_x) / width``; scaling a float by a power of two is
    exact, so the finest-level code determines every coarser code by a
    pure integer shift, and the boundary clamp commutes with shifting.
    Per-level cell geometry replays ``cell_rect``'s exact float ops
    (``min_x + col * (width / side)``), so areas — and hence the
    satisfaction matrix and the chosen levels — match the scalar walk
    bit-for-bit.
    """
    pyramid = cloaker.pyramid
    bounds = cloaker.bounds
    height = pyramid.height
    side = 1 << height
    xs, ys = cloaker.snapshot_arrays()
    vx = (xs - bounds.min_x) / bounds.width
    vy = (ys - bounds.min_y) / bounds.height
    col_fine = np.minimum((vx * side).astype(np.int64), side - 1)
    row_fine = np.minimum((vy * side).astype(np.int64), side - 1)
    n = rows.size
    col_q = col_fine[rows]
    row_q = row_fine[rows]
    counts = np.empty((height + 1, n), dtype=np.int64)
    areas = np.empty((height + 1, n), dtype=np.float64)
    for level in range(height + 1):
        shift = height - level
        side_l = 1 << level
        occupancy = np.bincount(
            (row_fine >> shift) * side_l + (col_fine >> shift),
            minlength=side_l * side_l,
        )
        cq = col_q >> shift
        rq = row_q >> shift
        counts[level] = occupancy[rq * side_l + cq]
        cell_w = bounds.width / side_l
        cell_h = bounds.height / side_l
        x0 = bounds.min_x + cq * cell_w
        x1 = bounds.min_x + (cq + 1) * cell_w
        y0 = bounds.min_y + rq * cell_h
        y1 = bounds.min_y + (rq + 1) * cell_h
        areas[level] = (x1 - x0) * (y1 - y0)
    # count >= k is monotone up the column (parent cells are supersets)
    # and area >= A_min likewise, so the finest satisfying level is the
    # number of satisfying levels minus one; zero satisfied means even
    # the whole space fails A_min and the scalar walk falls through to
    # ``pyramid.bounds``.
    satisfied = (counts >= ks[None, :]) & (areas >= min_areas[None, :])
    levels = satisfied.sum(axis=0) - 1
    chosen = np.maximum(levels, 0)
    shift_sel = height - chosen
    col_sel = col_q >> shift_sel
    row_sel = row_q >> shift_sel
    w_levels = np.array([bounds.width / (1 << lv) for lv in range(height + 1)])
    h_levels = np.array([bounds.height / (1 << lv) for lv in range(height + 1)])
    w_sel = w_levels[chosen]
    h_sel = h_levels[chosen]
    x0 = bounds.min_x + col_sel * w_sel
    x1 = bounds.min_x + (col_sel + 1) * w_sel
    y0 = bounds.min_y + row_sel * h_sel
    y1 = bounds.min_y + (row_sel + 1) * h_sel
    # Clip exactly like Rect.clipped (max against the lower bounds, min
    # against the upper); when the clip is a no-op — every interior cell —
    # the bincount occupancy IS the scalar ``count_in`` answer, because
    # the region is exactly a pyramid cell and the scalar path reads the
    # same counter through ``count_in_window``.
    cx0 = np.maximum(x0, bounds.min_x)
    cy0 = np.maximum(y0, bounds.min_y)
    cx1 = np.minimum(x1, bounds.max_x)
    cy1 = np.minimum(y1, bounds.max_y)
    clip_clean = (cx0 == x0) & (cy0 == y0) & (cx1 == x1) & (cy1 == y1)
    count_sel = counts[chosen, np.arange(n)]
    regions: list[Rect] = []
    user_counts = np.empty(n, dtype=np.int64)
    whole_region: Rect | None = None
    whole_count = -1
    fallback = (levels < 0).tolist()
    clean = clip_clean.tolist()
    lx0, ly0, lx1, ly1 = cx0.tolist(), cy0.tolist(), cx1.tolist(), cy1.tolist()
    for i in range(n):
        if fallback[i]:
            if whole_region is None:
                whole_region = pyramid.bounds.clipped(bounds)
                whole_count = cloaker.count_in(whole_region)
            regions.append(whole_region)
            user_counts[i] = whole_count
            continue
        region = Rect(lx0[i], ly0[i], lx1[i], ly1[i])
        regions.append(region)
        user_counts[i] = count_sel[i] if clean[i] else cloaker.count_in(region)
    return regions, user_counts


def _grid_bulk(
    cloaker: GridCloaker,
    rows: np.ndarray,
    ks: np.ndarray,
    min_areas: np.ndarray,
) -> tuple[list[Rect], np.ndarray]:
    """Whole-population grid cloaking: prefix-sum counts + per-group greedy.

    The scalar region depends only on ``(start cell, k, A_min)``, so the
    greedy annexation loop runs once per unique group; block counts come
    from a 2-D prefix sum (O(1) per probe instead of a Python cell scan)
    while block geometry still goes through ``grid.block_rect`` for exact
    float equality.  Final user counts use the same inclusive boundary
    test as ``Cloaker.count_in`` — cell occupancy cannot stand in for it,
    because a user exactly on a cell edge is assigned to one cell but
    geometrically inside both neighbouring blocks.
    """
    grid = cloaker.spatial_index()
    bounds = cloaker.bounds
    cols, grows = grid.cols, grid.rows
    cell_w = bounds.width / cols
    cell_h = bounds.height / grows
    xs, ys = cloaker.snapshot_arrays()
    col_all = np.minimum(((xs - bounds.min_x) / cell_w).astype(np.int64), cols - 1)
    row_all = np.minimum(((ys - bounds.min_y) / cell_h).astype(np.int64), grows - 1)
    occupancy = np.bincount(
        row_all * cols + col_all, minlength=grows * cols
    ).reshape(grows, cols)
    prefix = np.zeros((grows + 1, cols + 1), dtype=np.int64)
    prefix[1:, 1:] = occupancy.cumsum(axis=0).cumsum(axis=1)

    def block_count(c0: int, r0: int, c1: int, r1: int) -> int:
        return int(
            prefix[r1 + 1, c1 + 1]
            - prefix[r0, c1 + 1]
            - prefix[r1 + 1, c0]
            + prefix[r0, c0]
        )

    keys = np.stack(
        [
            col_all[rows].astype(float),
            row_all[rows].astype(float),
            ks.astype(float),
            min_areas,
        ],
        axis=1,
    )
    unique, inverse = np.unique(keys, axis=0, return_inverse=True)
    group_regions: list[Rect] = []
    for col, row, k_f, amin in unique.tolist():
        col_lo = col_hi = int(col)
        row_lo = row_hi = int(row)
        k = int(k_f)
        count = block_count(col_lo, row_lo, col_hi, row_hi)
        while (
            count < k
            or grid.block_rect(col_lo, row_lo, col_hi, row_hi).area < amin
        ):
            best_gain = -1.0
            best = None
            if col_lo > 0:
                added = block_count(col_lo - 1, row_lo, col_lo - 1, row_hi)
                best_gain, best = _better(best_gain, best, added, "left")
            if col_hi < cols - 1:
                added = block_count(col_hi + 1, row_lo, col_hi + 1, row_hi)
                best_gain, best = _better(best_gain, best, added, "right")
            if row_lo > 0:
                added = block_count(col_lo, row_lo - 1, col_hi, row_lo - 1)
                best_gain, best = _better(best_gain, best, added, "down")
            if row_hi < grows - 1:
                added = block_count(col_lo, row_hi + 1, col_hi, row_hi + 1)
                best_gain, best = _better(best_gain, best, added, "up")
            if best is None:
                break  # whole grid annexed; best effort
            if best == "left":
                col_lo -= 1
            elif best == "right":
                col_hi += 1
            elif best == "down":
                row_lo -= 1
            else:
                row_hi += 1
            count = block_count(col_lo, row_lo, col_hi, row_hi)
        group_regions.append(
            grid.block_rect(col_lo, row_lo, col_hi, row_hi).clipped(bounds)
        )
    windows = kernels.windows_array(group_regions)
    group_counts = kernels.count_points_in_windows(xs, ys, windows)
    inverse_list = inverse.tolist()
    regions = [group_regions[g] for g in inverse_list]
    return regions, group_counts[inverse]
