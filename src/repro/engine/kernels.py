"""Vectorised batch kernels over snapshot arrays.

Each kernel evaluates one predicate for a whole batch of queries against
the frozen object arrays at once, replacing per-query index traversals
with a (queries x objects) broadcast.  The work matrix is processed in
row chunks of at most :data:`CHUNK_CELLS` cells so memory stays bounded
(a few tens of MB) no matter how large the batch is.

On top of the broadcast kernels, :class:`PointGrid` bins the snapshot
points into a uniform grid once per snapshot (the payoff of snapshot
reuse) so the hot public-over-public kernels touch only the cells a
query can see instead of every object: ``points_in_windows_grid`` and
``knn_points_grid`` return exactly the same rows as their brute-force
counterparts — the conformance suite holds them to that — while doing
selectivity-proportional work.

Numeric contract: every kernel applies the same IEEE operation sequence
as its scalar counterpart (``Rect.contains_point``, ``min_dist``,
``Point.distance_to``), so membership decisions agree exactly — not just
approximately — with the per-query path.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

#: Upper bound on queries x objects cells materialised at once (~32 MB of
#: float64 per chunk).
CHUNK_CELLS = 1 << 22


def _row_chunks(n_queries: int, n_objects: int) -> Iterator[tuple[int, int]]:
    """Yield ``[lo, hi)`` query ranges keeping ``rows * n_objects`` bounded."""
    rows = max(1, CHUNK_CELLS // max(1, n_objects))
    for lo in range(0, n_queries, rows):
        yield lo, min(n_queries, lo + rows)


def _estimate_chunks(estimate: np.ndarray) -> Iterator[tuple[int, int]]:
    """Yield ``[lo, hi)`` ranges whose estimated workloads sum to a chunk.

    Like :func:`_row_chunks` but for kernels whose per-query cost varies
    (grid gathers scale with the query's cell block, not the object
    count); ``estimate[i]`` is query ``i``'s predicted element count.
    """
    total = np.cumsum(estimate)
    lo = 0
    n = len(estimate)
    while lo < n:
        base = total[lo - 1] if lo else 0.0
        hi = int(np.searchsorted(total, base + CHUNK_CELLS, side="left")) + 1
        hi = max(lo + 1, min(hi, n))
        yield lo, hi
        lo = hi


def windows_array(rects: Sequence) -> np.ndarray:
    """Pack ``Rect`` instances into an ``(n, 4)`` float64 bounds array."""
    out = np.empty((len(rects), 4))
    for row, rect in enumerate(rects):
        out[row, 0] = rect.min_x
        out[row, 1] = rect.min_y
        out[row, 2] = rect.max_x
        out[row, 3] = rect.max_y
    return out


def points_in_windows(
    xs: np.ndarray, ys: np.ndarray, windows: np.ndarray
) -> list[np.ndarray]:
    """Rows of points inside each closed query window.

    Args:
        xs / ys: object coordinates, aligned.
        windows: ``(q, 4)`` window bounds.

    Returns:
        One ascending index array per window (snapshot order).
    """
    out: list[np.ndarray] = []
    for lo, hi in _row_chunks(len(windows), xs.size):
        w = windows[lo:hi]
        inside = (
            (xs >= w[:, 0:1])
            & (xs <= w[:, 2:3])
            & (ys >= w[:, 1:2])
            & (ys <= w[:, 3:4])
        )
        out.extend(np.nonzero(row)[0] for row in inside)
    return out


def count_points_in_windows(
    xs: np.ndarray, ys: np.ndarray, windows: np.ndarray
) -> np.ndarray:
    """Point counts per closed query window (same test, counts only).

    The counting form of :func:`points_in_windows` — identical inclusive
    comparisons, so the counts equal ``len(points_in_windows(...)[i])``
    and, by extension, :meth:`repro.cloaking.base.Cloaker.count_in` over
    the same arrays.  Used by the bulk cloaking kernels, where only the
    achieved ``k`` is needed, never the member rows.
    """
    out = np.empty(len(windows), dtype=np.int64)
    for lo, hi in _row_chunks(len(windows), xs.size):
        w = windows[lo:hi]
        inside = (
            (xs >= w[:, 0:1])
            & (xs <= w[:, 2:3])
            & (ys >= w[:, 1:2])
            & (ys <= w[:, 3:4])
        )
        out[lo:hi] = inside.sum(axis=1)
    return out


def points_within_radius(
    xs: np.ndarray,
    ys: np.ndarray,
    regions: np.ndarray,
    radii: np.ndarray,
) -> list[np.ndarray]:
    """Rows of points within ``radii[i]`` of query rectangle ``regions[i]``.

    The exact "rounded rectangle" membership test of a private range
    query: per-axis gap to the rectangle, then ``hypot(dx, dy) <= r``
    — the vector form of ``min_dist(point, region) <= radius``.
    """
    out: list[np.ndarray] = []
    for lo, hi in _row_chunks(len(regions), xs.size):
        r = regions[lo:hi]
        dx = np.maximum(0.0, np.maximum(r[:, 0:1] - xs, xs - r[:, 2:3]))
        dy = np.maximum(0.0, np.maximum(r[:, 1:2] - ys, ys - r[:, 3:4]))
        within = np.hypot(dx, dy) <= radii[lo:hi, None]
        out.extend(np.nonzero(row)[0] for row in within)
    return out


def knn_points(
    xs: np.ndarray,
    ys: np.ndarray,
    qx: np.ndarray,
    qy: np.ndarray,
    ks: Sequence[int],
) -> list[np.ndarray]:
    """The ``ks[i]`` nearest points to query ``i``, nearest-first.

    Distance ties are broken by snapshot row (ascending), making the
    answer canonical: any object strictly closer than the last member is
    always included, and equidistant objects win by rank.
    """
    out: list[np.ndarray] = []
    for lo, hi in _row_chunks(len(qx), xs.size):
        d2 = (xs - qx[lo:hi, None]) ** 2 + (ys - qy[lo:hi, None]) ** 2
        for offset, row in enumerate(d2):
            out.append(_smallest_k(row, ks[lo + offset]))
    return out


def _smallest_k(d2: np.ndarray, k: int) -> np.ndarray:
    """Rows of the ``k`` smallest distances, nearest-first, rank ties."""
    n = d2.size
    k = min(k, n)
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    if k >= n:
        selected = np.arange(n)
    else:
        # argpartition finds the k-smallest cheaply but breaks boundary
        # ties arbitrarily; rebuild the selection as "everything strictly
        # inside the boundary distance, then boundary ties by rank".
        partition = np.argpartition(d2, k - 1)[:k]
        boundary = d2[partition].max()
        strict = np.nonzero(d2 < boundary)[0]
        ties = np.nonzero(d2 == boundary)[0]
        selected = np.concatenate((strict, ties[: k - strict.size]))
    order = np.lexsort((selected, d2[selected]))
    return selected[order]


class PointGrid:
    """Uniform grid over snapshot points, built once and reused per batch.

    Points are bucketed into ``g x g`` cells over their bounding box
    (about ``target_per_cell`` points each) and stored sorted by cell, so
    the points of any rectangular block of cells are a handful of
    contiguous slices of :attr:`order` — the gather that powers the
    grid-accelerated range and k-NN kernels.
    """

    __slots__ = ("xs", "ys", "n", "g", "min_x", "min_y", "inv_w", "inv_h",
                 "cell_w", "cell_h", "order", "starts")

    def __init__(
        self, xs: np.ndarray, ys: np.ndarray, target_per_cell: float = 8.0
    ) -> None:
        self.xs = xs
        self.ys = ys
        self.n = int(xs.size)
        self.g = max(1, int(math.sqrt(self.n / target_per_cell)))
        if self.n == 0:
            self.min_x = self.min_y = 0.0
            self.cell_w = self.cell_h = 1.0
            self.inv_w = self.inv_h = 1.0
            self.order = np.empty(0, dtype=np.intp)
            self.starts = np.zeros(self.g * self.g + 1, dtype=np.intp)
            return
        self.min_x = float(xs.min())
        self.min_y = float(ys.min())
        span_x = float(xs.max()) - self.min_x or 1.0
        span_y = float(ys.max()) - self.min_y or 1.0
        self.cell_w = span_x / self.g
        self.cell_h = span_y / self.g
        self.inv_w = 1.0 / self.cell_w
        self.inv_h = 1.0 / self.cell_h
        cx = np.minimum(((xs - self.min_x) * self.inv_w).astype(np.intp), self.g - 1)
        cy = np.minimum(((ys - self.min_y) * self.inv_h).astype(np.intp), self.g - 1)
        cell = cx * self.g + cy
        self.order = np.argsort(cell, kind="stable")
        counts = np.bincount(cell, minlength=self.g * self.g)
        self.starts = np.concatenate(
            (np.zeros(1, dtype=np.intp), np.cumsum(counts, dtype=np.intp))
        )

    def cell_x(self, x: np.ndarray) -> np.ndarray:
        """Column indices covering coordinates ``x`` (monotone, clipped)."""
        return np.clip(
            np.floor((x - self.min_x) * self.inv_w), 0, self.g - 1
        ).astype(np.intp)

    def cell_y(self, y: np.ndarray) -> np.ndarray:
        return np.clip(
            np.floor((y - self.min_y) * self.inv_h), 0, self.g - 1
        ).astype(np.intp)


def _gather_blocks(
    grid: PointGrid,
    cx0: np.ndarray,
    cx1: np.ndarray,
    cy0: np.ndarray,
    cy1: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Point rows inside each query's cell block, as one flat gather.

    Args:
        cx0 / cx1 / cy0 / cy1: inclusive cell bounds per query.

    Returns:
        ``(rows, seg)`` — global point rows and, aligned, the query index
        each row belongs to.  Rows within a query are unordered.
    """
    g = grid.g
    n_cols = cx1 - cx0 + 1
    col_seg = np.repeat(np.arange(len(cx0)), n_cols)
    offsets = np.cumsum(n_cols) - n_cols
    col_x = cx0[col_seg] + (np.arange(int(n_cols.sum())) - offsets[col_seg])
    base = col_x * g
    starts = grid.starts[base + cy0[col_seg]]
    ends = grid.starts[base + cy1[col_seg] + 1]
    lens = ends - starts
    total = int(lens.sum())
    run_off = np.cumsum(lens) - lens
    flat = np.arange(total) - np.repeat(run_off, lens) + np.repeat(starts, lens)
    return grid.order[flat], np.repeat(col_seg, lens)


def points_in_windows_grid(
    grid: PointGrid, windows: np.ndarray
) -> list[np.ndarray]:
    """Grid-accelerated :func:`points_in_windows` (same rows, same order).

    Gathers only the cells each window overlaps, then applies the exact
    closed-window test — work proportional to window selectivity instead
    of the object count.
    """
    n_q = len(windows)
    if grid.n == 0 or n_q == 0:
        return [np.empty(0, dtype=np.intp) for _ in range(n_q)]
    out: list[np.ndarray] = []
    all_cx0 = grid.cell_x(windows[:, 0])
    all_cx1 = grid.cell_x(windows[:, 2])
    all_cy0 = grid.cell_y(windows[:, 1])
    all_cy1 = grid.cell_y(windows[:, 3])
    per_cell = max(1.0, grid.n / (grid.g * grid.g))
    estimate = (all_cx1 - all_cx0 + 1) * (all_cy1 - all_cy0 + 1) * per_cell
    for lo, hi in _estimate_chunks(estimate):
        w = windows[lo:hi]
        rows, seg = _gather_blocks(
            grid, all_cx0[lo:hi], all_cx1[lo:hi], all_cy0[lo:hi], all_cy1[lo:hi]
        )
        keep = (
            (grid.xs[rows] >= w[seg, 0])
            & (grid.xs[rows] <= w[seg, 2])
            & (grid.ys[rows] >= w[seg, 1])
            & (grid.ys[rows] <= w[seg, 3])
        )
        rows = rows[keep]
        seg = seg[keep]
        order = np.lexsort((rows, seg))
        rows = rows[order]
        bounds = np.searchsorted(seg[order], np.arange(hi - lo + 1))
        out.extend(rows[bounds[i] : bounds[i + 1]] for i in range(hi - lo))
    return out


def knn_points_grid(
    grid: PointGrid, qx: np.ndarray, qy: np.ndarray, ks: Sequence[int]
) -> list[np.ndarray]:
    """Grid-accelerated :func:`knn_points` (same rows, same order).

    One vectorised pass gathers a cell block around every query sized for
    its ``k``; a query is resolved when its k-th candidate distance is
    strictly inside the gathered block's guard ring (no outside point can
    beat or tie into the answer).  The few unresolved queries fall back
    to per-query ring expansion — exact in all cases.
    """
    n_q = len(qx)
    if n_q == 0:
        return []
    if grid.n == 0:
        return [np.empty(0, dtype=np.intp) for _ in range(n_q)]
    ks_arr = np.minimum(np.asarray(ks, dtype=np.intp), grid.n)
    per_cell = max(1.0, grid.n / (grid.g * grid.g))
    # Initial block radius: enough cells for ~2k candidates on average.
    k_max = int(ks_arr.max())
    radius = max(1, math.ceil((math.sqrt(2.0 * k_max / per_cell) - 1.0) / 2.0))
    results: list[np.ndarray] = [None] * n_q  # type: ignore[list-item]
    side = 2 * radius + 1
    for lo, hi in _row_chunks(n_q, int(per_cell * side * side)):
        cx = grid.cell_x(qx[lo:hi])
        cy = grid.cell_y(qy[lo:hi])
        cx0 = np.maximum(cx - radius, 0)
        cx1 = np.minimum(cx + radius, grid.g - 1)
        cy0 = np.maximum(cy - radius, 0)
        cy1 = np.minimum(cy + radius, grid.g - 1)
        rows, seg = _gather_blocks(grid, cx0, cx1, cy0, cy1)
        d2 = (grid.xs[rows] - qx[lo:hi][seg]) ** 2 + (
            grid.ys[rows] - qy[lo:hi][seg]
        ) ** 2
        order = np.lexsort((rows, d2, seg))
        rows = rows[order]
        d2 = d2[order]
        bounds = np.searchsorted(seg[order], np.arange(hi - lo + 1))
        guard = _block_guard(grid, qx[lo:hi], qy[lo:hi], cx0, cx1, cy0, cy1)
        for i in range(hi - lo):
            k = int(ks_arr[lo + i])
            start, end = int(bounds[i]), int(bounds[i + 1])
            # Strict inequality: an ungathered point at exactly the guard
            # distance could still tie into the answer by rank.
            if end - start >= k and (k == 0 or d2[start + k - 1] < guard[i]):
                results[lo + i] = rows[start : start + k]
            else:
                results[lo + i] = _knn_one(
                    grid, float(qx[lo + i]), float(qy[lo + i]), k, radius + 1
                )
    return results


def _block_guard(
    grid: PointGrid,
    qx: np.ndarray,
    qy: np.ndarray,
    cx0: np.ndarray,
    cx1: np.ndarray,
    cy0: np.ndarray,
    cy1: np.ndarray,
) -> np.ndarray:
    """Squared distance below which no point outside the block can lie.

    Per query: the smallest distance from the query point to a block edge
    that still has cells beyond it (edges flush with the grid border have
    nothing beyond and are ignored).  Negative distances (query outside
    the block) clamp to 0, resolving nothing.
    """
    inf = np.inf
    left = np.where(cx0 > 0, qx - (grid.min_x + cx0 * grid.cell_w), inf)
    right = np.where(
        cx1 < grid.g - 1, (grid.min_x + (cx1 + 1) * grid.cell_w) - qx, inf
    )
    bottom = np.where(cy0 > 0, qy - (grid.min_y + cy0 * grid.cell_h), inf)
    top = np.where(
        cy1 < grid.g - 1, (grid.min_y + (cy1 + 1) * grid.cell_h) - qy, inf
    )
    guard = np.maximum(
        np.minimum(np.minimum(left, right), np.minimum(bottom, top)), 0.0
    )
    return guard * guard


def _knn_one(grid: PointGrid, x: float, y: float, k: int, radius: int) -> np.ndarray:
    """Exact k-NN for one query by ring expansion (the rare fallback)."""
    if k <= 0:
        return np.empty(0, dtype=np.intp)
    g = grid.g
    cx = int(grid.cell_x(np.array([x]))[0])
    cy = int(grid.cell_y(np.array([y]))[0])
    while True:
        cx0, cx1 = max(cx - radius, 0), min(cx + radius, g - 1)
        cy0, cy1 = max(cy - radius, 0), min(cy + radius, g - 1)
        parts = [
            grid.order[grid.starts[col * g + cy0] : grid.starts[col * g + cy1 + 1]]
            for col in range(cx0, cx1 + 1)
        ]
        rows = np.concatenate(parts) if len(parts) > 1 else parts[0]
        whole_grid = cx0 == 0 and cy0 == 0 and cx1 == g - 1 and cy1 == g - 1
        if rows.size >= k or whole_grid:
            rows = np.sort(rows)
            d2 = (grid.xs[rows] - x) ** 2 + (grid.ys[rows] - y) ** 2
            guard = _block_guard(
                grid,
                np.array([x]),
                np.array([y]),
                np.array([cx0]),
                np.array([cx1]),
                np.array([cy0]),
                np.array([cy1]),
            )[0]
            if rows.size >= k and (k == 0 or np.partition(d2, k - 1)[k - 1] < guard):
                return rows[_smallest_k(d2, k)]
            if whole_grid:
                return rows[_smallest_k(d2, min(k, rows.size))]
        radius += 1


def rects_intersecting_window(bounds: np.ndarray, windows: np.ndarray) -> list[np.ndarray]:
    """Rows of rectangles intersecting each closed query window."""
    out: list[np.ndarray] = []
    for lo, hi in _row_chunks(len(windows), len(bounds)):
        w = windows[lo:hi]
        overlap = (
            (bounds[:, 0] <= w[:, 2:3])
            & (w[:, 0:1] <= bounds[:, 2])
            & (bounds[:, 1] <= w[:, 3:4])
            & (w[:, 1:2] <= bounds[:, 3])
        )
        out.extend(np.nonzero(row)[0] for row in overlap)
    return out
