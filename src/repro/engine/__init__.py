"""Vectorized batch query execution over frozen server snapshots.

The :class:`BatchEngine` answers heterogeneous query batches against an
immutable :class:`ServerSnapshot` using numpy kernels, with per-query
scalar fallbacks that produce identical results; the
:class:`BruteForceOracle` is the deliberately naive O(n * m) reference
every faster path is differential-tested against.  See
``docs/batch_engine.md``.
"""

from repro.engine.batch import BatchEngine, BatchResult
from repro.engine.cloak import BulkCloakOutcome, bulk_cloak
from repro.engine.oracle import BruteForceOracle
from repro.engine.queries import (
    BatchQuery,
    PrivateNNQuery,
    PrivateRangeQuery,
    PublicCountQuery,
    PublicNNQuery,
    PublicRangeQuery,
)
from repro.engine.snapshot import ServerSnapshot

__all__ = [
    "BatchEngine",
    "BatchQuery",
    "BatchResult",
    "BruteForceOracle",
    "BulkCloakOutcome",
    "bulk_cloak",
    "PrivateNNQuery",
    "PrivateRangeQuery",
    "PublicCountQuery",
    "PublicNNQuery",
    "PublicRangeQuery",
    "ServerSnapshot",
]
