"""Brute-force differential-testing oracle.

A deliberately naive O(n * m) reference implementation of every query
type the server answers.  No index, no pruning, no vectorisation — one
python loop per query over a plain dict — so its answers are easy to
audit by eye and make a trustworthy anchor for the conformance suite
(``tests/conformance/``) and the slow baseline of ``BENCH_batch.json``.

Nearest-neighbour answers are canonical: nearest-first with ties broken
by insertion rank.  Because index backends may break exact-distance ties
differently (all are correct), :meth:`BruteForceOracle.validate_knn`
checks an answer's *validity* — every strictly-closer object included,
nothing farther than the last member — rather than identity.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from repro.geometry.distances import max_dist, min_dist
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.probabilistic import CountAnswer
from repro.queries.public_range import membership_probability


class BruteForceOracle:
    """Reference answers over plain ``{id: Point}`` / ``{id: Rect}`` tables.

    Args:
        public: exact public object locations (may be empty).
        private: cloaked private regions (may be empty).

    Insertion order of the mappings defines the rank used for canonical
    ordering and tie-breaking.
    """

    def __init__(
        self,
        public: Mapping[Hashable, Point] | None = None,
        private: Mapping[Hashable, Rect] | None = None,
    ) -> None:
        self.public: dict[Hashable, Point] = dict(public or {})
        self.private: dict[Hashable, Rect] = dict(private or {})
        self._public_rank = {item: i for i, item in enumerate(self.public)}
        self._private_rank = {item: i for i, item in enumerate(self.private)}

    @classmethod
    def from_server(cls, server) -> "BruteForceOracle":
        """Snapshot a :class:`~repro.core.server.LocationServer`'s tables."""
        return cls(
            public=dict(server.public.items()),
            private=dict(server.private.items()),
        )

    @classmethod
    def from_index(cls, index) -> "BruteForceOracle":
        """Snapshot a :class:`~repro.index.base.SpatialIndex`'s entries.

        Degenerate entries double as both tables: their centre goes into
        the public point table, their rectangle into the region table —
        so one oracle anchors range, NN, k-NN and count conformance for
        any backend.
        """
        regions = {item: index.geometry_of(item) for item in index}
        points = {
            item: Point(rect.min_x, rect.min_y)
            for item, rect in regions.items()
            if rect.is_degenerate and rect.width == 0 and rect.height == 0
        }
        return cls(public=points, private=regions)

    # ------------------------------------------------------------------
    # Public queries over public data
    # ------------------------------------------------------------------

    def public_range(self, window: Rect) -> list[Hashable]:
        """Ids of public points inside ``window``, in rank order."""
        return [
            item for item, p in self.public.items() if window.contains_point(p)
        ]

    def public_knn(self, query: Point, k: int) -> list[Hashable]:
        """The ``k`` nearest public points, canonical order."""
        ranked = sorted(
            self.public,
            key=lambda item: (
                query.distance_to(self.public[item]),
                self._public_rank[item],
            ),
        )
        return ranked[: max(0, k)]

    # ------------------------------------------------------------------
    # Private queries over public data
    # ------------------------------------------------------------------

    def private_range(
        self, region: Rect, radius: float, method: str = "exact"
    ) -> list[Hashable]:
        """Candidate set of a private range query, in rank order."""
        if method == "mbr":
            window = region.expanded(radius)
            return [
                item
                for item, p in self.public.items()
                if window.contains_point(p)
            ]
        return [
            item
            for item, p in self.public.items()
            if min_dist(p, region) <= radius
        ]

    def private_nn_bound(self, region: Rect) -> list[Hashable]:
        """The guaranteed candidate superset of a private NN query.

        The ``method="range"`` semantics computed by brute force: the
        pruning bound ``m = min over objects of max_dist(region, o)``,
        then every object with ``min_dist(o, region) <= m``.  Every
        correct candidate generator returns a subset of this.
        """
        if not self.public:
            return []
        m = min(max_dist(p, region) for p in self.public.values())
        return [
            item
            for item, p in self.public.items()
            if min_dist(p, region) <= m
        ]

    def private_nn_witnesses(self, region: Rect, grid: int = 5) -> set[Hashable]:
        """Objects *provably* in the private NN candidate set.

        Each point of a ``grid x grid`` lattice over the region is a
        possible user position; its nearest objects (ties included) must
        appear in any correct candidate set.  A lower bound on the true
        set — used to catch false negatives in the tight generators.
        """
        witnesses: set[Hashable] = set()
        if not self.public:
            return witnesses
        for i in range(grid):
            for j in range(grid):
                fx = i / (grid - 1) if grid > 1 else 0.5
                fy = j / (grid - 1) if grid > 1 else 0.5
                sample = Point(
                    region.min_x + fx * (region.max_x - region.min_x),
                    region.min_y + fy * (region.max_y - region.min_y),
                )
                best = min(
                    sample.distance_to(p) for p in self.public.values()
                )
                witnesses.update(
                    item
                    for item, p in self.public.items()
                    if sample.distance_to(p) == best
                )
        return witnesses

    # ------------------------------------------------------------------
    # Public queries over private data
    # ------------------------------------------------------------------

    def region_range(self, window: Rect) -> list[Hashable]:
        """Ids of regions intersecting ``window``, in rank order."""
        return [
            item
            for item, rect in self.private.items()
            if rect.intersects(window)
        ]

    def region_knn(self, query: Point, k: int) -> list[Hashable]:
        """The ``k`` regions nearest to ``query`` by min-distance."""
        ranked = sorted(
            self.private,
            key=lambda item: (
                min_dist(query, self.private[item]),
                self._private_rank[item],
            ),
        )
        return ranked[: max(0, k)]

    def public_count(self, window: Rect) -> CountAnswer:
        """Probabilistic count over the region table, in rank order."""
        return CountAnswer(
            {
                item: membership_probability(rect, window)
                for item, rect in self.private.items()
                if rect.intersects(window)
            }
        )

    # ------------------------------------------------------------------
    # Tie-tolerant k-NN validation
    # ------------------------------------------------------------------

    def validate_knn(
        self,
        answer: Sequence[Hashable],
        query: Point,
        k: int,
        *,
        table: str = "public",
    ) -> bool:
        """Is ``answer`` a correct k-NN result (up to distance ties)?

        Correct means: right length, members unique and known,
        nearest-first, every object strictly closer than the last member
        included, and no member farther than the last member needs to be.

        Args:
            table: ``"public"`` validates against the point table
                (point distance), ``"private"`` against the region table
                (min-distance to the rectangle).
        """
        entries = self.public if table == "public" else self.private
        if table == "public":
            def distance(item: Hashable) -> float:
                return query.distance_to(entries[item])
        else:
            def distance(item: Hashable) -> float:
                return min_dist(query, entries[item])

        ids = list(answer)
        if len(ids) != min(max(0, k), len(entries)):
            return False
        if len(set(ids)) != len(ids) or any(item not in entries for item in ids):
            return False
        if not ids:
            return True
        dists = [distance(item) for item in ids]
        if dists != sorted(dists):
            return False
        last = dists[-1]
        closer = {item for item in entries if distance(item) < last}
        return closer <= set(ids)
