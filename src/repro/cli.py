"""Command-line interface: run demos and regenerate experiment tables.

Usage (after ``pip install -e .``)::

    python -m repro demo                      # end-to-end pipeline demo
    python -m repro experiments E5 E7         # print selected tables
    python -m repro experiments all           # the full suite
    python -m repro report -o tables.md       # all tables as markdown
    python -m repro obs                       # telemetry dashboard demo
    python -m repro obs --json                # same snapshot, as JSON
    python -m repro obs --jsonl               # structured event log, as JSONL
    python -m repro explain                   # EXPLAIN the Figure 6a count query
    python -m repro explain -q private_nn     # EXPLAIN any query path
    python -m repro plan                      # cost-based planner decision table
    python -m repro plan --json               # same decisions, as JSON
    python -m repro audit --json              # privacy-attainment audit report
    python -m repro health                    # SLO health verdict (exit 4 on fail)
    python -m repro health --watch            # live ASCII dashboard + health
    python -m repro serve-metrics             # HTTP /metrics /health /risk /timeseries
    python -m repro serve-metrics --smoke     # scrape-and-validate self test
    python -m repro top                       # live windowed telemetry + risk panel
    python -m repro profile                   # hot spans by self-time (flamegraph)
    python -m repro bench-batch               # batch vs sequential timings
    python -m repro bench-history             # ingest BENCH_*.json, flag regressions
    python -m repro checkpoint --dir state    # durable workload + checkpoint
    python -m repro recover --dir state       # rebuild from checkpoint + WAL tail
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.evalx import experiments as exp
from repro.evalx.tables import Table

#: Experiment id -> callable returning one Table or a tuple of Tables.
EXPERIMENTS: dict[str, Callable[[], object]] = {
    "E1": exp.run_e1_profile,
    "E2": lambda: (exp.run_e2_data_dependent(), exp.run_e2_clique()),
    "E3": lambda: (exp.run_e3_space_dependent(), exp.run_e3_ablation_pyramid()),
    "E4": lambda: (exp.run_e4_scalability(), exp.run_e4_scale_sweep()),
    "E5": exp.run_e5_private_range,
    "E6": exp.run_e6_private_nn,
    "E7": exp.run_e7_public_count,
    "E8": lambda: (exp.run_e8_public_nn(), exp.figure_6b_example()),
    "E9": lambda: (exp.run_e9_tradeoff(), exp.run_e9_by_algorithm()),
    "E10": lambda: (exp.run_e10_attacks(), exp.run_e10_density(), exp.run_e10_linkage()),
    "E11": exp.run_e11_transmission,
    "E12": lambda: (exp.run_e12_continuous(), exp.run_e12_delta_transmission()),
    "E13": exp.run_e13_temporal,
    "E14": exp.run_e14_dummies,
}


def _as_tables(result: object) -> list[Table]:
    if isinstance(result, Table):
        return [result]
    return list(result)  # type: ignore[arg-type]


def _run_ids(ids: Sequence[str]) -> list[Table]:
    wanted = list(EXPERIMENTS) if list(ids) in (["all"], []) else list(ids)
    tables: list[Table] = []
    for experiment_id in wanted:
        runner = EXPERIMENTS.get(experiment_id.upper())
        if runner is None:
            raise SystemExit(
                f"unknown experiment {experiment_id!r}; "
                f"choose from {', '.join(EXPERIMENTS)} or 'all'"
            )
        tables.extend(_as_tables(runner()))
    return tables


def cmd_demo(_: argparse.Namespace) -> int:
    """A compact end-to-end pipeline demonstration."""
    import numpy as np

    from repro import (
        CountSpec,
        MobileUser,
        NNSpec,
        PrivacyProfile,
        PrivacySystem,
        PyramidCloaker,
        RangeSpec,
    )
    from repro.geometry import Point, Rect

    rng = np.random.default_rng(0)
    bounds = Rect(0, 0, 100, 100)
    system = PrivacySystem(bounds, PyramidCloaker(bounds, height=6))
    for j in range(40):
        x, y = rng.uniform(0, 100, 2)
        system.add_poi(f"poi-{j}", Point(float(x), float(y)))
    for i in range(400):
        x, y = rng.uniform(0, 100, 2)
        system.add_user(
            MobileUser(i, Point(float(x), float(y)), PrivacyProfile.always(k=10))
        )
    system.publish_all()
    outcome, _ = system.query(RangeSpec(flavor="private", user=0, radius=12.0))
    nn_outcome, nearest = system.query(NNSpec(flavor="private", user=0))
    answer = system.query(CountSpec(window=Rect(25, 25, 75, 75)))
    print("privacy-aware LBS demo (400 users, k = 10)")
    print(f"  range query: {outcome.candidates} candidates shipped for "
          f"{outcome.answer_size} true answers (correct: {outcome.correct})")
    print(f"  NN query   : {nn_outcome.candidates} candidates, answer "
          f"{nearest} (correct: {nn_outcome.correct})")
    print(f"  count query: E = {answer.expected:.1f}, interval {answer.interval}")
    return 0


def _observed_quickstart(
    users: int = 200,
    pois: int = 30,
    queries: int = 25,
    seed: int = 0,
    telemetry=None,
):
    """Run a small traced pipeline workload and return the PrivacySystem.

    ``telemetry`` lets callers pre-wire the sink (e.g. install a
    profiler or attach a JSONL trail) before the workload runs.
    """
    import numpy as np

    from repro import (
        CountSpec,
        MobileUser,
        NNSpec,
        PrivacyProfile,
        PrivacySystem,
        PyramidCloaker,
        RangeSpec,
    )
    from repro.geometry import Point, Rect

    rng = np.random.default_rng(seed)
    bounds = Rect(0, 0, 100, 100)
    system = PrivacySystem(
        bounds, PyramidCloaker(bounds, height=6), telemetry=telemetry
    )
    for j in range(pois):
        x, y = rng.uniform(0, 100, 2)
        system.add_poi(f"poi-{j}", Point(float(x), float(y)))
    for i in range(users):
        x, y = rng.uniform(0, 100, 2)
        system.add_user(
            MobileUser(i, Point(float(x), float(y)), PrivacyProfile.always(k=8))
        )
    system.publish_all()
    moves = {
        i: Point(
            float(min(100.0, system.users[i].location.x + rng.uniform(0, 2))),
            float(min(100.0, system.users[i].location.y + rng.uniform(0, 2))),
        )
        for i in range(min(users, 50))
    }
    system.apply_movement(moves)
    for i in range(queries):
        system.query(RangeSpec(flavor="private", user=i % users, radius=10.0))
        system.query(NNSpec(flavor="private", user=(i * 7) % users))
        system.query(CountSpec(window=Rect(20, 20, 80, 80)))
    return system


def cmd_obs(args: argparse.Namespace) -> int:
    """Run a traced workload and print its telemetry snapshot."""
    from repro.obs.export import render_dashboard, to_json, to_prometheus

    if args.users < 1:
        raise SystemExit("repro obs: error: --users must be at least 1")
    if args.queries < 0:
        raise SystemExit("repro obs: error: --queries must be non-negative")
    system = _observed_quickstart(
        users=args.users, queries=args.queries, seed=args.seed
    )
    if args.jsonl:
        text = system.obs.events.dump_jsonl()
        if not text:
            print("repro obs: error: no events recorded", file=sys.stderr)
            return 1
        sys.stdout.write(text)
        return 0
    snapshot = system.telemetry()
    if not (
        snapshot.get("stages") or snapshot.get("counters") or snapshot.get("events")
    ):
        print("repro obs: error: no telemetry recorded", file=sys.stderr)
        return 1
    if args.json:
        print(to_json(snapshot))
    elif args.prometheus:
        print(to_prometheus(snapshot))
    else:
        print(render_dashboard(snapshot))
    return 0


#: EXPLAIN-able query paths (plus the composite ``batch`` and the paper's
#: Figure 6a worked example, the default).
EXPLAIN_QUERIES = (
    "figure6a",
    "public_range",
    "public_knn",
    "public_count",
    "public_nn",
    "private_range",
    "private_nn",
    "private_knn",
    "batch",
    "bulk_cloak",
    "planned",
)


def cmd_explain(args: argparse.Namespace) -> int:
    """EXPLAIN one query path: plan tree with measured index work."""
    from repro.obs import QueryExplainer, plan_to_json, render_plan
    from repro.obs.explain import explain_figure_6a

    if args.query == "figure6a":
        plan = explain_figure_6a()
    else:
        from repro.engine import PublicNNQuery, PublicRangeQuery
        from repro.engine.queries import PrivateNNQuery, PublicCountQuery
        from repro.geometry import Point, Rect

        system = _observed_quickstart(
            users=args.users, queries=0, seed=args.seed
        )
        explainer = QueryExplainer(system.server)
        region = system.anonymizer.cloak_user(0, t=system.clock).region
        if args.query == "public_range":
            plan = explainer.explain_public_range(Rect(20, 20, 60, 60))
        elif args.query == "public_knn":
            plan = explainer.explain_public_knn(Point(50, 50), k=4)
        elif args.query == "public_count":
            plan = explainer.explain_public_count(Rect(20, 20, 80, 80))
        elif args.query == "public_nn":
            plan = explainer.explain_public_nn(Point(50, 50))
        elif args.query == "private_range":
            plan = explainer.explain_private_range(region, radius=10.0)
        elif args.query == "private_nn":
            plan = explainer.explain_private_nn(region)
        elif args.query == "private_knn":
            plan = explainer.explain_private_knn(region, k=4)
        elif args.query == "bulk_cloak":
            plan = explainer.explain_bulk_cloak(
                system.anonymizer, t=system.clock
            )
        elif args.query == "planned":
            from repro.queries.spec import KNNSpec

            plan = explainer.explain_spec(KNNSpec(point=Point(50, 50), k=4))
        else:  # batch
            plan = explainer.explain_batch(
                [
                    PublicRangeQuery(Rect(20, 20, 60, 60)),
                    PublicNNQuery(Point(50, 50), k=4),
                    PublicCountQuery(Rect(20, 20, 80, 80)),
                    PrivateNNQuery(region),
                ]
            )
    print(plan_to_json(plan) if args.json else render_plan(plan))
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Print the cost-based planner's decisions for a spec workload."""
    import json

    from repro.geometry import Point, Rect
    from repro.queries.spec import (
        CountSpec,
        KNNSpec,
        NNSpec,
        RangeSpec,
        spec_to_dict,
    )

    if args.users < 1:
        raise SystemExit("repro plan: error: --users must be at least 1")
    system = _observed_quickstart(users=args.users, queries=0, seed=args.seed)
    region = system.anonymizer.cloak_user(0, t=system.clock).region
    specs = [
        RangeSpec(window=Rect(20, 20, 60, 60)),
        KNNSpec(point=Point(50, 50), k=4),
        CountSpec(window=Rect(20, 20, 80, 80)),
        RangeSpec(flavor="private", region=region, radius=10.0),
        NNSpec(flavor="private", region=region),
        NNSpec(dataset="private", point=Point(50, 50), samples=512),
    ]
    planner = system.planner
    decisions = [
        planner.decide(spec, batch_size=args.batch) for spec in specs
    ]
    stats = planner.stats()
    if args.json:
        print(
            json.dumps(
                {
                    "stats": stats.to_dict(),
                    "decisions": [
                        {"spec": spec_to_dict(spec), **decision.to_dict()}
                        for spec, decision in zip(specs, decisions)
                    ],
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(
        f"cost-based planner decisions "
        f"(pois={len(system.server.public)}, users={args.users}, "
        f"batch={args.batch})"
    )
    print(
        f"  statistics: n_public={stats.n_public} n_private={stats.n_private}"
        f" snapshot_fresh={stats.snapshot_fresh} grid_ready={stats.grid_ready}"
        f" calibration_sample={stats.calibration_sample}"
    )
    print(f"  {'query':<25} {'backend':<9} {'route':<11} {'est_s':>9}  reason")
    for decision in decisions:
        print(
            f"  {decision.kind:<25} {decision.backend:<9} "
            f"{decision.route:<11} {decision.seconds:>9.2e}  {decision.reason}"
        )
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    """Run a workload (or read a JSONL trail) and print the audit report."""
    import json

    from repro.obs import PrivacyAuditor

    if args.from_jsonl:
        auditor = PrivacyAuditor.from_jsonl(args.from_jsonl)
    else:
        system = _observed_quickstart(
            users=args.users, queries=args.queries, seed=args.seed
        )
        auditor = PrivacyAuditor.from_log(system.obs.events)
    report = auditor.report()
    if report["totals"]["cloaks"] == 0:
        print("repro audit: error: no cloak events to audit", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        totals = report["totals"]
        print("privacy attainment audit")
        for key, value in totals.items():
            formatted = f"{value:.4g}" if isinstance(value, float) else str(value)
            print(f"  {key} = {formatted}")
        for profile, tally in report["profiles"].items():
            print(
                f"  profile {profile}: {tally['cloaks']} cloaks, "
                f"attainment {tally['attainment_rate']:.2%}, "
                f"undeclared violations {tally['undeclared_violations']}"
            )
        for kind, stats in report["queries"].items():
            extra = (
                f", mean overhead {stats['mean_overhead']:.2f}"
                if "mean_overhead" in stats
                else ""
            )
            print(
                f"  queries {kind}: {stats['count']}, "
                f"accuracy {stats['accuracy']:.2%}{extra}"
            )
    return 0 if not auditor.violations() else 2


def cmd_health(args: argparse.Namespace) -> int:
    """Evaluate SLO health over a traced workload; exit 4 on violation."""
    import json
    import time

    from repro.obs.export import render_dashboard
    from repro.obs.slo import DEFAULT_SLOS, SLOMonitor, load_slos

    if args.users < 1:
        raise SystemExit("repro health: error: --users must be at least 1")
    if args.queries < 1:
        raise SystemExit("repro health: error: --queries must be at least 1")
    if args.window < 1:
        raise SystemExit("repro health: error: --window must be at least 1")
    specs = load_slos(args.specs) if args.specs else DEFAULT_SLOS
    monitor = SLOMonitor(specs, window=args.window)
    system = _observed_quickstart(
        users=args.users, queries=args.queries, seed=args.seed
    )
    report = monitor.evaluate(system)
    if not args.watch:
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        return report.exit_code

    from repro import CountSpec, RangeSpec
    from repro.geometry import Rect

    ticks = 0
    while True:
        ticks += 1
        frame = (
            render_dashboard(system.telemetry()) + "\n\n" + report.render()
        )
        if sys.stdout.isatty():  # pragma: no cover - interactive only
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        else:
            print(frame)
            print(f"-- watch tick {ticks} --")
        sys.stdout.flush()
        if args.iterations and ticks >= args.iterations:
            break
        time.sleep(args.interval)
        # Keep the rolling window moving between frames.
        for i in range(5):
            user = (ticks * 5 + i) % args.users
            system.query(RangeSpec(flavor="private", user=user, radius=10.0))
            system.query(CountSpec(window=Rect(20, 20, 80, 80)))
        report = monitor.evaluate(system)
    return report.exit_code


def _drive_tick(system, tick: int, users: int) -> None:
    """A few queries + one movement step: keeps live dashboards moving."""
    from repro import CountSpec, RangeSpec
    from repro.geometry import Point, Rect

    for i in range(5):
        user = (tick * 5 + i) % users
        system.query(RangeSpec(flavor="private", user=user, radius=10.0))
        system.query(CountSpec(window=Rect(20, 20, 80, 80)))
    mover = tick % users
    location = system.users[mover].location
    system.apply_movement(
        {
            mover: Point(
                min(100.0, location.x + 1.0), min(100.0, location.y + 1.0)
            )
        }
    )


def cmd_serve_metrics(args: argparse.Namespace) -> int:
    """Expose live telemetry over HTTP (or run the scrape self-test)."""
    import json
    import time

    from repro.obs.serve import TelemetryEndpoint, smoke

    if args.users < 1:
        raise SystemExit("repro serve-metrics: error: --users must be at least 1")
    if args.interval <= 0:
        raise SystemExit("repro serve-metrics: error: --interval must be positive")
    system = _observed_quickstart(
        users=args.users, queries=args.queries, seed=args.seed
    )
    system.enable_monitoring(interval=args.interval)
    if args.smoke:
        result = smoke(system)
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0 if result["ok"] else 1
    endpoint = TelemetryEndpoint(system)
    host, port = endpoint.start(host=args.host, port=args.port)
    print(
        f"serving telemetry on http://{host}:{port}  "
        "(paths: /metrics /health /risk /timeseries)"
    )
    sys.stdout.flush()
    ticks = 0
    try:
        while True:
            ticks += 1
            _drive_tick(system, ticks, args.users)
            if args.iterations and ticks >= args.iterations:
                break
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        endpoint.shutdown()
    print(f"served {endpoint.requests_served} requests over {ticks} ticks")
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard: windowed rates, privacy risk, and SLO health."""
    import time

    from repro.obs.slo import SLOMonitor

    if args.users < 1:
        raise SystemExit("repro top: error: --users must be at least 1")
    if args.interval <= 0:
        raise SystemExit("repro top: error: --interval must be positive")
    system = _observed_quickstart(
        users=args.users, queries=args.queries, seed=args.seed
    )
    system.enable_monitoring(interval=args.interval)
    monitor = SLOMonitor()
    ticks = 0
    while True:
        ticks += 1
        _drive_tick(system, ticks, args.users)
        system.timeseries.sample()
        report = monitor.evaluate(system)
        frame = (
            system.timeseries.render()
            + "\n\n"
            + system.risk.render()
            + "\n\n"
            + report.render()
        )
        if sys.stdout.isatty():  # pragma: no cover - interactive only
            sys.stdout.write("\x1b[2J\x1b[H" + frame + "\n")
        else:
            print(frame)
            print(f"-- top tick {ticks} --")
        sys.stdout.flush()
        if args.iterations and ticks >= args.iterations:
            return report.exit_code
        time.sleep(args.interval)


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile hot spans over a traced workload (self-time flamegraph)."""
    import json

    from repro.obs import SpanProfiler, Telemetry

    if args.users < 1:
        raise SystemExit("repro profile: error: --users must be at least 1")
    if args.top < 1:
        raise SystemExit("repro profile: error: --top must be at least 1")
    if args.sample_every < 1:
        raise SystemExit(
            "repro profile: error: --sample-every must be at least 1"
        )
    telemetry = Telemetry()
    profiler = SpanProfiler(top=args.top, sample_every=args.sample_every)
    profiler.emit = telemetry.emit
    profiler.install(telemetry.tracer)
    try:
        _observed_quickstart(
            users=args.users,
            queries=args.queries,
            seed=args.seed,
            telemetry=telemetry,
        )
    finally:
        profiler.uninstall()
    if not profiler.spans_seen:
        print("repro profile: error: no spans recorded", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(profiler.report(args.top), indent=2, sort_keys=True))
    else:
        print(profiler.render(args.top))
    return 0


def cmd_bench_history(args: argparse.Namespace) -> int:
    """Ingest BENCH_*.json into the trajectory and flag regressions."""
    import json

    from repro.obs import benchhist

    if args.selftest:
        # Synthetic trajectory: steady throughput, then a 30 % drop — the
        # detector must flag it, or this exit code breaks the build.
        metric = "modes.batched.public_range.10000.queries_per_second"
        history = [
            {"source": "BENCH_selftest.json", "metrics": {metric: qps}}
            for qps in (1000.0, 1020.0, 980.0, 700.0)
        ]
        flags = benchhist.detect_regressions(history, gate=args.gate)
        if not flags:
            print(
                "repro bench-history: selftest FAILED: 30% drop not flagged",
                file=sys.stderr,
            )
            return 1
        print(
            f"repro bench-history: selftest ok "
            f"(flagged {flags[0]['change']:+.1%} on {metric})"
        )
        return 0

    summary = benchhist.run_bench_history(
        root=args.root, gate=args.gate, append=not args.dry_run
    )
    print(json.dumps(summary, indent=2, sort_keys=True))
    if not summary["ingested"] and summary["history_records"] == 0:
        print(
            "repro bench-history: error: no BENCH_*.json reports found",
            file=sys.stderr,
        )
        return 1
    return 0 if summary["ok"] else 3


def cmd_bench_batch(args: argparse.Namespace) -> int:
    """Time batched vs sequential execution and print a JSON report."""
    import json
    import random
    import time

    from repro.core.server import LocationServer
    from repro.engine import PublicNNQuery, PublicRangeQuery
    from repro.geometry.point import Point
    from repro.geometry.rect import Rect
    from repro.core.stores import PublicStore
    from repro.obs import Telemetry

    if args.objects < 1 or args.queries < 1:
        raise SystemExit("repro bench-batch: error: sizes must be positive")
    rng = random.Random(args.seed)
    server = LocationServer(telemetry=Telemetry(enabled=False))
    server.public = PublicStore.from_points(
        {
            i: Point(rng.uniform(0, 1000), rng.uniform(0, 1000))
            for i in range(args.objects)
        }
    )
    queries: list = []
    for _ in range(args.queries // 2):
        x, y = rng.uniform(0, 990), rng.uniform(0, 990)
        queries.append(PublicRangeQuery(Rect(x, y, x + 10, y + 10)))
        queries.append(PublicNNQuery(Point(x, y), k=8))

    report: dict = {
        "objects": args.objects,
        "queries": len(queries),
        "modes": {},
    }
    for mode, vectorize in (("batched", True), ("sequential", False)):
        start = time.perf_counter()
        server.execute_batch(queries, vectorize=vectorize)
        elapsed = time.perf_counter() - start
        report["modes"][mode] = {
            "seconds": elapsed,
            "queries_per_second": len(queries) / elapsed if elapsed else None,
        }
    batched = report["modes"]["batched"]["seconds"]
    sequential = report["modes"]["sequential"]["seconds"]
    report["speedup"] = sequential / batched if batched else None
    print(json.dumps(report, indent=2))
    return 0


def cmd_bench_cloak(args: argparse.Namespace) -> int:
    """Time bulk vs per-user population cloaking and print a JSON report."""
    import json
    import time

    import numpy as np

    from repro.cloaking.grid_cloak import GridCloaker
    from repro.core.profiles import PrivacyProfile
    from repro.core.system import PrivacySystem
    from repro.geometry.point import Point
    from repro.geometry.rect import Rect
    from repro.mobility.users import MobileUser
    from repro.obs import Telemetry

    if args.users < 1:
        raise SystemExit("repro bench-cloak: error: --users must be positive")
    world = Rect(0.0, 0.0, 1000.0, 1000.0)
    # One seeded draw shared by both modes: identical workloads by
    # construction, not by parallel re-seeding.
    rng = np.random.default_rng(args.seed)
    xs = rng.uniform(0.0, 1000.0, args.users)
    ys = rng.uniform(0.0, 1000.0, args.users)
    ks = rng.integers(1, 33, args.users)
    areas = rng.choice(np.array([0.0, 25.0, 100.0]), args.users)

    def build() -> PrivacySystem:
        system = PrivacySystem(
            bounds=world,
            cloaker=GridCloaker(world, cols=64, rows=64),
            telemetry=Telemetry(enabled=False),
        )
        for i in range(args.users):
            system.add_user(
                MobileUser(
                    f"u{i}",
                    Point(float(xs[i]), float(ys[i])),
                    PrivacyProfile.always(
                        k=int(ks[i]), min_area=float(areas[i])
                    ),
                )
            )
        return system

    report: dict = {"users": args.users, "algo": "grid", "modes": {}}
    for mode, bulk in (("bulk", True), ("per_user", False)):
        system = build()
        system.publish_all(bulk=bulk)  # steady state: time the republish
        start = time.perf_counter()
        system.publish_all(bulk=bulk)
        elapsed = time.perf_counter() - start
        report["modes"][mode] = {
            "seconds": elapsed,
            "users_per_second": args.users / elapsed if elapsed else None,
        }
    bulk_s = report["modes"]["bulk"]["seconds"]
    per_user_s = report["modes"]["per_user"]["seconds"]
    report["speedup"] = per_user_s / bulk_s if bulk_s else None
    print(json.dumps(report, indent=2))
    return 0


def cmd_checkpoint(args: argparse.Namespace) -> int:
    """Run a durable workload: WAL-attached, checkpointed mid-stream.

    Leaves a recoverable durability directory behind (``wal.jsonl``,
    ``wal-meta.json``, one checkpoint) and prints a JSON summary, so
    ``python -m repro recover --dir <dir>`` can be demonstrated (and
    smoke-tested in CI) against real artifacts.
    """
    import json as _json
    import os

    from repro import (
        MobileUser,
        NNSpec,
        PrivacyProfile,
        PrivacySystem,
        PyramidCloaker,
        RangeSpec,
    )
    from repro.geometry import Point, Rect
    from repro.obs import Telemetry
    from repro.persist import list_checkpoints

    import numpy as np

    if args.users < 2:
        raise SystemExit("repro checkpoint: error: --users must be at least 2")
    rng = np.random.default_rng(args.seed)
    bounds = Rect(0, 0, 100, 100)
    system = PrivacySystem(
        bounds, PyramidCloaker(bounds, height=6), telemetry=Telemetry()
    )
    system.attach_wal(args.dir)
    for j in range(30):
        x, y = rng.uniform(0, 100, 2)
        system.add_poi(f"poi-{j}", Point(float(x), float(y)))
    for i in range(args.users):
        x, y = rng.uniform(0, 100, 2)
        system.add_user(
            MobileUser(i, Point(float(x), float(y)), PrivacyProfile.always(k=8))
        )
    system.publish_all()
    path = system.checkpoint(args.dir)
    # Tail operations past the checkpoint: recovery replays exactly these.
    moves = {
        i: Point(
            float(min(100.0, system.users[i].location.x + rng.uniform(0, 2))),
            float(min(100.0, system.users[i].location.y + rng.uniform(0, 2))),
        )
        for i in range(min(args.users, 50))
    }
    system.apply_movement(moves)
    for i in range(args.queries):
        system.query(RangeSpec(flavor="private", user=i % args.users, radius=10.0))
        system.query(NNSpec(flavor="private", user=(i * 7) % args.users))
    summary = {
        "dir": args.dir,
        "checkpoint": os.path.basename(path),
        "checkpoints": [p.name for p in list_checkpoints(args.dir)],
        "wal_seq": system.obs.events._seq,
        "users": len(system.users),
        "private_regions": len(system.server.private),
        "queries_served": system.server.queries_served,
    }
    system.obs.events.detach_jsonl()
    print(_json.dumps(summary, indent=2))
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    """Recover a PrivacySystem from a durability directory (exit 5 on failure)."""
    import json as _json

    from repro.persist import Recovery, RecoveryError, system_digest

    recovery = Recovery(args.dir, allow_gaps=args.allow_gaps)
    try:
        system = recovery.recover()
    except RecoveryError as exc:
        print(f"repro recover: error: {exc}", file=sys.stderr)
        return 5
    report = dict(recovery.report)
    report["users"] = len(system.users)
    report["registered"] = len(system.anonymizer._registrations)
    report["private_regions"] = len(system.server.private)
    report["queries_served"] = system.server.queries_served
    if args.verify:
        digest = system_digest(system)
        report["digest_keys"] = sorted(digest)
        report["store_versions"] = digest["store_versions"]
        report["audit"] = recovery.audit_report().get("totals", {})
    if args.json:
        print(_json.dumps(report, indent=2))
    else:
        checkpoint = report["checkpoint"] or "(cold start from WAL alone)"
        print(f"recovered from {args.dir}")
        print(f"  checkpoint     : {checkpoint}")
        print(
            f"  wal tail       : {report['replayed']} events replayed, "
            f"{report['skipped']} skipped, final seq {report['final_seq']}"
        )
        print(
            f"  state          : {report['users']} users, "
            f"{report['private_regions']} cloaked regions, "
            f"{report['queries_served']} queries served"
        )
        for name in report.get("unreadable_checkpoints", []):
            print(f"  skipped corrupt: {name}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    for table in _run_ids(args.ids):
        print(table.to_text())
        print()
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    tables = _run_ids(["all"])
    markdown = "\n\n".join(t.to_markdown() for t in tables)
    if args.output == "-":
        print(markdown)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(markdown + "\n")
        print(f"wrote {len(tables)} tables to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privacy-aware location-based database server (Mokbel, ICDE 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a compact end-to-end demo")
    demo.set_defaults(func=cmd_demo)

    experiments = sub.add_parser(
        "experiments", help="run experiments and print their tables"
    )
    experiments.add_argument(
        "ids", nargs="*", default=["all"], help="experiment ids (E1..E14) or 'all'"
    )
    experiments.set_defaults(func=cmd_experiments)

    report = sub.add_parser("report", help="write every table as markdown")
    report.add_argument("-o", "--output", default="-", help="file or '-' for stdout")
    report.set_defaults(func=cmd_report)

    obs = sub.add_parser(
        "obs", help="run a traced workload and print its telemetry snapshot"
    )
    fmt = obs.add_mutually_exclusive_group()
    fmt.add_argument(
        "--json", action="store_true", help="emit the snapshot as JSON"
    )
    fmt.add_argument(
        "--prometheus",
        action="store_true",
        help="emit the snapshot in Prometheus text exposition format",
    )
    fmt.add_argument(
        "--jsonl",
        action="store_true",
        help="emit the structured event log as JSONL (one event per line)",
    )
    obs.add_argument("--users", type=int, default=200, help="workload size")
    obs.add_argument("--queries", type=int, default=25, help="queries per kind")
    obs.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    obs.set_defaults(func=cmd_obs)

    explain = sub.add_parser(
        "explain",
        help="EXPLAIN a query path: executed plan tree with index work",
    )
    explain.add_argument(
        "-q",
        "--query",
        choices=EXPLAIN_QUERIES,
        default="figure6a",
        help="query path to explain (default: the paper's Figure 6a count)",
    )
    explain.add_argument(
        "--json", action="store_true", help="emit the plan as JSON"
    )
    explain.add_argument("--users", type=int, default=200, help="workload size")
    explain.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    explain.set_defaults(func=cmd_explain)

    plan = sub.add_parser(
        "plan",
        help="print the cost-based planner's backend/route decision table",
    )
    plan.add_argument(
        "--json", action="store_true", help="emit stats + decisions as JSON"
    )
    plan.add_argument(
        "--batch",
        type=int,
        default=1,
        help="plan for this batch size (amortises one-off costs)",
    )
    plan.add_argument("--users", type=int, default=200, help="workload size")
    plan.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    plan.set_defaults(func=cmd_plan)

    audit = sub.add_parser(
        "audit", help="privacy-attainment audit report over the event log"
    )
    audit.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    audit.add_argument(
        "--from-jsonl",
        default=None,
        metavar="PATH",
        help="audit an existing JSONL event trail instead of a fresh workload",
    )
    audit.add_argument("--users", type=int, default=200, help="workload size")
    audit.add_argument("--queries", type=int, default=25, help="queries per kind")
    audit.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    audit.set_defaults(func=cmd_audit)

    health = sub.add_parser(
        "health",
        help="evaluate SLO health over a traced workload (exit 4 on violation)",
    )
    health.add_argument(
        "--json", action="store_true", help="emit the health report as JSON"
    )
    health.add_argument(
        "--watch",
        action="store_true",
        help="dashboard + health frames in a loop instead of one report",
    )
    health.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between --watch frames (default 2)",
    )
    health.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop --watch after N frames (0 = run until interrupted)",
    )
    health.add_argument(
        "--specs",
        default=None,
        metavar="PATH",
        help="JSON list of SLO specs to evaluate instead of the defaults",
    )
    health.add_argument(
        "--window",
        type=int,
        default=512,
        help="rolling event window for event-derived SLOs (default 512)",
    )
    health.add_argument("--users", type=int, default=200, help="workload size")
    health.add_argument("--queries", type=int, default=25, help="queries per kind")
    health.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    health.set_defaults(func=cmd_health)

    serve = sub.add_parser(
        "serve-metrics",
        help="serve /metrics /health /risk /timeseries over HTTP",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default 0 = OS-assigned ephemeral port)",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="start on an ephemeral port, scrape every path, validate, exit",
    )
    serve.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="time-series sampling window in seconds (default 1)",
    )
    serve.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop the workload loop after N ticks (0 = run until interrupted)",
    )
    serve.add_argument("--users", type=int, default=200, help="workload size")
    serve.add_argument("--queries", type=int, default=25, help="queries per kind")
    serve.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    serve.set_defaults(func=cmd_serve_metrics)

    top = sub.add_parser(
        "top",
        help="live dashboard: windowed telemetry, privacy risk, SLO health",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between frames (and per sampling window; default 1)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after N frames (0 = run until interrupted)",
    )
    top.add_argument("--users", type=int, default=200, help="workload size")
    top.add_argument("--queries", type=int, default=25, help="queries per kind")
    top.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    top.set_defaults(func=cmd_top)

    profile = sub.add_parser(
        "profile",
        help="hot-span self-time profile of a traced workload",
    )
    profile.add_argument(
        "--json",
        action="store_true",
        help="emit rows + flamegraph tree as JSON",
    )
    profile.add_argument(
        "--top", type=int, default=15, help="rows in the report (default 15)"
    )
    profile.add_argument(
        "--sample-every",
        type=int,
        default=1,
        help="aggregate every N-th span only (default 1 = all)",
    )
    profile.add_argument("--users", type=int, default=200, help="workload size")
    profile.add_argument("--queries", type=int, default=25, help="queries per kind")
    profile.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    profile.set_defaults(func=cmd_profile)

    bench_history = sub.add_parser(
        "bench-history",
        help="ingest BENCH_*.json into BENCH_HISTORY.jsonl and flag regressions",
    )
    bench_history.add_argument(
        "--root", default=".", help="directory holding the BENCH_*.json reports"
    )
    bench_history.add_argument(
        "--gate",
        type=float,
        default=0.25,
        help="relative move beyond which a metric is flagged (default 0.25)",
    )
    bench_history.add_argument(
        "--dry-run",
        action="store_true",
        help="check without appending to the history file",
    )
    bench_history.add_argument(
        "--selftest",
        action="store_true",
        help="verify the detector flags a synthetic 30%% throughput drop",
    )
    bench_history.set_defaults(func=cmd_bench_history)

    bench = sub.add_parser(
        "bench-batch",
        help="time batched vs sequential query execution (JSON report)",
    )
    bench.add_argument("--objects", type=int, default=20000, help="public objects")
    bench.add_argument("--queries", type=int, default=2000, help="queries in the batch")
    bench.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    bench.set_defaults(func=cmd_bench_batch)

    bench_cloak = sub.add_parser(
        "bench-cloak",
        help="time bulk vs per-user population cloaking (JSON report)",
    )
    bench_cloak.add_argument(
        "--users", type=int, default=10000, help="population size"
    )
    bench_cloak.add_argument(
        "--seed", type=int, default=0, help="workload RNG seed"
    )
    bench_cloak.set_defaults(func=cmd_bench_cloak)

    checkpoint = sub.add_parser(
        "checkpoint",
        help="run a WAL-attached workload and write a recoverable checkpoint",
    )
    checkpoint.add_argument(
        "--dir", required=True, help="durability directory (WAL + checkpoints)"
    )
    checkpoint.add_argument("--users", type=int, default=200, help="workload size")
    checkpoint.add_argument(
        "--queries", type=int, default=25, help="post-checkpoint queries per kind"
    )
    checkpoint.add_argument("--seed", type=int, default=0, help="workload RNG seed")
    checkpoint.set_defaults(func=cmd_checkpoint)

    recover = sub.add_parser(
        "recover",
        help="rebuild a system from checkpoint + WAL tail (exit 5 on failure)",
    )
    recover.add_argument(
        "--dir", required=True, help="durability directory (WAL + checkpoints)"
    )
    recover.add_argument(
        "--json", action="store_true", help="emit the recovery report as JSON"
    )
    recover.add_argument(
        "--verify",
        action="store_true",
        help="include the state digest summary and WAL audit totals",
    )
    recover.add_argument(
        "--allow-gaps",
        action="store_true",
        help="best-effort recovery across declared WAL truncations",
    )
    recover.set_defaults(func=cmd_recover)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
