"""CliqueCloak-style personalised k-anonymity (Gedik & Liu, ICDCS 2005).

This is the algorithm behind the paper's Figure 3b citation [17] in its
full form: requests are *deferred and matched* rather than answered from a
snapshot.  Each request carries its own ``k`` and a tolerance box (how far
from her true position the user accepts the region to stretch).  Two
requests are *compatible* when each user lies inside the other's box; a
group is served when it forms a clique of compatible requests whose size
covers every member's personal ``k``.  All members then receive the *same*
region — the group MBR — which makes the scheme reciprocal by
construction, unlike snapshot kNN-MBR cloaking.

The clique search is the standard greedy heuristic (exact maximum clique
is NP-hard): grow from the triggering request through distance-ordered
compatible neighbours.

The price of the stronger guarantee is the same currency as temporal
cloaking: requests wait until enough compatible company shows up, and may
expire (``max_delay``) unserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.core.errors import RegistrationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class CliqueRequest:
    """One pending cloaking request.

    Attributes:
        user_id: requesting user.
        point: her exact location at request time.
        k: her personal anonymity requirement (group size floor).
        tolerance: half-side of the box around ``point`` the served
            region must stay inside (her personal A_max, expressed as a
            reach).
        requested_at: submission time.
    """

    user_id: Hashable
    point: Point
    k: int
    tolerance: float
    requested_at: float

    @property
    def box(self) -> Rect:
        return Rect.from_center(self.point, 2 * self.tolerance, 2 * self.tolerance)


@dataclass(frozen=True)
class GroupCloakResult:
    """One served clique: a shared region for all members.

    Attributes:
        members: user ids served together.
        region: the common cloaked region (the members' MBR).
        released_at: service time.
        max_delay_experienced: longest wait among the members.
    """

    members: tuple[Hashable, ...]
    region: Rect
    released_at: float
    max_delay_experienced: float

    @property
    def group_size(self) -> int:
        return len(self.members)


def _compatible(a: CliqueRequest, b: CliqueRequest) -> bool:
    """Mutual containment: each user inside the other's tolerance box."""
    return a.box.contains_point(b.point) and b.box.contains_point(a.point)


class CliqueCloak:
    """Deferred group cloaking with personalised k.

    Args:
        bounds: the universe rectangle.
        max_delay: requests pending longer than this are dropped on the
            next :meth:`tick` (``None`` waits forever).
    """

    def __init__(self, bounds: Rect, max_delay: float | None = None) -> None:
        if max_delay is not None and max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.bounds = bounds
        self.max_delay = max_delay
        self._pending: dict[Hashable, CliqueRequest] = {}
        self.served: list[GroupCloakResult] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    # Request lifecycle
    # ------------------------------------------------------------------

    def request(
        self,
        t: float,
        user_id: Hashable,
        point: Point,
        k: int,
        tolerance: float,
    ) -> GroupCloakResult | None:
        """Submit a request; served immediately if a clique already exists."""
        if user_id in self._pending:
            raise RegistrationError(f"user already has a pending request: {user_id!r}")
        if not self.bounds.contains_point(point):
            raise RegistrationError(f"{point} outside universe {self.bounds}")
        if k < 1:
            raise ValueError("k must be positive")
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        pending = CliqueRequest(user_id, point, k, tolerance, t)
        self._pending[user_id] = pending
        return self._try_serve(pending, t)

    def cancel(self, user_id: Hashable) -> None:
        """Withdraw a pending request (user moved on or went passive)."""
        if self._pending.pop(user_id, None) is None:
            raise RegistrationError(f"no pending request for {user_id!r}")

    def tick(self, t: float) -> list[GroupCloakResult]:
        """Retry pending requests and expire the hopeless ones."""
        results: list[GroupCloakResult] = []
        for user_id in list(self._pending):
            pending = self._pending.get(user_id)
            if pending is None:
                continue  # served as part of an earlier clique this tick
            served = self._try_serve(pending, t)
            if served is not None:
                results.append(served)
        if self.max_delay is not None:
            for user_id in list(self._pending):
                if t - self._pending[user_id].requested_at > self.max_delay:
                    del self._pending[user_id]
                    self.dropped += 1
        return results

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _try_serve(self, seed: CliqueRequest, t: float) -> GroupCloakResult | None:
        """Greedy clique growth from ``seed``; serve when k-covered."""
        neighbours = [
            other
            for other in self._pending.values()
            if other.user_id != seed.user_id and _compatible(seed, other)
        ]
        neighbours.sort(key=lambda r: (seed.point.distance_to(r.point), str(r.user_id)))
        clique = [seed]
        needed = seed.k
        for candidate in neighbours:
            if len(clique) >= needed:
                break
            if all(_compatible(candidate, member) for member in clique):
                clique.append(candidate)
                needed = max(needed, candidate.k)
        if len(clique) < needed:
            return None
        region = Rect.from_points(r.point for r in clique).clipped(self.bounds)
        result = GroupCloakResult(
            members=tuple(r.user_id for r in clique),
            region=region,
            released_at=t,
            max_delay_experienced=max(t - r.requested_at for r in clique),
        )
        for member in clique:
            del self._pending[member.user_id]
        self.served.append(result)
        return result
