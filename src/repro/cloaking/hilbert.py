"""Hilbert-curve k-partition cloaking (extension).

The paper's future-work direction asks for cloaking that is both scalable
and resistant to reverse engineering.  This extension (the "Hilbert Cloak"
family, later formalised by Kalnis et al., TKDE 2007) sorts all users along
a Hilbert space-filling curve and partitions the sorted sequence into
consecutive buckets of k users.  The cloaked region of a user is the MBR of
her bucket.

Because every user in a bucket maps to the *same* region, the scheme is
*reciprocal*: the adversary's posterior over "who issued this region" is
uniform over at least k users even with full knowledge of the algorithm and
all user locations.  The attack experiments use it as the strong baseline
that data-dependent schemes are measured against.
"""

from __future__ import annotations

from typing import Hashable

from repro.cloaking.base import Cloaker, UserId
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect


def hilbert_d(order: int, x: int, y: int) -> int:
    """Distance along the order-``order`` Hilbert curve of cell ``(x, y)``.

    Classic bit-twiddling conversion (Wikipedia's ``xy2d``); the curve
    traverses a ``2^order x 2^order`` grid.
    """
    if order < 1:
        raise ValueError("order must be >= 1")
    side = 1 << order
    if not (0 <= x < side and 0 <= y < side):
        raise ValueError(f"cell ({x}, {y}) outside order-{order} curve")
    rx = ry = 0
    d = 0
    s = side // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate the quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s //= 2
    return d


class HilbertCloaker(Cloaker):
    """Reciprocal cloaker: consecutive-k buckets along a Hilbert curve.

    The sorted order is rebuilt lazily after location changes; a cloak
    request is then a binary-search-free bucket lookup over the cached
    order (rank // k arithmetic).

    Args:
        bounds: the universe rectangle.
        order: Hilbert curve order; the curve resolves ``2^order`` cells
            per side.  Users in the same curve cell tie-break by id hash so
            bucketing stays deterministic.
    """

    name = "hilbert"
    data_dependent = False

    def __init__(self, bounds: Rect, order: int = 10) -> None:
        super().__init__(bounds)
        if order < 1:
            raise ValueError("order must be >= 1")
        self._order = order
        self._sorted: list[UserId] | None = None
        self._rank: dict[UserId, int] | None = None

    def curve_index(self, point: Point) -> int:
        """Hilbert index of the curve cell containing ``point``."""
        side = 1 << self._order
        x = min(int((point.x - self.bounds.min_x) / self.bounds.width * side), side - 1)
        y = min(int((point.y - self.bounds.min_y) / self.bounds.height * side), side - 1)
        return hilbert_d(self._order, x, y)

    def _cloak(self, user_id: UserId, point: Point, requirement: PrivacyRequirement) -> Rect:
        members = self.bucket_of(user_id, requirement.k)
        mbr = Rect.from_points(self.location_of(m) for m in members)
        # A_min enforcement preserves reciprocity because it depends only on
        # the bucket, never on the requesting user.
        if mbr.area < requirement.min_area:
            grown = mbr.scaled_to_area(requirement.min_area, bounds=self.bounds)
            mbr = grown.union_mbr(mbr)
        return mbr

    def bucket_of(self, user_id: UserId, k: int) -> list[UserId]:
        """The ids sharing ``user_id``'s k-bucket (reciprocity witnesses).

        The sorted user sequence is chopped into ``n // k`` buckets; the
        last bucket absorbs the remainder, so every bucket holds at least
        ``k`` users and every member of a bucket maps to the same bucket —
        the reciprocity property.
        """
        order, ranks = self._sorted_users()
        n = len(order)
        if n < k:
            return list(order)
        rank = ranks[user_id]
        n_buckets = n // k
        bucket = min(rank // k, n_buckets - 1)
        start = bucket * k
        end = n if bucket == n_buckets - 1 else start + k
        return order[start:end]

    def partition_key(
        self, user_id: UserId, point: Point, requirement: PrivacyRequirement
    ) -> Hashable:
        # The shared unit is the k-bucket, not the curve cell: bucket
        # boundaries depend on ranks, so two users in one curve cell can
        # straddle a boundary.  The bucket's start rank identifies it.
        order, ranks = self._sorted_users()
        n = len(order)
        k = requirement.k
        if n < k:
            return 0
        return min(ranks[user_id] // k, n // k - 1)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _on_add(self, user_id: UserId, point: Point) -> None:
        self._sorted = None

    def _on_remove(self, user_id: UserId, point: Point) -> None:
        self._sorted = None

    def _on_move(self, user_id: UserId, old: Point, new: Point) -> None:
        self._sorted = None

    def _sorted_users(self) -> tuple[list[UserId], dict[UserId, int]]:
        if self._sorted is None:
            self._sorted = sorted(
                self._locations,
                key=lambda uid: (self.curve_index(self._locations[uid]), str(uid)),
            )
            self._rank = {uid: i for i, uid in enumerate(self._sorted)}
        return self._sorted, self._rank
