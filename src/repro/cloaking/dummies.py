"""The false-dummies baseline (related work, Section 2.1 category 1).

Kido et al.'s technique: instead of blurring, the user sends ``n``
locations per update — one true, ``n - 1`` dummies — so the server cannot
tell which is real.  The paper classifies it as a per-user technique that
does not scale and complicates query processing; this implementation
exists so experiment E14 can measure those claims against the cloaking
family on equal footing:

* privacy: the adversary's posterior over the ``n`` points (how plausible
  are the dummies really? naive uniform dummies are filtered by a simple
  reachability test once the user moves);
* cost: a private range query must now be answered around *every* dummy,
  multiplying server work and transmission by ~n.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from repro.core.errors import RegistrationError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.sampling import uniform_point


@dataclass(frozen=True)
class DummyReport:
    """One update: ``locations[true_index]`` is the real one.

    ``true_index`` is of course never transmitted; it is carried here so
    the evaluation harness can score adversaries.
    """

    user_id: Hashable
    locations: tuple[Point, ...]
    true_index: int

    @property
    def n(self) -> int:
        return len(self.locations)

    @property
    def true_location(self) -> Point:
        return self.locations[self.true_index]


class DummyGenerator:
    """Generates dummy sets, either independently or movement-consistent.

    Args:
        bounds: the universe rectangle.
        n_dummies: dummies per update (total points = ``n_dummies + 1``).
        rng: random generator.
        consistent: move previous dummies by a step comparable to the
            user's own movement (resists the reachability filter) instead
            of drawing fresh uniform dummies each update (the naive
            variant the filter destroys).
    """

    def __init__(
        self,
        bounds: Rect,
        n_dummies: int,
        rng: np.random.Generator,
        consistent: bool = False,
    ) -> None:
        if n_dummies < 1:
            raise ValueError("need at least one dummy")
        self.bounds = bounds
        self.n_dummies = n_dummies
        self.consistent = consistent
        self._rng = rng
        self._previous: dict[Hashable, DummyReport] = {}

    def report(self, user_id: Hashable, true_location: Point) -> DummyReport:
        """Build the next update for ``user_id``."""
        if not self.bounds.contains_point(true_location):
            raise RegistrationError(f"{true_location} outside {self.bounds}")
        previous = self._previous.get(user_id)
        if self.consistent and previous is not None:
            step = previous.true_location.distance_to(true_location)
            dummies = [
                self._step_point(p, step)
                for i, p in enumerate(previous.locations)
                if i != previous.true_index
            ]
        else:
            dummies = [
                uniform_point(self.bounds, self._rng) for _ in range(self.n_dummies)
            ]
        true_index = int(self._rng.integers(self.n_dummies + 1))
        locations = dummies[:true_index] + [true_location] + dummies[true_index:]
        report = DummyReport(
            user_id=user_id, locations=tuple(locations), true_index=true_index
        )
        self._previous[user_id] = report
        return report

    def _step_point(self, point: Point, step: float) -> Point:
        angle = float(self._rng.uniform(0.0, 2.0 * np.pi))
        moved = point.translated(step * np.cos(angle), step * np.sin(angle))
        return Point(
            min(max(moved.x, self.bounds.min_x), self.bounds.max_x),
            min(max(moved.y, self.bounds.min_y), self.bounds.max_y),
        )


def reachability_filter(
    reports: Sequence[DummyReport], max_speed: float, dt: float
) -> list[set[int]]:
    """The adversary's movement-consistency attack on a report stream.

    For each update, the plausible indices are those whose point is within
    ``max_speed * dt`` of some plausible point of the previous update.
    Fresh uniform dummies die quickly (a random pair of points is rarely
    reachable); consistent dummies survive.

    Returns one plausible-index set per report.  The attack is sound: the
    true index is always plausible (asserted by tests).
    """
    if not reports:
        return []
    reach = max_speed * dt
    plausible: list[set[int]] = [set(range(reports[0].n))]
    for prev, current in zip(reports, reports[1:]):
        prev_points = [prev.locations[i] for i in plausible[-1]]
        survivors = {
            i
            for i, p in enumerate(current.locations)
            if any(p.distance_to(q) <= reach + 1e-9 for q in prev_points)
        }
        if not survivors:  # model mismatch; reset soundly
            survivors = set(range(current.n))
        plausible.append(survivors)
    return plausible


def dummy_posterior_size(
    reports: Sequence[DummyReport], max_speed: float, dt: float
) -> float:
    """Mean plausible-set size after the reachability attack (>= 1)."""
    sets = reachability_filter(reports, max_speed, dt)
    if not sets:
        raise ValueError("no reports to analyse")
    return float(np.mean([len(s) for s in sets]))
