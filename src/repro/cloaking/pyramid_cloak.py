"""Multi-level grid (pyramid) cloaking.

Section 5.2 closes with: "Keeping fixed multi-level grids would be an
optimization for Figure 4b."  This module implements that optimisation —
the structure the follow-up Casper system adopted.  The pyramid maintains
occupancy counters at every grid level; a cloak request walks the user's
cell column and returns the finest cell satisfying the profile.

Two search directions are provided for ablation A3:

* ``bottom_up`` (default, Casper-style): start at the finest cell and climb
  until satisfied.  Cost is proportional to how far up the answer lies —
  cheap in dense areas.
* ``top_down``: start at the whole space and descend while the child cell
  containing the user still satisfies the profile — cheap when the answer
  is coarse (sparse areas / large k).

Both directions return the *same* region because occupancy and area are
monotone along the cell column; only the number of counter probes differs.

An optional Casper-style *neighbour merge* tries combining the failing cell
with one adjacent sibling (horizontally, then vertically) before climbing a
full level, trading a couple of extra probes for materially smaller regions.
"""

from __future__ import annotations

from typing import Hashable

from repro.cloaking.base import Cloaker, UserId
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.pyramid import PyramidGrid


class PyramidCloaker(Cloaker):
    """Bottom-up (or top-down) multi-level grid cloaker.

    Args:
        bounds: the universe rectangle.
        height: pyramid height; the finest level has ``2^height`` cells
            per side.
        bottom_up: search direction (ablation A3).
        neighbor_merge: try merging with one adjacent cell at the current
            level before climbing (Casper's optimisation).
    """

    name = "pyramid"
    data_dependent = False

    def __init__(
        self,
        bounds: Rect,
        height: int = 8,
        bottom_up: bool = True,
        neighbor_merge: bool = False,
    ) -> None:
        super().__init__(bounds)
        self._pyramid = PyramidGrid(bounds, height=height)
        self._bottom_up = bottom_up
        self._neighbor_merge = neighbor_merge

    @property
    def pyramid(self) -> PyramidGrid:
        """The backing pyramid index (read-only use)."""
        return self._pyramid

    def spatial_index(self) -> PyramidGrid:
        return self._pyramid

    def _on_add(self, user_id: UserId, point: Point) -> None:
        self._pyramid.insert_point(user_id, point)

    def _on_remove(self, user_id: UserId, point: Point) -> None:
        self._pyramid.delete(user_id)

    def count_in(self, region: Rect) -> int:
        # Pyramid counters answer this in O(cells touched); for regions that
        # are pyramid cells (every region this cloaker emits) it is O(1) per
        # level, which is what makes incremental revalidation cheap.
        return self._pyramid.count_in_window(region)

    def _cloak(self, user_id: UserId, point: Point, requirement: PrivacyRequirement) -> Rect:
        if self._bottom_up or self._neighbor_merge:
            # Neighbour merging scans levels finest-first by construction,
            # so it always uses the bottom-up walk.
            return self._cloak_bottom_up(point, requirement)
        return self._cloak_top_down(point, requirement)

    def _cloak_bottom_up(self, point: Point, requirement: PrivacyRequirement) -> Rect:
        pyramid = self._pyramid
        probes = 0
        for level in range(pyramid.height, -1, -1):
            col, row = pyramid.cell_at(level, point)
            probes += 1
            cell = pyramid.cell_rect(level, col, row)
            if self._satisfies(pyramid.cell_count(level, col, row), cell, requirement):
                self._note_probes(probes)
                return cell
            if self._neighbor_merge and level > 0:
                merged = self._try_neighbor_merge(level, col, row, requirement)
                probes += 2
                if merged is not None:
                    self._note_probes(probes)
                    return merged
        self._note_probes(probes)
        return pyramid.bounds

    def _cloak_top_down(self, point: Point, requirement: PrivacyRequirement) -> Rect:
        pyramid = self._pyramid
        chosen = pyramid.bounds
        probes = 0
        for level in range(0, pyramid.height + 1):
            col, row = pyramid.cell_at(level, point)
            probes += 1
            cell = pyramid.cell_rect(level, col, row)
            if self._satisfies(pyramid.cell_count(level, col, row), cell, requirement):
                chosen = cell
            else:
                break
        self._note_probes(probes)
        return chosen

    def partition_key(self, user_id: UserId, point: Point, requirement: PrivacyRequirement) -> Hashable:
        return self._pyramid.cell_at(self._pyramid.height, point)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _satisfies(count: int, cell: Rect, requirement: PrivacyRequirement) -> bool:
        return count >= requirement.k and cell.area >= requirement.min_area

    def _try_neighbor_merge(
        self, level: int, col: int, row: int, requirement: PrivacyRequirement
    ) -> Rect | None:
        """Merge the failing cell with its quad sibling (H then V)."""
        pyramid = self._pyramid
        own = pyramid.cell_count(level, col, row)
        # Horizontal sibling inside the same parent cell.
        sib_col = col + 1 if col % 2 == 0 else col - 1
        h_rect = pyramid.cell_rect(level, min(col, sib_col), row).union_mbr(
            pyramid.cell_rect(level, max(col, sib_col), row)
        )
        if (
            own + pyramid.cell_count(level, sib_col, row) >= requirement.k
            and h_rect.area >= requirement.min_area
        ):
            return h_rect
        sib_row = row + 1 if row % 2 == 0 else row - 1
        v_rect = pyramid.cell_rect(level, col, min(row, sib_row)).union_mbr(
            pyramid.cell_rect(level, col, max(row, sib_row))
        )
        if (
            own + pyramid.cell_count(level, col, sib_row) >= requirement.k
            and v_rect.area >= requirement.min_area
        ):
            return v_rect
        return None

    def _note_probes(self, probes: int) -> None:
        totals = self.stats.extra
        totals["probes"] = totals.get("probes", 0) + probes
