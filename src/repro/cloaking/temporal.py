"""Spatio-*temporal* cloaking (the Gruteser & Grunwald dimension).

The paper's related work (Section 2.1) credits spatio-temporal cloaking
[17, 18] with blurring location in *time* as well as space: instead of
growing the region until k users are inside *right now*, hold the report
back until k distinct users have been seen in the (small) region within a
recent time window.  The anonymity set becomes "everyone who passed
through", so dense-but-bursty places (a road, a mall entrance) can keep
tight regions at the price of report latency.

:class:`TemporalCloaker` implements that policy on top of any spatial
cloaker's population feed.  It is deliberately *not* a :class:`Cloaker`
subclass — its output is a (region, delay) pair released asynchronously,
a different contract — but it shares the population bookkeeping so the
two approaches are comparable on identical movement streams
(experiment E13).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Hashable

from repro.core.errors import CloakingError, RegistrationError
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class TemporalCloakResult:
    """A released (possibly delayed) report.

    Attributes:
        region: the spatial region reported to the server.
        requested_at: simulation time the user asked to report.
        released_at: time the anonymizer released it.
        visitor_count: distinct users seen in the region inside the window
            at release time (the temporal anonymity set size).
    """

    region: Rect
    requested_at: float
    released_at: float
    visitor_count: int

    @property
    def delay(self) -> float:
        """Report latency paid for the tighter region."""
        return self.released_at - self.requested_at


@dataclass(frozen=True)
class _PendingReport:
    user_id: Hashable
    region: Rect
    requested_at: float
    requirement: PrivacyRequirement


class TemporalCloaker:
    """Delay-based k-anonymity over fixed-size regions.

    Args:
        bounds: the universe rectangle.
        region_side: side of the (square) report region centred on the
            user at request time.  Small by design — the whole point is
            trading time for space.
        window: how far back a visit still counts toward the anonymity
            set (seconds).
        max_delay: reports unreleased after this long are *dropped*
            (never sent), matching the original algorithm's abort rule;
            ``None`` waits forever.
    """

    def __init__(
        self,
        bounds: Rect,
        region_side: float = 5.0,
        window: float = 60.0,
        max_delay: float | None = None,
    ) -> None:
        if region_side <= 0:
            raise ValueError("region_side must be positive")
        if window <= 0:
            raise ValueError("window must be positive")
        if max_delay is not None and max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.bounds = bounds
        self.region_side = region_side
        self.window = window
        self.max_delay = max_delay
        self._visits: Deque[tuple[float, Hashable, Point]] = deque()
        self._pending: list[_PendingReport] = []
        self._locations: dict[Hashable, Point] = {}
        self.released: list[TemporalCloakResult] = []
        self.dropped = 0

    # ------------------------------------------------------------------
    # Population feed
    # ------------------------------------------------------------------

    def observe(self, t: float, user_id: Hashable, point: Point) -> None:
        """Record a user's presence at ``point`` at time ``t``."""
        if not self.bounds.contains_point(point):
            raise RegistrationError(f"{point} outside universe {self.bounds}")
        if self._visits and t < self._visits[-1][0]:
            raise ValueError("observations must be time-ordered")
        self._visits.append((t, user_id, point))
        self._locations[user_id] = point
        self._expire(t)

    def observe_step(self, t: float, positions: dict[Hashable, Point]) -> None:
        """Record one mobility-model step."""
        for user_id in sorted(positions, key=repr):
            self.observe(t, user_id, positions[user_id])

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------

    def request(
        self, t: float, user_id: Hashable, requirement: PrivacyRequirement
    ) -> TemporalCloakResult | None:
        """A user asks to report; returns immediately if already k-covered.

        Otherwise the request is queued and released by a later
        :meth:`tick` once enough distinct users have crossed the region.
        """
        point = self._locations.get(user_id)
        if point is None:
            raise RegistrationError(f"unknown user: {user_id!r}")
        region = Rect.from_center(point, self.region_side, self.region_side)
        region = region.shifted_into(self.bounds)
        pending = _PendingReport(user_id, region, t, requirement)
        released = self._try_release(pending, t)
        if released is not None:
            self.released.append(released)
            return released
        self._pending.append(pending)
        return None

    def tick(self, t: float) -> list[TemporalCloakResult]:
        """Advance time: release satisfied reports, drop expired ones."""
        self._expire(t)
        still_pending: list[_PendingReport] = []
        newly_released: list[TemporalCloakResult] = []
        for pending in self._pending:
            released = self._try_release(pending, t)
            if released is not None:
                newly_released.append(released)
            elif (
                self.max_delay is not None
                and t - pending.requested_at > self.max_delay
            ):
                self.dropped += 1
            else:
                still_pending.append(pending)
        self._pending = still_pending
        self.released.extend(newly_released)
        return newly_released

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def visitors_in(self, region: Rect) -> set[Hashable]:
        """Distinct users seen inside ``region`` within the window."""
        return {
            user_id
            for _, user_id, point in self._visits
            if region.contains_point(point)
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _try_release(
        self, pending: _PendingReport, t: float
    ) -> TemporalCloakResult | None:
        visitors = self.visitors_in(pending.region)
        if len(visitors) >= pending.requirement.k:
            return TemporalCloakResult(
                region=pending.region,
                requested_at=pending.requested_at,
                released_at=t,
                visitor_count=len(visitors),
            )
        return None

    def _expire(self, t: float) -> None:
        cutoff = t - self.window
        while self._visits and self._visits[0][0] < cutoff:
            self._visits.popleft()
