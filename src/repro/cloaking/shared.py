"""Shared batch execution of cloak requests (Section 5.3, technique 2).

"Since both the server and the anonymizer do similar functionalities for
different users, many of the required procedures can be shared among
different users."  For space-dependent algorithms, two users falling in the
same space partition with the same requirement receive the *same* cloaked
region, so the region needs computing only once per (partition, requirement)
pair.  :func:`cloak_batch` exploits this through the algorithm's
:meth:`~repro.cloaking.base.Cloaker.partition_key` hook; data-dependent
algorithms report no key and silently fall back to per-user execution,
which is exactly the scalability gap the paper attributes to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.cloaking.base import Cloaker, CloakResult, UserId
from repro.core.profiles import PrivacyRequirement
from repro.obs.events import CLOAK_BATCH


@dataclass(frozen=True, slots=True)
class CloakRequest:
    """One pending cloak request in a batch."""

    user_id: UserId
    requirement: PrivacyRequirement


@dataclass
class BatchOutcome:
    """Results plus sharing statistics for one batch."""

    results: dict[UserId, CloakResult] = field(default_factory=dict)
    computed: int = 0
    shared: int = 0

    @property
    def sharing_ratio(self) -> float:
        """Fraction of requests served from a shared computation."""
        total = self.computed + self.shared
        return self.shared / total if total else 0.0


def cloak_batch(
    cloaker: Cloaker,
    requests: Sequence[CloakRequest],
    emit: Callable[..., object] | None = None,
) -> BatchOutcome:
    """Cloak a batch of requests, sharing work across same-partition users.

    The user count recorded on a shared result is re-measured per region
    (cheap) rather than per user, so shared results are exact copies of the
    computed one.

    Args:
        emit: optional structured-event hook (signature of
            :meth:`repro.obs.events.EventLog.emit`); when given, one
            ``cloak.batch`` round summary is emitted per call.

    Note: sharing is only sound while the population does not change inside
    the batch; callers must not interleave location updates with a batch.
    """
    outcome = BatchOutcome()
    cache: dict[tuple[Hashable, PrivacyRequirement], CloakResult] = {}
    for request in requests:
        point = cloaker.location_of(request.user_id)
        key = cloaker.partition_key(request.user_id, point, request.requirement)
        if key is None:
            outcome.results[request.user_id] = cloaker.cloak(
                request.user_id, request.requirement
            )
            outcome.computed += 1
            continue
        cache_key = (key, request.requirement)
        cached = cache.get(cache_key)
        if cached is None:
            cached = cloaker.cloak(request.user_id, request.requirement)
            cache[cache_key] = cached
            outcome.computed += 1
        else:
            outcome.shared += 1
        outcome.results[request.user_id] = cached
    if emit is not None:
        emit(
            CLOAK_BATCH,
            algo=cloaker.name,
            requests=len(requests),
            computed=outcome.computed,
            shared=outcome.shared,
            sharing_ratio=outcome.sharing_ratio,
        )
    return outcome


def cloak_all(cloaker: Cloaker, requirement: PrivacyRequirement) -> BatchOutcome:
    """Cloak every registered user under one shared requirement."""
    requests = [CloakRequest(uid, requirement) for uid in cloaker.users()]
    return cloak_batch(cloaker, requests)
