"""Naive data-dependent cloaking (Figure 3a).

The region is a square *centred on the user* — clipped to the universe —
expanded equally in all directions until the privacy profile is satisfied.
The paper includes this algorithm as a cautionary tale: it can satisfy k,
A_min and A_max, yet an adversary immediately recovers the exact location
as the centre of the region.  It is implemented faithfully — including the
flaw — because the attack experiments (E2, E10) need it as the broken
baseline.  (Near the universe edge the clipping off-centres the region
slightly; the centre attack degrades only there.)
"""

from __future__ import annotations

import math

from repro.cloaking.base import Cloaker, UserId
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class NaiveCloaker(Cloaker):
    """Centred-square expansion cloaker.

    All searches are binary searches on the square's half-side against the
    vectorised population count / clipped area, both of which are monotone
    in the half-side.  The area window uses the *clipped* area, so A_min
    stays satisfied even for users in the universe's corners (as long as it
    fits in the universe at all).

    Args:
        bounds: the universe rectangle.
        precision: relative tolerance of the binary searches.
    """

    name = "naive"
    data_dependent = True

    def __init__(self, bounds: Rect, precision: float = 1e-6) -> None:
        super().__init__(bounds)
        if precision <= 0:
            raise ValueError("precision must be positive")
        self._precision = precision

    def _cloak(self, user_id: UserId, point: Point, requirement: PrivacyRequirement) -> Rect:
        k_half = self._smallest_k_half_side(point, requirement.k)
        half = k_half
        if requirement.min_area > 0:
            half = max(half, self._half_side_for_area(point, requirement.min_area))
        if requirement.max_area is not None:
            # Shrink toward A_max, but never below the square that carries
            # the k guarantee (k wins over A_max).
            cap = self._half_side_for_area(point, requirement.max_area, at_most=True)
            half = min(half, max(cap, k_half))
        return self._region(point, half)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _region(self, point: Point, half: float) -> Rect:
        """The centred square of the given half-side, clipped to bounds."""
        return Rect.from_center(point, 2 * half, 2 * half).clipped(self.bounds)

    def _max_half_side(self, point: Point) -> float:
        """The half-side at which the clipped square covers the universe."""
        return max(
            point.x - self.bounds.min_x,
            self.bounds.max_x - point.x,
            point.y - self.bounds.min_y,
            self.bounds.max_y - point.y,
        )

    def _smallest_k_half_side(self, point: Point, k: int) -> float:
        """Smallest half-side whose centred square holds >= k users.

        Counting the unclipped square equals counting the clipped one
        because every user lies inside the universe.
        """
        hi = self._max_half_side(point)
        lo = 0.0
        while hi - lo > self._precision * max(hi, 1.0):
            mid = (lo + hi) / 2.0
            if self.count_in(self._region(point, mid)) >= k:
                hi = mid
            else:
                lo = mid
        return hi

    def _half_side_for_area(
        self, point: Point, target_area: float, at_most: bool = False
    ) -> float:
        """Half-side whose *clipped* square area meets ``target_area``.

        With ``at_most=False``: the smallest half-side with area >= target
        (the whole universe if the target exceeds the universe area).
        With ``at_most=True``: the largest half-side with area <= target.
        Clipped area is continuous and non-decreasing in the half-side, so
        both are binary searches.
        """
        hi = self._max_half_side(point)
        if self._region(point, hi).area <= target_area:
            return hi
        lo = 0.0
        while hi - lo > self._precision * max(hi, 1.0):
            mid = (lo + hi) / 2.0
            if self._region(point, mid).area >= target_area:
                hi = mid
            else:
                lo = mid
        return lo if at_most else hi
