"""Incremental cloak evaluation (Section 5.3, technique 1).

"Computing a cloaked region at time t should benefit from the computation
of the cloaked region of the same user at time t-1."  This wrapper caches
the last region per user and, on the next request, *revalidates* it instead
of recomputing: the cached region is reused when

* the user is still inside it,
* the requirement has not changed,
* it still contains at least k users (the population moved too), and
* its area still fits the requirement's window.

Revalidation is one vectorised count — far cheaper than a full cloak for
every data-dependent algorithm and still cheaper than a pyramid walk.  The
trade-off (ablation A4): a long-lived region slowly drifts away from the
*smallest* satisfying region, inflating candidate sets downstream, so the
wrapper supports a ``max_reuses`` freshness bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloaking.base import Cloaker, CloakResult, UserId
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass
class _CacheEntry:
    region: Rect
    requirement: PrivacyRequirement
    reuses: int = 0


class IncrementalCloaker:
    """Caching wrapper around any :class:`Cloaker`.

    Exposes the same population-maintenance and cloak interface; location
    updates are forwarded to the inner cloaker untouched (its indexes stay
    current), only the per-user region cache is layered on top.

    Args:
        inner: the wrapped cloaking algorithm.
        max_reuses: regions are recomputed after this many consecutive
            reuses regardless of validity (``None`` = unbounded).
    """

    def __init__(self, inner: Cloaker, max_reuses: int | None = None) -> None:
        if max_reuses is not None and max_reuses < 0:
            raise ValueError("max_reuses must be non-negative")
        self.inner = inner
        self._max_reuses = max_reuses
        self._cache: dict[UserId, _CacheEntry] = {}

    @property
    def name(self) -> str:
        return f"incremental({self.inner.name})"

    @property
    def bounds(self) -> Rect:
        return self.inner.bounds

    @property
    def stats(self):
        return self.inner.stats

    # ------------------------------------------------------------------
    # Population maintenance (forwarded)
    # ------------------------------------------------------------------

    def add_user(self, user_id: UserId, point: Point) -> None:
        self.inner.add_user(user_id, point)

    def remove_user(self, user_id: UserId) -> None:
        self.inner.remove_user(user_id)
        self._cache.pop(user_id, None)

    def move_user(self, user_id: UserId, point: Point) -> None:
        self.inner.move_user(user_id, point)

    def location_of(self, user_id: UserId) -> Point:
        return self.inner.location_of(user_id)

    def user_count(self) -> int:
        return self.inner.user_count()

    def users(self):
        return self.inner.users()

    def count_in(self, region: Rect) -> int:
        return self.inner.count_in(region)

    def spatial_index(self):
        return self.inner.spatial_index()

    def snapshot_arrays(self):
        return self.inner.snapshot_arrays()

    def partition_key(self, user_id: UserId, point: Point, requirement: PrivacyRequirement):
        """Forward the sharing key so batch execution composes with caching.

        Sharing a cached region with a same-partition user is sound: the
        cached region was revalidated to hold >= k users and contains the
        whole partition cell, hence the other user too.
        """
        return self.inner.partition_key(user_id, point, requirement)

    def invalidate(self, user_id: UserId | None = None) -> None:
        """Drop the cached region for one user (or all users)."""
        if user_id is None:
            self._cache.clear()
        else:
            self._cache.pop(user_id, None)

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------

    def cloak(self, user_id: UserId, requirement: PrivacyRequirement) -> CloakResult:
        point = self.inner.location_of(user_id)
        entry = self._cache.get(user_id)
        if entry is not None and self._still_valid(entry, point, requirement):
            entry.reuses += 1
            self.inner.stats.reuses += 1
            return CloakResult(
                region=entry.region,
                user_count=self.inner.count_in(entry.region),
                requirement=requirement,
                reused=True,
            )
        result = self.inner.cloak(user_id, requirement)
        self._cache[user_id] = _CacheEntry(result.region, requirement)
        return result

    def _still_valid(
        self, entry: _CacheEntry, point: Point, requirement: PrivacyRequirement
    ) -> bool:
        if entry.requirement != requirement:
            return False
        if self._max_reuses is not None and entry.reuses >= self._max_reuses:
            return False
        if not entry.region.contains_point(point):
            return False
        if not requirement.area_satisfied(entry.region.area):
            # Area never changes after construction, but the requirement
            # equality check above makes this reachable only when the
            # original cloak was itself best-effort; recompute then.
            return False
        return self.inner.count_in(entry.region) >= requirement.k
