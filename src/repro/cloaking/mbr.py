"""k-nearest-neighbour MBR cloaking (Figure 3b).

The cloaked region is the minimum bounding rectangle of the user and her
``k - 1`` nearest neighbours — the smarter data-dependent technique the
paper attributes to Gedik & Liu's CliqueCloak line of work.  There is no
direct centre-of-region give-away, but the paper points out the residual
leakage: an MBR of k points has at least one point on each edge, so for
small k an adversary bets on the boundary.  The boundary attack in
:mod:`repro.attacks` exploits exactly this.
"""

from __future__ import annotations

import numpy as np

from repro.cloaking.base import Cloaker, UserId, enforce_area_window
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class MBRCloaker(Cloaker):
    """MBR-of-k-nearest-neighbours cloaker.

    Args:
        bounds: the universe rectangle.
        pad_fraction: optional symmetric padding applied to the raw MBR,
            expressed as a fraction of its width/height.  Zero reproduces
            the textbook algorithm; a small pad is a cheap (incomplete)
            mitigation of the boundary leakage used in ablation studies.
    """

    name = "mbr"
    data_dependent = True

    def __init__(self, bounds: Rect, pad_fraction: float = 0.0) -> None:
        super().__init__(bounds)
        if pad_fraction < 0:
            raise ValueError("pad_fraction must be non-negative")
        self._pad = pad_fraction

    def _cloak(self, user_id: UserId, point: Point, requirement: PrivacyRequirement) -> Rect:
        group = self.k_nearest_points(point, requirement.k)
        mbr = Rect.from_points(group)
        if self._pad > 0:
            mbr = mbr.expanded(self._pad * max(mbr.width, mbr.height, 1e-12))
        return enforce_area_window(mbr, requirement, self.bounds, min_region=mbr)

    def k_nearest_points(self, point: Point, k: int) -> list[Point]:
        """The ``k`` registered locations closest to ``point`` (inclusive).

        ``point`` itself is one of the registered locations, so the group
        always contains the requesting user.
        """
        xs, ys = self._arrays()
        d2 = (xs - point.x) ** 2 + (ys - point.y) ** 2
        if k >= len(d2):
            idx = np.arange(len(d2))
        else:
            idx = np.argpartition(d2, k - 1)[:k]
        group = [Point(float(xs[i]), float(ys[i])) for i in idx]
        if not any(p.x == point.x and p.y == point.y for p in group):
            # Squared distances can underflow to an exact tie (denormal
            # coordinates), letting argpartition pick a neighbour over the
            # user herself; swap the farthest pick for her actual point.
            farthest = max(range(len(group)), key=lambda j: d2[idx[j]])
            group[farthest] = point
        return group
