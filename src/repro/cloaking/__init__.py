"""Location cloaking algorithms (Section 5 of the paper).

Data-dependent (Figure 3): :class:`NaiveCloaker`, :class:`MBRCloaker`.
Space-dependent (Figure 4): :class:`QuadtreeCloaker`, :class:`GridCloaker`,
:class:`PyramidCloaker`; plus the reciprocal :class:`HilbertCloaker`
extension.  Scalability wrappers (Section 5.3): :class:`IncrementalCloaker`
and :func:`cloak_batch` shared execution.
"""

from repro.cloaking.base import CloakResult, Cloaker, CloakerStats, UserId, enforce_area_window
from repro.cloaking.clique import CliqueCloak, CliqueRequest, GroupCloakResult
from repro.cloaking.dummies import (
    DummyGenerator,
    DummyReport,
    dummy_posterior_size,
    reachability_filter,
)
from repro.cloaking.grid_cloak import GridCloaker
from repro.cloaking.hilbert import HilbertCloaker, hilbert_d
from repro.cloaking.incremental import IncrementalCloaker
from repro.cloaking.mbr import MBRCloaker
from repro.cloaking.naive import NaiveCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.cloaking.quadtree_cloak import QuadtreeCloaker
from repro.cloaking.shared import BatchOutcome, CloakRequest, cloak_all, cloak_batch
from repro.cloaking.temporal import TemporalCloaker, TemporalCloakResult

ALL_CLOAKERS = (
    NaiveCloaker,
    MBRCloaker,
    QuadtreeCloaker,
    GridCloaker,
    PyramidCloaker,
    HilbertCloaker,
)

__all__ = [
    "Cloaker",
    "CloakResult",
    "CloakerStats",
    "UserId",
    "enforce_area_window",
    "NaiveCloaker",
    "MBRCloaker",
    "QuadtreeCloaker",
    "GridCloaker",
    "PyramidCloaker",
    "HilbertCloaker",
    "hilbert_d",
    "IncrementalCloaker",
    "CloakRequest",
    "BatchOutcome",
    "cloak_batch",
    "cloak_all",
    "TemporalCloaker",
    "TemporalCloakResult",
    "CliqueCloak",
    "CliqueRequest",
    "GroupCloakResult",
    "DummyGenerator",
    "DummyReport",
    "reachability_filter",
    "dummy_posterior_size",
    "ALL_CLOAKERS",
]
