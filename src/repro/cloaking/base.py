"""Cloaking algorithm interface (Section 5 of the paper).

A *cloaker* is the algorithmic core of the Location Anonymizer: it tracks
the current exact locations of all subscribed users and, on request, blurs
one user's point location into a cloaked spatial region satisfying her
:class:`~repro.core.profiles.PrivacyRequirement`.

The paper's three requirements for the cloaked region map to this module as
follows:

1. *k-anonymity + area window* — every :class:`CloakResult` records the
   achieved user count and area so callers (and tests) can check
   satisfaction; the anonymizer is explicitly best-effort for
   contradictory profiles.
2. *No reverse engineering* — not enforced here; the
   :mod:`repro.attacks` package quantifies each algorithm's leakage.
3. *Computational efficiency* — algorithms keep incremental state
   (indexes, counters) updated on every location change so a cloak request
   never scans the full population unless the algorithm is inherently
   data-dependent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, Iterator

import numpy as np

from repro.core.errors import CloakingError, RegistrationError
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect

UserId = Hashable


@dataclass(frozen=True, slots=True)
class CloakResult:
    """The outcome of cloaking one user's location.

    Attributes:
        region: the cloaked spatial region sent to the database server.
        user_count: number of subscribed users inside ``region`` (the
            requesting user included) at cloak time.
        requirement: the requirement the region was built for.
        reused: True when an incremental wrapper returned a cached region
            instead of recomputing (Section 5.3).
    """

    region: Rect
    user_count: int
    requirement: PrivacyRequirement
    reused: bool = False

    @property
    def k_satisfied(self) -> bool:
        """Does the region contain at least the required k users?"""
        return self.user_count >= self.requirement.k

    @property
    def area_satisfied(self) -> bool:
        """Does the region's area fall inside [A_min, A_max]?"""
        return self.requirement.area_satisfied(self.region.area)

    @property
    def fully_satisfied(self) -> bool:
        return self.k_satisfied and self.area_satisfied

    @property
    def area(self) -> float:
        return self.region.area


@dataclass
class CloakerStats:
    """Bookkeeping counters exposed by every cloaker (for E4)."""

    cloaks: int = 0
    updates: int = 0
    reuses: int = 0
    extra: dict = field(default_factory=dict)


class Cloaker(ABC):
    """Base class: user location bookkeeping + the cloak entry point.

    Subclasses implement :meth:`_cloak` and may override the location
    mutation hooks to maintain private index structures.
    """

    #: Short algorithm name used in experiment tables.
    name: str = "abstract"
    #: Whether the algorithm derives regions from user data (Figure 3)
    #: or from a space partitioning (Figure 4).
    data_dependent: bool = True

    def __init__(self, bounds: Rect) -> None:
        if bounds.is_degenerate:
            raise ValueError("universe bounds must have positive area")
        self.bounds = bounds
        self._locations: dict[UserId, Point] = {}
        self.stats = CloakerStats()
        self._xs: np.ndarray | None = None
        self._ys: np.ndarray | None = None
        self._ids: list[UserId] = []

    # ------------------------------------------------------------------
    # Population maintenance
    # ------------------------------------------------------------------

    def add_user(self, user_id: UserId, point: Point) -> None:
        """Register a user at ``point``."""
        if user_id in self._locations:
            raise RegistrationError(f"user already registered: {user_id!r}")
        if not self.bounds.contains_point(point):
            raise RegistrationError(f"{point} outside universe {self.bounds}")
        self._locations[user_id] = point
        self._invalidate_arrays()
        self._on_add(user_id, point)
        self.stats.updates += 1

    def remove_user(self, user_id: UserId) -> None:
        """Unregister a user."""
        point = self._locations.pop(user_id, None)
        if point is None:
            raise RegistrationError(f"unknown user: {user_id!r}")
        self._invalidate_arrays()
        self._on_remove(user_id, point)
        self.stats.updates += 1

    def move_user(self, user_id: UserId, point: Point) -> None:
        """Update a registered user's exact location."""
        old = self._locations.get(user_id)
        if old is None:
            raise RegistrationError(f"unknown user: {user_id!r}")
        if not self.bounds.contains_point(point):
            raise RegistrationError(f"{point} outside universe {self.bounds}")
        self._locations[user_id] = point
        self._invalidate_arrays()
        self._on_move(user_id, old, point)
        self.stats.updates += 1

    def location_of(self, user_id: UserId) -> Point:
        """The user's current exact location."""
        try:
            return self._locations[user_id]
        except KeyError:
            raise RegistrationError(f"unknown user: {user_id!r}") from None

    def user_count(self) -> int:
        return len(self._locations)

    def users(self) -> Iterator[UserId]:
        return iter(self._locations)

    def count_in(self, region: Rect) -> int:
        """Number of registered users inside ``region`` (vectorised)."""
        if not self._locations:
            return 0
        xs, ys = self._arrays()
        inside = (
            (xs >= region.min_x)
            & (xs <= region.max_x)
            & (ys >= region.min_y)
            & (ys <= region.max_y)
        )
        return int(np.count_nonzero(inside))

    def snapshot_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Read-only coordinate arrays of all registered users.

        The public accessor for callers (metrics, experiments) that need
        vectorised geometry over the population — the returned views are
        non-writeable so the cloaker's internal cache stays consistent.
        """
        xs, ys = self._arrays()
        xs_view = xs.view()
        ys_view = ys.view()
        xs_view.flags.writeable = False
        ys_view.flags.writeable = False
        return xs_view, ys_view

    def snapshot_ids(self) -> list[UserId]:
        """User ids aligned row-for-row with :meth:`snapshot_arrays`.

        The bulk cloaking kernels (:mod:`repro.engine.cloak`) use this to
        map requested users onto population-array rows.
        """
        self._arrays()
        return list(self._ids)

    def spatial_index(self):
        """The internal spatial index, when the algorithm keeps one.

        Space-dependent cloakers override this so the observability layer
        can report anonymizer-side index work next to the server stores'
        (``PrivacySystem.telemetry()["indexes"]``).  Returns ``None`` for
        purely array-based algorithms.
        """
        return None

    def users_in(self, region: Rect) -> list[UserId]:
        """Ids of registered users inside ``region``."""
        if not self._locations:
            return []
        xs, ys = self._arrays()
        inside = (
            (xs >= region.min_x)
            & (xs <= region.max_x)
            & (ys >= region.min_y)
            & (ys <= region.max_y)
        )
        return [self._ids[i] for i in np.nonzero(inside)[0]]

    # ------------------------------------------------------------------
    # Cloaking
    # ------------------------------------------------------------------

    def cloak(self, user_id: UserId, requirement: PrivacyRequirement) -> CloakResult:
        """Blur ``user_id``'s current location per ``requirement``.

        Best effort (Section 5): the result always contains the user and is
        always clipped to the universe; k / area satisfaction is recorded on
        the result rather than raised, except that a requirement larger than
        the whole population cannot be met at all and raises
        :class:`CloakingError`.
        """
        point = self.location_of(user_id)
        if requirement.k > len(self._locations):
            raise CloakingError(
                f"k={requirement.k} exceeds subscribed population "
                f"{len(self._locations)}"
            )
        region = self._cloak(user_id, point, requirement)
        region = region.clipped(self.bounds)
        if not region.contains_point(point):  # pragma: no cover - invariant
            raise CloakingError(f"algorithm {self.name} lost its own user")
        self.stats.cloaks += 1
        return CloakResult(
            region=region,
            user_count=self.count_in(region),
            requirement=requirement,
        )

    @abstractmethod
    def _cloak(self, user_id: UserId, point: Point, requirement: PrivacyRequirement) -> Rect:
        """Produce the (unclipped) cloaked region for ``point``."""

    def partition_key(
        self, user_id: UserId, point: Point, requirement: PrivacyRequirement
    ) -> Hashable | None:
        """Sharing key for shared batch execution (Section 5.3).

        Space-dependent algorithms return a key identifying the partition
        the user falls in: two users with the same key and requirement get
        the same region, so the computation can be shared.  Data-dependent
        algorithms return ``None`` (no sharing possible).
        """
        return None

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def _on_add(self, user_id: UserId, point: Point) -> None:
        """Hook: a user appeared at ``point``."""

    def _on_remove(self, user_id: UserId, point: Point) -> None:
        """Hook: the user previously at ``point`` left."""

    def _on_move(self, user_id: UserId, old: Point, new: Point) -> None:
        """Hook: a user moved; default is remove + add."""
        self._on_remove(user_id, old)
        self._on_add(user_id, new)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _invalidate_arrays(self) -> None:
        self._xs = None
        self._ys = None

    def _arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Lazily rebuilt coordinate arrays for vectorised counting."""
        if self._xs is None:
            self._ids = list(self._locations)
            self._xs = np.fromiter(
                (self._locations[i].x for i in self._ids), dtype=float, count=len(self._ids)
            )
            self._ys = np.fromiter(
                (self._locations[i].y for i in self._ids), dtype=float, count=len(self._ids)
            )
        return self._xs, self._ys


def enforce_area_window(
    region: Rect,
    requirement: PrivacyRequirement,
    bounds: Rect,
    min_region: Rect | None = None,
) -> Rect:
    """Best-effort A_min / A_max adjustment shared by data-dependent cloakers.

    Grows ``region`` symmetrically to reach A_min and shrinks it toward
    A_max, but never shrinks below ``min_region`` (the rectangle that
    carries the k-anonymity guarantee).  The k requirement wins over A_max,
    matching the paper's priority order where requirement 1 (k users) is
    "the minimum requirement that any location anonymizer should provide".
    """
    result = region
    if result.area < requirement.min_area:
        result = result.scaled_to_area(requirement.min_area, bounds=bounds)
        if min_region is not None:
            result = result.union_mbr(min_region)
    if requirement.max_area is not None and result.area > requirement.max_area:
        floor_area = min_region.area if min_region is not None else 0.0
        target = max(requirement.max_area, floor_area)
        shrunk = result.scaled_to_area(target, bounds=bounds)
        if min_region is None or shrunk.contains_rect(min_region):
            result = shrunk
    return result.clipped(bounds)
