"""Space-dependent quadtree cloaking (Figure 4a).

The anonymizer starts from the whole space and keeps descending into the
quadrant containing the user while that quadrant still satisfies the user's
requirements (k users, area >= A_min); the deepest satisfying quadrant is
the cloaked region.  Because quadrant boundaries are fixed by the space
partitioning — not by user locations — the region reveals nothing about
*where inside it* the user is (the paper's requirement 2).

Backed by a :class:`~repro.index.quadtree.QuadTree` with per-node counts,
one cloak request is a single O(depth) root-to-leaf walk.
"""

from __future__ import annotations

from typing import Hashable

from repro.cloaking.base import Cloaker, UserId
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.quadtree import QuadTree


class QuadtreeCloaker(Cloaker):
    """Top-down adaptive quadrant cloaker.

    Args:
        bounds: the universe rectangle.
        capacity: leaf capacity of the backing quadtree.  Smaller leaves
            give a finer partitioning and therefore tighter regions, at a
            higher maintenance cost per location update.
        max_depth: depth limit of the backing quadtree.
    """

    name = "quadtree"
    data_dependent = False

    def __init__(self, bounds: Rect, capacity: int = 4, max_depth: int = 16) -> None:
        super().__init__(bounds)
        self._tree = QuadTree(bounds, capacity=capacity, max_depth=max_depth)

    def spatial_index(self) -> QuadTree:
        return self._tree

    def _on_add(self, user_id: UserId, point: Point) -> None:
        self._tree.insert_point(user_id, point)

    def _on_remove(self, user_id: UserId, point: Point) -> None:
        self._tree.delete(user_id)

    def count_in(self, region: Rect) -> int:
        # Subtree counters prune fully-contained nodes, so counting a
        # region that is itself a quadtree node costs O(depth).
        return self._tree.count_in_window(region)

    def _cloak(self, user_id: UserId, point: Point, requirement: PrivacyRequirement) -> Rect:
        chosen = self.bounds
        for rect, count in self._tree.node_path(point):
            if count >= requirement.k and rect.area >= requirement.min_area:
                chosen = rect
            else:
                break
        return chosen

    def partition_key(self, user_id: UserId, point: Point, requirement: PrivacyRequirement) -> Hashable:
        # Two users in the same quadtree leaf walk the same node path, so
        # the leaf rectangle identifies the shared computation.
        rect, _ = self._tree.node_path(point)[-1]
        return rect.as_tuple()
