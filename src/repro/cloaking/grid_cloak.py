"""Fixed-grid cloaking with neighbour merging (Figure 4b).

The space is partitioned into a fixed uniform grid.  The user's cell is the
starting region; while it fails the privacy profile the region grows by
annexing one full line of adjacent cells (left / right / below / above) at a
time.  The growth direction is chosen greedily: the candidate line bringing
the most users per unit of added area is annexed first, which keeps the
final region small in skewed populations.

Because cell boundaries are fixed, the region is independent of the exact
user position inside the starting cell — all users of one cell with the same
requirement receive the *same* region, which is what makes shared execution
(Section 5.3) and reciprocity-style guarantees possible.
"""

from __future__ import annotations

from typing import Hashable

from repro.cloaking.base import Cloaker, UserId
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex


class GridCloaker(Cloaker):
    """Uniform-grid cloaker with greedy block merging.

    Args:
        bounds: the universe rectangle.
        cols: grid columns (cells per side when ``rows`` is omitted).
        rows: grid rows; defaults to ``cols``.
    """

    name = "grid"
    data_dependent = False

    def __init__(self, bounds: Rect, cols: int = 32, rows: int | None = None) -> None:
        super().__init__(bounds)
        self._grid = GridIndex(bounds, cols=cols, rows=rows)

    def spatial_index(self) -> GridIndex:
        return self._grid

    def _on_add(self, user_id: UserId, point: Point) -> None:
        self._grid.insert_point(user_id, point)

    def _on_remove(self, user_id: UserId, point: Point) -> None:
        self._grid.delete(user_id)

    def _cloak(self, user_id: UserId, point: Point, requirement: PrivacyRequirement) -> Rect:
        grid = self._grid
        col, row = grid.cell_of(point)
        col_lo = col_hi = col
        row_lo = row_hi = row
        count = grid.cell_count(col, row)

        def block() -> Rect:
            return grid.block_rect(col_lo, row_lo, col_hi, row_hi)

        while count < requirement.k or block().area < requirement.min_area:
            best_gain = -1.0
            best = None
            # Candidate annexations: one full line of cells per direction.
            if col_lo > 0:
                added = grid.block_count(col_lo - 1, row_lo, col_lo - 1, row_hi)
                best_gain, best = _better(best_gain, best, added, "left")
            if col_hi < grid.cols - 1:
                added = grid.block_count(col_hi + 1, row_lo, col_hi + 1, row_hi)
                best_gain, best = _better(best_gain, best, added, "right")
            if row_lo > 0:
                added = grid.block_count(col_lo, row_lo - 1, col_hi, row_lo - 1)
                best_gain, best = _better(best_gain, best, added, "down")
            if row_hi < grid.rows - 1:
                added = grid.block_count(col_lo, row_hi + 1, col_hi, row_hi + 1)
                best_gain, best = _better(best_gain, best, added, "up")
            if best is None:
                break  # whole grid annexed; best effort
            if best == "left":
                col_lo -= 1
            elif best == "right":
                col_hi += 1
            elif best == "down":
                row_lo -= 1
            else:
                row_hi += 1
            count = grid.block_count(col_lo, row_lo, col_hi, row_hi)
        return block()

    def partition_key(self, user_id: UserId, point: Point, requirement: PrivacyRequirement) -> Hashable:
        return self._grid.cell_of(point)


def _better(best_gain: float, best: str | None, added: int, direction: str):
    """Keep the direction annexing the most users (first wins ties)."""
    if added > best_gain:
        return float(added), direction
    return best_gain, best
