"""Mobile users and their modes (Section 4 of the paper).

A user is in one of three modes:

* **passive** — shares nothing with anybody;
* **active** — continuously reports her exact location to the location
  anonymizer;
* **query** — additionally has at least one outstanding location-based
  query.

The paper's system only ever processes active/query users; passive users
exist in the simulation so population counts and anonymity pools reflect
reality (a passive user cannot lend you her anonymity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

from repro.core.profiles import PrivacyProfile
from repro.geometry.point import Point


class UserMode(enum.Enum):
    """The three participation modes of Section 4."""

    PASSIVE = "passive"
    ACTIVE = "active"
    QUERY = "query"

    @property
    def shares_location(self) -> bool:
        """Does this mode send location updates to the anonymizer?"""
        return self is not UserMode.PASSIVE


@dataclass
class MobileUser:
    """One simulated mobile user.

    Attributes:
        user_id: stable identity (known only to the anonymizer).
        location: current exact location.
        profile: the user's privacy profile.
        mode: participation mode.
        speed: movement speed in distance units per simulated second.
    """

    user_id: Hashable
    location: Point
    profile: PrivacyProfile = field(default_factory=PrivacyProfile)
    mode: UserMode = UserMode.ACTIVE
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.speed < 0:
            raise ValueError("speed must be non-negative")

    @property
    def is_visible(self) -> bool:
        """Does the anonymizer currently see this user?"""
        return self.mode.shares_location
