"""Synthetic mobile-user substrate: populations, movement models, traces."""

from repro.mobility.network import (
    NetworkMobilityModel,
    manhattan_network,
    random_geometric_network,
)
from repro.mobility.population import (
    ClusterSpec,
    clustered_population,
    hotspot_population,
    population_from_clusters,
    uniform_population,
)
from repro.mobility.random_waypoint import RandomWaypointModel
from repro.mobility.trace import Trace, TraceEvent, record_trace
from repro.mobility.users import MobileUser, UserMode

__all__ = [
    "MobileUser",
    "UserMode",
    "ClusterSpec",
    "uniform_population",
    "clustered_population",
    "hotspot_population",
    "population_from_clusters",
    "RandomWaypointModel",
    "NetworkMobilityModel",
    "manhattan_network",
    "random_geometric_network",
    "Trace",
    "TraceEvent",
    "record_trace",
]
