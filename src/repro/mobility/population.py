"""Synthetic population generators.

The paper has no released trace data (its examples speak of downtowns,
stadiums and rural roads), so the evaluation harness synthesises
populations with the density regimes those examples describe:

* ``uniform``  — the featureless baseline;
* ``clustered`` — Gaussian "city centres" with Zipf-distributed weights
  over a sparse background, producing the dense-downtown / empty-suburb
  contrast that A_min and A_max exist for;
* ``hotspot``  — one overwhelming cluster (the stadium example of
  Section 4).

All generators are deterministic given an ``np.random.Generator``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.sampling import gaussian_cluster, uniform_points, zipf_weights


@dataclass(frozen=True)
class ClusterSpec:
    """One population cluster: centre, spread, and share of the population."""

    center: Point
    sigma: float
    weight: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if self.weight < 0:
            raise ValueError("weight must be non-negative")


def uniform_population(bounds: Rect, n: int, rng: np.random.Generator) -> list[Point]:
    """``n`` users uniform over the universe."""
    return uniform_points(bounds, n, rng)


def clustered_population(
    bounds: Rect,
    n: int,
    rng: np.random.Generator,
    n_clusters: int = 8,
    sigma_fraction: float = 0.03,
    background_fraction: float = 0.2,
    zipf_skew: float = 0.8,
) -> list[Point]:
    """City-like population: Zipf-weighted Gaussian clusters + background.

    Args:
        bounds: the universe.
        n: total users.
        rng: random generator.
        n_clusters: number of Gaussian centres (drawn uniformly).
        sigma_fraction: cluster spread as a fraction of the universe width.
        background_fraction: share of users scattered uniformly.
        zipf_skew: skew of the cluster weights (0 = equal-size clusters).
    """
    if not 0.0 <= background_fraction <= 1.0:
        raise ValueError("background_fraction must be in [0, 1]")
    if n_clusters < 1:
        raise ValueError("n_clusters must be positive")
    centers = uniform_points(bounds, n_clusters, rng)
    weights = zipf_weights(n_clusters, zipf_skew)
    specs = [
        ClusterSpec(c, sigma_fraction * bounds.width, w)
        for c, w in zip(centers, weights)
    ]
    return population_from_clusters(bounds, n, rng, specs, background_fraction)


def hotspot_population(
    bounds: Rect,
    n: int,
    rng: np.random.Generator,
    hotspot_fraction: float = 0.7,
    sigma_fraction: float = 0.01,
) -> list[Point]:
    """The stadium scenario: most users packed into one tiny hotspot."""
    center = bounds.center
    spec = ClusterSpec(center, sigma_fraction * bounds.width, 1.0)
    return population_from_clusters(
        bounds, n, rng, [spec], background_fraction=1.0 - hotspot_fraction
    )


def population_from_clusters(
    bounds: Rect,
    n: int,
    rng: np.random.Generator,
    clusters: Sequence[ClusterSpec],
    background_fraction: float = 0.0,
) -> list[Point]:
    """Compose a population from explicit cluster specs plus background."""
    if n < 0:
        raise ValueError("population size must be non-negative")
    n_background = int(round(n * background_fraction))
    n_clustered = n - n_background
    points = uniform_points(bounds, n_background, rng)
    total_weight = sum(c.weight for c in clusters)
    if total_weight <= 0:
        raise ValueError("cluster weights must sum to a positive value")
    allocated = 0
    for i, spec in enumerate(clusters):
        if i == len(clusters) - 1:
            count = n_clustered - allocated
        else:
            count = int(round(n_clustered * spec.weight / total_weight))
        allocated += count
        points.extend(gaussian_cluster(spec.center, spec.sigma, count, rng, bounds))
    return points
