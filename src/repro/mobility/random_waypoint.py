"""The random waypoint mobility model.

The standard synthetic movement model of the mobile-systems literature:
each user picks a uniform destination, travels to it in a straight line at
her speed, optionally pauses, then repeats.  It exercises exactly what the
anonymizer's incremental machinery cares about — users drifting out of
their cached cloaked regions at population-dependent rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.sampling import uniform_point


@dataclass
class _WaypointState:
    position: Point
    target: Point
    speed: float
    pause_left: float = 0.0


class RandomWaypointModel:
    """Moves a set of users by the random waypoint process.

    Args:
        bounds: the universe users roam in.
        rng: random generator (owned by the model).
        speed_range: per-user speed drawn uniformly from this interval.
        pause_range: pause duration at each waypoint, drawn uniformly.
    """

    def __init__(
        self,
        bounds: Rect,
        rng: np.random.Generator,
        speed_range: tuple[float, float] = (0.5, 2.0),
        pause_range: tuple[float, float] = (0.0, 0.0),
    ) -> None:
        lo, hi = speed_range
        if lo < 0 or hi < lo:
            raise ValueError("speed_range must be 0 <= lo <= hi")
        p_lo, p_hi = pause_range
        if p_lo < 0 or p_hi < p_lo:
            raise ValueError("pause_range must be 0 <= lo <= hi")
        self.bounds = bounds
        self._rng = rng
        self._speed_range = speed_range
        self._pause_range = pause_range
        self._states: dict[Hashable, _WaypointState] = {}

    def add_user(self, user_id: Hashable, position: Point, speed: float | None = None) -> None:
        """Start tracking a user from ``position``."""
        if user_id in self._states:
            raise ValueError(f"duplicate user: {user_id!r}")
        if not self.bounds.contains_point(position):
            raise ValueError(f"{position} outside {self.bounds}")
        lo, hi = self._speed_range
        self._states[user_id] = _WaypointState(
            position=position,
            target=uniform_point(self.bounds, self._rng),
            speed=speed if speed is not None else float(self._rng.uniform(lo, hi)),
        )

    def add_users(self, positions: Iterable[tuple[Hashable, Point]]) -> None:
        for user_id, position in positions:
            self.add_user(user_id, position)

    def remove_user(self, user_id: Hashable) -> None:
        del self._states[user_id]

    def position_of(self, user_id: Hashable) -> Point:
        return self._states[user_id].position

    def __len__(self) -> int:
        return len(self._states)

    def step(self, dt: float) -> dict[Hashable, Point]:
        """Advance every user by ``dt`` seconds; returns the new positions.

        Users reaching their waypoint inside the step pause (if configured)
        and then head to a fresh uniform target.
        """
        if dt < 0:
            raise ValueError("dt must be non-negative")
        moved: dict[Hashable, Point] = {}
        p_lo, p_hi = self._pause_range
        for user_id, state in self._states.items():
            remaining = dt
            while remaining > 0:
                if state.pause_left > 0:
                    consumed = min(state.pause_left, remaining)
                    state.pause_left -= consumed
                    remaining -= consumed
                    continue
                distance_to_target = state.position.distance_to(state.target)
                reach = state.speed * remaining
                if reach < distance_to_target or distance_to_target == 0.0:
                    if distance_to_target > 0.0:
                        frac = reach / distance_to_target
                        state.position = Point(
                            state.position.x + frac * (state.target.x - state.position.x),
                            state.position.y + frac * (state.target.y - state.position.y),
                        )
                    remaining = 0.0
                else:
                    travel_time = distance_to_target / state.speed if state.speed > 0 else remaining
                    state.position = state.target
                    remaining -= travel_time
                    state.target = uniform_point(self.bounds, self._rng)
                    if p_hi > 0:
                        state.pause_left = float(self._rng.uniform(p_lo, p_hi))
            moved[user_id] = state.position
        return moved
