"""Road-network mobility over a networkx graph.

Location obfuscation work contemporaneous with the paper (Duckham & Kulik)
models space as a road graph; this model lets the reproduction exercise
cloaking under network-constrained movement, where users concentrate on
corridors instead of filling the plane.  Users travel along shortest paths
between random intersections of a synthetic Manhattan-style grid network
(or any caller-supplied graph with ``pos``-attributed nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import networkx as nx
import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def manhattan_network(bounds: Rect, blocks: int = 10) -> nx.Graph:
    """A ``blocks x blocks`` street grid spanning ``bounds``.

    Nodes carry a ``pos`` attribute (a :class:`Point`); edges carry their
    Euclidean ``length``.
    """
    if blocks < 1:
        raise ValueError("blocks must be positive")
    graph = nx.Graph()
    step_x = bounds.width / blocks
    step_y = bounds.height / blocks
    for i in range(blocks + 1):
        for j in range(blocks + 1):
            graph.add_node(
                (i, j), pos=Point(bounds.min_x + i * step_x, bounds.min_y + j * step_y)
            )
    for i in range(blocks + 1):
        for j in range(blocks + 1):
            if i < blocks:
                graph.add_edge((i, j), (i + 1, j), length=step_x)
            if j < blocks:
                graph.add_edge((i, j), (i, j + 1), length=step_y)
    return graph


def random_geometric_network(
    bounds: Rect, n_nodes: int, radius_fraction: float, rng: np.random.Generator
) -> nx.Graph:
    """A connected random geometric street network.

    Nodes are uniform in ``bounds``; nodes within ``radius_fraction *
    width`` are connected.  Disconnected leftovers are attached to their
    nearest covered node so every trip has a route.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    graph = nx.Graph()
    positions = [
        Point(
            float(rng.uniform(bounds.min_x, bounds.max_x)),
            float(rng.uniform(bounds.min_y, bounds.max_y)),
        )
        for _ in range(n_nodes)
    ]
    for i, pos in enumerate(positions):
        graph.add_node(i, pos=pos)
    radius = radius_fraction * bounds.width
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            d = positions[i].distance_to(positions[j])
            if d <= radius:
                graph.add_edge(i, j, length=d)
    components = [list(c) for c in nx.connected_components(graph)]
    main = max(components, key=len)
    main_set = set(main)
    for component in components:
        if component[0] in main_set:
            continue
        # Bridge the component to its nearest main-component node.
        best = min(
            ((a, b) for a in component for b in main),
            key=lambda ab: positions[ab[0]].distance_to(positions[ab[1]]),
        )
        graph.add_edge(*best, length=positions[best[0]].distance_to(positions[best[1]]))
        main_set.update(component)
        main.extend(component)
    return graph


@dataclass
class _TripState:
    path: list[Hashable]
    edge_index: int
    offset: float
    speed: float
    position: Point = field(init=False)

    def __post_init__(self) -> None:
        self.position = Point(0.0, 0.0)  # set by the model immediately


class NetworkMobilityModel:
    """Moves users along shortest paths of a street network.

    Args:
        graph: street graph with ``pos`` node attributes and ``length``
            edge attributes.
        rng: random generator.
        speed_range: per-trip speed interval.
    """

    def __init__(
        self,
        graph: nx.Graph,
        rng: np.random.Generator,
        speed_range: tuple[float, float] = (0.5, 2.0),
    ) -> None:
        if graph.number_of_nodes() < 2:
            raise ValueError("graph must have at least two nodes")
        if not nx.is_connected(graph):
            raise ValueError("street graph must be connected")
        self.graph = graph
        self._rng = rng
        self._speed_range = speed_range
        self._nodes = list(graph.nodes)
        self._trips: dict[Hashable, _TripState] = {}

    def position_of(self, user_id: Hashable) -> Point:
        return self._trips[user_id].position

    def node_position(self, node: Hashable) -> Point:
        return self.graph.nodes[node]["pos"]

    def add_user(self, user_id: Hashable, start_node: Hashable | None = None) -> Point:
        """Place a user at a (random) intersection; returns her position."""
        if user_id in self._trips:
            raise ValueError(f"duplicate user: {user_id!r}")
        if start_node is None:
            start_node = self._nodes[int(self._rng.integers(len(self._nodes)))]
        state = self._new_trip(start_node)
        self._trips[user_id] = state
        return state.position

    def remove_user(self, user_id: Hashable) -> None:
        del self._trips[user_id]

    def __len__(self) -> int:
        return len(self._trips)

    def step(self, dt: float) -> dict[Hashable, Point]:
        """Advance every user by ``dt``; returns the new positions."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        moved: dict[Hashable, Point] = {}
        for user_id, state in self._trips.items():
            remaining = state.speed * dt
            while remaining > 0:
                if state.edge_index >= len(state.path) - 1:
                    state = self._new_trip(state.path[-1], speed=state.speed)
                    self._trips[user_id] = state
                    continue
                a = state.path[state.edge_index]
                b = state.path[state.edge_index + 1]
                length = self.graph.edges[a, b]["length"]
                left_on_edge = length - state.offset
                if remaining < left_on_edge:
                    state.offset += remaining
                    remaining = 0.0
                else:
                    remaining -= left_on_edge
                    state.offset = 0.0
                    state.edge_index += 1
            state.position = self._interpolate(state)
            moved[user_id] = state.position
        return moved

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _new_trip(self, start: Hashable, speed: float | None = None) -> _TripState:
        target = start
        while target == start:
            target = self._nodes[int(self._rng.integers(len(self._nodes)))]
        path = nx.shortest_path(self.graph, start, target, weight="length")
        lo, hi = self._speed_range
        state = _TripState(
            path=path,
            edge_index=0,
            offset=0.0,
            speed=speed if speed is not None else float(self._rng.uniform(lo, hi)),
        )
        state.position = self._interpolate(state)
        return state

    def _interpolate(self, state: _TripState) -> Point:
        if state.edge_index >= len(state.path) - 1:
            return self.node_position(state.path[-1])
        a = self.node_position(state.path[state.edge_index])
        b = self.node_position(state.path[state.edge_index + 1])
        length = self.graph.edges[
            state.path[state.edge_index], state.path[state.edge_index + 1]
        ]["length"]
        frac = state.offset / length if length > 0 else 0.0
        return Point(a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y))
