"""Location trace recording and replay.

A trace is the bridge between mobility models and the anonymizer pipeline:
experiments record a trace once (deterministic given the seed) and replay
it against several cloaking algorithms so every algorithm sees *identical*
movement.  Traces also serialise to a simple text format so workloads can
be stored alongside benchmark results.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable, Iterable, Iterator

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One location report: user ``user_id`` was at ``location`` at ``t``."""

    t: float
    user_id: Hashable
    location: Point


class Trace:
    """An ordered sequence of location reports."""

    def __init__(self, events: Iterable[TraceEvent] = ()) -> None:
        self._events: list[TraceEvent] = list(events)
        for earlier, later in zip(self._events, self._events[1:]):
            if later.t < earlier.t:
                raise ValueError("trace events must be time-ordered")

    def append(self, event: TraceEvent) -> None:
        if self._events and event.t < self._events[-1].t:
            raise ValueError(
                f"out-of-order event at t={event.t} after t={self._events[-1].t}"
            )
        self._events.append(event)

    def record_step(self, t: float, positions: dict[Hashable, Point]) -> None:
        """Append one snapshot produced by a mobility model's ``step``."""
        for user_id in sorted(positions, key=repr):
            self.append(TraceEvent(t, user_id, positions[user_id]))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    @property
    def users(self) -> set[Hashable]:
        return {e.user_id for e in self._events}

    @property
    def duration(self) -> float:
        if not self._events:
            return 0.0
        return self._events[-1].t - self._events[0].t

    def replay(self, callback: Callable[[TraceEvent], None]) -> int:
        """Feed every event to ``callback`` in order; returns the count."""
        for event in self._events:
            callback(event)
        return len(self._events)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace as tab-separated ``t  user_id  x  y`` lines.

        User ids are serialised with ``repr`` and parsed back as strings;
        round-tripping therefore canonicalises ids to strings.
        """
        with open(path, "w", encoding="utf-8") as handle:
            for event in self._events:
                handle.write(
                    f"{event.t!r}\t{event.user_id}\t"
                    f"{event.location.x!r}\t{event.location.y!r}\n"
                )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        events = []
        with open(path, "r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.rstrip("\n")
                if not line:
                    continue
                parts = line.split("\t")
                if len(parts) != 4:
                    raise ValueError(f"{path}:{line_no}: expected 4 fields")
                t_text, user_id, x_text, y_text = parts
                events.append(
                    TraceEvent(float(t_text), user_id, Point(float(x_text), float(y_text)))
                )
        return cls(events)


def record_trace(
    model,
    n_steps: int,
    dt: float,
    initial_positions: dict[Hashable, Point] | None = None,
) -> Trace:
    """Run a mobility model for ``n_steps`` and capture every position.

    Works with any model exposing ``step(dt) -> dict[user, Point]``
    (both :class:`~repro.mobility.random_waypoint.RandomWaypointModel` and
    :class:`~repro.mobility.network.NetworkMobilityModel` qualify).
    """
    if n_steps < 0 or dt < 0:
        raise ValueError("n_steps and dt must be non-negative")
    trace = Trace()
    if initial_positions:
        trace.record_step(0.0, initial_positions)
    for step in range(1, n_steps + 1):
        trace.record_step(step * dt, model.step(dt))
    return trace
