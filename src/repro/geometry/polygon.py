"""Convex polygon clipping.

The exact candidate test of a private nearest-neighbour query (Figure 5b)
asks: *is there a point of the cloaked region R where object ``o`` beats
every other object?*  Equivalently, does ``o``'s Voronoi cell intersect R?
The cell restricted to R is the convex polygon obtained by clipping R with
the perpendicular-bisector half-planes of ``o`` against each competitor, so
the test reduces to Sutherland–Hodgman half-plane clipping.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Relative tolerance for the "empty polygon" decision.
_EPS = 1e-12


def clip_by_halfplane(
    vertices: Sequence[Point], a: float, b: float, c: float
) -> list[Point]:
    """Clip a convex polygon by the half-plane ``a*x + b*y <= c``.

    Args:
        vertices: polygon vertices in order (either orientation).
        a, b, c: half-plane coefficients.

    Returns:
        Vertices of the clipped polygon (possibly empty).
    """
    if not vertices:
        return []
    result: list[Point] = []
    n = len(vertices)
    for i in range(n):
        current = vertices[i]
        nxt = vertices[(i + 1) % n]
        cur_val = a * current.x + b * current.y - c
        nxt_val = a * nxt.x + b * nxt.y - c
        if cur_val <= _EPS:
            result.append(current)
        if (cur_val < -_EPS and nxt_val > _EPS) or (cur_val > _EPS and nxt_val < -_EPS):
            t = cur_val / (cur_val - nxt_val)
            result.append(
                Point(
                    current.x + t * (nxt.x - current.x),
                    current.y + t * (nxt.y - current.y),
                )
            )
    return result


def bisector_halfplane(o: Point, other: Point) -> tuple[float, float, float]:
    """Half-plane of points at least as close to ``o`` as to ``other``.

    Returns ``(a, b, c)`` with the half-plane ``a*x + b*y <= c``:
    ``dist(p, o) <= dist(p, other)`` expands to
    ``2*(other - o) . p <= |other|^2 - |o|^2``.
    """
    a = 2.0 * (other.x - o.x)
    b = 2.0 * (other.y - o.y)
    c = (other.x**2 + other.y**2) - (o.x**2 + o.y**2)
    return a, b, c


def voronoi_cell_intersects(
    o: Point, competitors: Sequence[Point], region: Rect
) -> bool:
    """Does ``o``'s Voronoi cell (w.r.t. ``competitors``) intersect ``region``?

    Exact up to floating-point tolerance.  Degenerate (zero-area) clip
    results still count as intersecting: a cell touching the region only
    along an edge means some region point is *tied* for nearest, which
    keeps ``o`` a legitimate candidate answer.
    """
    polygon: list[Point] = list(region.corners)
    for other in competitors:
        if other == o:
            continue
        a, b, c = bisector_halfplane(o, other)
        polygon = clip_by_halfplane(polygon, a, b, c)
        if not polygon:
            return False
    return True


def polygon_area(vertices: Sequence[Point]) -> float:
    """Unsigned area via the shoelace formula."""
    n = len(vertices)
    if n < 3:
        return 0.0
    twice = 0.0
    for i in range(n):
        j = (i + 1) % n
        twice += vertices[i].x * vertices[j].y - vertices[j].x * vertices[i].y
    return abs(twice) / 2.0


def voronoi_cell_clip(
    o: Point, competitors: Sequence[Point], region: Rect
) -> list[Point]:
    """The polygon ``VoronoiCell(o) ∩ region`` (empty list when disjoint).

    The polygon's area over ``region.area`` is the probability that ``o``
    is the true NN of a user uniformly distributed in ``region`` — the
    analytic counterpart of the Monte-Carlo estimate in
    :mod:`repro.queries.private_nn`.
    """
    polygon: list[Point] = list(region.corners)
    for other in competitors:
        if other == o:
            continue
        a, b, c = bisector_halfplane(o, other)
        polygon = clip_by_halfplane(polygon, a, b, c)
        if not polygon:
            return []
    return polygon
