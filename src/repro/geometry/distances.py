"""Distance primitives between points and rectangles.

These are the building blocks of the privacy-aware query processor
(Section 6 of the paper):

* ``min_dist`` / ``max_dist`` between a point and a rectangle drive the
  dominance pruning of public-NN-over-private-data queries (Figure 6b).
* ``min_dist_rects`` / ``max_dist_rects`` drive private-NN-over-public-data
  candidate filtering (Figure 5b) where the query itself is a cloaked
  rectangle.
* ``within_distance_of_rect`` is the *exact* membership test for the
  "rounded rectangle" candidate region of a private range query
  (Figure 5a); ``Rect.expanded`` is its MBR approximation.
"""

from __future__ import annotations

import math

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def _axis_gap(value: float, lo: float, hi: float) -> float:
    """Distance from ``value`` to the interval ``[lo, hi]`` (0 if inside)."""
    if value < lo:
        return lo - value
    if value > hi:
        return value - hi
    return 0.0


def min_dist(p: Point, r: Rect) -> float:
    """Smallest distance from ``p`` to any point of ``r`` (0 if inside)."""
    dx = _axis_gap(p.x, r.min_x, r.max_x)
    dy = _axis_gap(p.y, r.min_y, r.max_y)
    return math.hypot(dx, dy)


def max_dist(p: Point, r: Rect) -> float:
    """Largest distance from ``p`` to any point of ``r``.

    Attained at the corner of ``r`` farthest from ``p``.
    """
    dx = max(abs(p.x - r.min_x), abs(p.x - r.max_x))
    dy = max(abs(p.y - r.min_y), abs(p.y - r.max_y))
    return math.hypot(dx, dy)


def min_dist_rects(a: Rect, b: Rect) -> float:
    """Smallest distance between any point of ``a`` and any point of ``b``."""
    dx = _axis_gap_intervals(a.min_x, a.max_x, b.min_x, b.max_x)
    dy = _axis_gap_intervals(a.min_y, a.max_y, b.min_y, b.max_y)
    return math.hypot(dx, dy)


def max_dist_rects(a: Rect, b: Rect) -> float:
    """Largest distance between any point of ``a`` and any point of ``b``.

    Attained at a pair of opposite corners.
    """
    dx = max(abs(a.min_x - b.max_x), abs(a.max_x - b.min_x))
    dy = max(abs(a.min_y - b.max_y), abs(a.max_y - b.min_y))
    return math.hypot(dx, dy)


def min_max_dist_rect(a: Rect, b: Rect) -> float:
    """Upper bound on the NN distance from the worst-case point of ``a``.

    ``min_max_dist_rect(a, b)`` = max over points p in ``a`` of
    min over points q in ``b`` of dist(p, q), i.e. the distance from the
    point of ``a`` that is *farthest from the region* ``b`` to its closest
    point of ``b``.  For any point of ``a``, *some* point of ``b`` is within
    this distance.  It is the directed Hausdorff distance from ``a`` to
    ``b`` and gives a sound pruning radius for private NN queries: an
    object farther than ``min_max_dist_rect(query, object_region)`` from
    every point of the query region can never be required.

    For axis-aligned rectangles the maximising point of ``a`` is a corner.
    """
    return max(min_dist(corner, b) for corner in a.corners)


def _axis_gap_intervals(a_lo: float, a_hi: float, b_lo: float, b_hi: float) -> float:
    """Distance between the intervals ``[a_lo, a_hi]`` and ``[b_lo, b_hi]``."""
    if a_hi < b_lo:
        return b_lo - a_hi
    if b_hi < a_lo:
        return a_lo - b_hi
    return 0.0


def within_distance_of_rect(p: Point, r: Rect, distance: float) -> bool:
    """Exact test: is ``p`` within ``distance`` of some point of ``r``?

    The set of such points is the Minkowski sum of ``r`` with a disc — the
    paper's "rounded rectangle" of Figure 5a.  The MBR approximation
    (``r.expanded(distance)``) admits extra points near the four rounded
    corners; this predicate does not.
    """
    return min_dist(p, r) <= distance


def rounded_rect_area(r: Rect, distance: float) -> float:
    """Area of the Minkowski sum of ``r`` with a disc of radius ``distance``.

    area(r) + perimeter(r) * d + pi * d^2.  Used to quantify how much the
    MBR approximation over-covers the exact candidate region (ablation A1).
    """
    if distance < 0:
        raise ValueError("distance must be non-negative")
    return r.area + r.perimeter * distance + math.pi * distance * distance
