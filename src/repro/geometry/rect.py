"""Axis-aligned rectangles (minimum bounding rectangles).

Rectangles are the universal currency of the reproduction: cloaked spatial
regions, index node extents, query windows, and candidate regions are all
``Rect`` instances.  The paper approximates every non-rectangular region
(e.g. the rounded candidate region of Figure 5a) by its MBR; the exact
variants live in :mod:`repro.geometry.distances`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Degenerate rectangles (zero width and/or height) are legal: a point
    location is the degenerate rectangle of zero area, which is exactly how
    the server stores users whose profile requests no privacy (k = 1).
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"inverted rectangle: ({self.min_x}, {self.min_y}, "
                f"{self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "Rect":
        """Rectangle of the given dimensions centred on ``center``."""
        if width < 0 or height < 0:
            raise ValueError("width and height must be non-negative")
        return cls(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Rect":
        """Minimum bounding rectangle of a non-empty point collection."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("MBR of an empty point collection is undefined")
        min_x = max_x = first.x
        min_y = max_y = first.y
        for p in it:
            min_x = min(min_x, p.x)
            max_x = max(max_x, p.x)
            min_y = min(min_y, p.y)
            max_y = max(max_y, p.y)
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def from_point(cls, point: Point) -> "Rect":
        """The degenerate (zero-area) rectangle at ``point``."""
        return cls(point.x, point.y, point.x, point.y)

    @classmethod
    def bounding(cls, rects: Iterable["Rect"]) -> "Rect":
        """Minimum bounding rectangle of a non-empty rectangle collection."""
        it = iter(rects)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("MBR of an empty rectangle collection is undefined")
        min_x, min_y = first.min_x, first.min_y
        max_x, max_y = first.max_x, first.max_y
        for r in it:
            min_x = min(min_x, r.min_x)
            min_y = min(min_y, r.min_y)
            max_x = max(max_x, r.max_x)
            max_y = max(max_y, r.max_y)
        return cls(min_x, min_y, max_x, max_y)

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    @property
    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners, counter-clockwise from the lower-left."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )

    @property
    def is_degenerate(self) -> bool:
        """True when the rectangle has zero area."""
        return self.width == 0.0 or self.height == 0.0

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True when ``p`` lies inside or on the boundary."""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def contains_rect(self, other: "Rect") -> bool:
        """True when ``other`` lies entirely inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and other.max_x <= self.max_x
            and other.max_y <= self.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """True when the two closed rectangles share at least one point."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    def on_boundary(self, p: Point, tolerance: float = 0.0) -> bool:
        """True when ``p`` lies on (or within ``tolerance`` of) the boundary."""
        if not self.expanded(tolerance).contains_point(p):
            return False
        near_x = (
            abs(p.x - self.min_x) <= tolerance or abs(p.x - self.max_x) <= tolerance
        )
        near_y = (
            abs(p.y - self.min_y) <= tolerance or abs(p.y - self.max_y) <= tolerance
        )
        return near_x or near_y

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap rectangle, or ``None`` when disjoint."""
        min_x = max(self.min_x, other.min_x)
        min_y = max(self.min_y, other.min_y)
        max_x = min(self.max_x, other.max_x)
        max_y = min(self.max_y, other.max_y)
        if min_x > max_x or min_y > max_y:
            return None
        return Rect(min_x, min_y, max_x, max_y)

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap (0.0 when disjoint)."""
        w = min(self.max_x, other.max_x) - max(self.min_x, other.min_x)
        h = min(self.max_y, other.max_y) - max(self.min_y, other.min_y)
        if w <= 0.0 or h <= 0.0:
            return 0.0
        return w * h

    def union_mbr(self, other: "Rect") -> "Rect":
        """MBR of the two rectangles."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "Rect":
        """Minkowski expansion by ``margin`` on every side.

        This is the MBR approximation of the paper's "rounded rectangle"
        candidate region (Figure 5a).  Negative margins shrink the
        rectangle; shrinking past the centre collapses to the centre point
        rather than producing an inverted rectangle.
        """
        if margin >= 0:
            return Rect(
                self.min_x - margin,
                self.min_y - margin,
                self.max_x + margin,
                self.max_y + margin,
            )
        shrink_x = min(-margin, self.width / 2.0)
        shrink_y = min(-margin, self.height / 2.0)
        return Rect(
            self.min_x + shrink_x,
            self.min_y + shrink_y,
            self.max_x - shrink_x,
            self.max_y - shrink_y,
        )

    def clipped(self, bounds: "Rect") -> "Rect":
        """This rectangle clipped to ``bounds``.

        Raises:
            ValueError: when the rectangle lies entirely outside ``bounds``.
        """
        clipped = self.intersection(bounds)
        if clipped is None:
            raise ValueError(f"{self} lies entirely outside {bounds}")
        return clipped

    def translated(self, dx: float, dy: float) -> "Rect":
        """A new rectangle shifted by ``(dx, dy)``."""
        return Rect(self.min_x + dx, self.min_y + dy, self.max_x + dx, self.max_y + dy)

    def scaled_to_area(self, target_area: float, bounds: "Rect | None" = None) -> "Rect":
        """Grow or shrink symmetrically about the centre to ``target_area``.

        The aspect ratio is preserved for non-degenerate rectangles;
        degenerate rectangles grow into squares.  When ``bounds`` is given
        the result is shifted (not shrunk) to fit inside it if possible.
        Used by the anonymizer's best-effort A_min enforcement.
        """
        if target_area < 0:
            raise ValueError("target area must be non-negative")
        w = h = float("inf")
        if self.area > 0:
            factor = math.sqrt(target_area / self.area)
            w = self.width * factor
            h = self.height * factor
        if not (math.isfinite(w) and math.isfinite(h)):
            # Degenerate or extreme-aspect rectangle (the scale factor
            # overflows): grow into the most square shape that still spans
            # the original's extent.
            side = math.sqrt(target_area)
            w = max(side, self.width)
            h = target_area / w if w > 0 else 0.0
        result = Rect.from_center(self.center, w, h)
        if bounds is not None:
            result = _shift_into(result, bounds)
        return result

    def shifted_into(self, bounds: "Rect") -> "Rect":
        """Translate the minimum distance needed to fit inside ``bounds``.

        Unlike :meth:`clipped`, the area is preserved whenever the
        rectangle fits in ``bounds`` at all; oversized axes are clipped as
        a last resort.  The shifted rectangle always covers the original's
        intersection with ``bounds``, so point-count guarantees carried by
        the original are preserved for in-bounds points.
        """
        return _shift_into(self, bounds)

    def quadrants(self) -> tuple["Rect", "Rect", "Rect", "Rect"]:
        """The four equal quadrants (SW, SE, NW, NE)."""
        cx, cy = self.center.x, self.center.y
        return (
            Rect(self.min_x, self.min_y, cx, cy),
            Rect(cx, self.min_y, self.max_x, cy),
            Rect(self.min_x, cy, cx, self.max_y),
            Rect(cx, cy, self.max_x, self.max_y),
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.min_x, self.min_y, self.max_x, self.max_y)

    def __iter__(self) -> Iterator[float]:
        yield self.min_x
        yield self.min_y
        yield self.max_x
        yield self.max_y


def _shift_into(rect: Rect, bounds: Rect) -> Rect:
    """Translate ``rect`` the minimum distance needed to fit in ``bounds``.

    When ``rect`` is larger than ``bounds`` along an axis it is clipped on
    that axis instead (best effort).
    """
    dx = 0.0
    dy = 0.0
    if rect.width <= bounds.width:
        if rect.min_x < bounds.min_x:
            dx = bounds.min_x - rect.min_x
        elif rect.max_x > bounds.max_x:
            dx = bounds.max_x - rect.max_x
    if rect.height <= bounds.height:
        if rect.min_y < bounds.min_y:
            dy = bounds.min_y - rect.min_y
        elif rect.max_y > bounds.max_y:
            dy = bounds.max_y - rect.max_y
    shifted = rect.translated(dx, dy)
    if bounds.contains_rect(shifted):
        return shifted
    return shifted.clipped(bounds)


def total_covered_area(rects: Sequence[Rect]) -> float:
    """Area of the union of a set of rectangles (sweep-free O(n^2) method).

    Uses coordinate compression over the rectangle edges; adequate for the
    modest rectangle counts of the evaluation harness.
    """
    if not rects:
        return 0.0
    xs = sorted({r.min_x for r in rects} | {r.max_x for r in rects})
    ys = sorted({r.min_y for r in rects} | {r.max_y for r in rects})
    area = 0.0
    for i in range(len(xs) - 1):
        for j in range(len(ys) - 1):
            cx = (xs[i] + xs[i + 1]) / 2.0
            cy = (ys[j] + ys[j + 1]) / 2.0
            if any(r.contains_point(Point(cx, cy)) for r in rects):
                area += (xs[i + 1] - xs[i]) * (ys[j + 1] - ys[j])
    return area
