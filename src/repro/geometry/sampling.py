"""Random sampling inside regions.

The probabilistic query processor models each private user as uniformly
distributed inside her cloaked region (the paper's stated assumption in
Section 6.2.2).  Monte-Carlo probability estimation therefore needs uniform
samples from rectangles; the mobility generators need a few richer
distributions as well.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect


def uniform_point(rect: Rect, rng: np.random.Generator) -> Point:
    """One point drawn uniformly from ``rect``."""
    return Point(
        float(rng.uniform(rect.min_x, rect.max_x)) if rect.width > 0 else rect.min_x,
        float(rng.uniform(rect.min_y, rect.max_y)) if rect.height > 0 else rect.min_y,
    )


def uniform_points(rect: Rect, n: int, rng: np.random.Generator) -> list[Point]:
    """``n`` i.i.d. uniform points from ``rect``."""
    if n < 0:
        raise ValueError("sample count must be non-negative")
    xs = rng.uniform(rect.min_x, rect.max_x, size=n) if rect.width > 0 else np.full(n, rect.min_x)
    ys = rng.uniform(rect.min_y, rect.max_y, size=n) if rect.height > 0 else np.full(n, rect.min_y)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def uniform_arrays(rect: Rect, n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """``n`` uniform samples from ``rect`` as ``(xs, ys)`` arrays.

    Array form avoids Point-object overhead in tight Monte-Carlo loops.
    """
    if n < 0:
        raise ValueError("sample count must be non-negative")
    xs = rng.uniform(rect.min_x, rect.max_x, size=n) if rect.width > 0 else np.full(n, rect.min_x)
    ys = rng.uniform(rect.min_y, rect.max_y, size=n) if rect.height > 0 else np.full(n, rect.min_y)
    return xs, ys


def gaussian_cluster(
    center: Point,
    sigma: float,
    n: int,
    rng: np.random.Generator,
    bounds: Rect | None = None,
) -> list[Point]:
    """``n`` points from an isotropic Gaussian, folded back into ``bounds``.

    Out-of-bounds draws are *reflected* at the edge rather than clamped:
    reflection keeps the density mass near a boundary city edge (real
    downtowns pile up against coastlines) without stacking samples exactly
    *on* the edge, which would contaminate boundary-leakage statistics.
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    xs = rng.normal(center.x, sigma, size=n)
    ys = rng.normal(center.y, sigma, size=n)
    if bounds is not None:
        xs = _reflect(xs, bounds.min_x, bounds.max_x)
        ys = _reflect(ys, bounds.min_y, bounds.max_y)
    return [Point(float(x), float(y)) for x, y in zip(xs, ys)]


def _reflect(values: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Fold values into ``[lo, hi]`` by reflecting at the interval edges."""
    if hi <= lo:
        return np.full_like(values, lo)
    span = hi - lo
    folded = np.mod(values - lo, 2.0 * span)
    folded = np.where(folded > span, 2.0 * span - folded, folded)
    return folded + lo


def boundary_point(rect: Rect, rng: np.random.Generator) -> Point:
    """A point uniform on the boundary of ``rect``.

    Used by the MBR boundary attack: an adversary who knows the region is an
    MBR of k user locations knows at least one user touches each edge.
    """
    w, h = rect.width, rect.height
    perimeter = 2.0 * (w + h)
    if perimeter == 0.0:
        return rect.center
    t = float(rng.uniform(0.0, perimeter))
    if t < w:
        return Point(rect.min_x + t, rect.min_y)
    t -= w
    if t < h:
        return Point(rect.max_x, rect.min_y + t)
    t -= h
    if t < w:
        return Point(rect.max_x - t, rect.max_y)
    t -= w
    return Point(rect.min_x, rect.max_y - t)


def weighted_choice(weights: Sequence[float], rng: np.random.Generator) -> int:
    """Index drawn proportionally to non-negative ``weights``."""
    total = float(sum(weights))
    if total <= 0 or any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative and sum to a positive value")
    return int(rng.choice(len(weights), p=np.asarray(weights, dtype=float) / total))


def zipf_weights(n: int, skew: float) -> list[float]:
    """Normalised Zipf weights ``1/rank^skew`` for ``n`` ranks.

    ``skew = 0`` is uniform; larger skew concentrates mass on early ranks.
    Drives the skewed "hot-spot" population generator.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    raw = [1.0 / math.pow(rank, skew) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]
