"""Planar points.

The whole library works in a flat Euclidean plane.  The paper's examples are
phrased in miles; nothing in the algorithms depends on the unit, so the
library treats coordinates as unit-less floats.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """An exact planar location ``(x, y)``.

    Instances are immutable and hashable so they can be used as dictionary
    keys (e.g. memoising corner nearest-neighbour lookups).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance between this point and ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance; avoids the sqrt for comparisons."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def manhattan_distance_to(self, other: "Point") -> float:
        """L1 distance, used by the road-network mobility model."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """A new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def as_tuple(self) -> tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points.

    Raises:
        ValueError: if ``points`` is empty.
    """
    xs = 0.0
    ys = 0.0
    n = 0
    for p in points:
        xs += p.x
        ys += p.y
        n += 1
    if n == 0:
        raise ValueError("centroid of an empty point collection is undefined")
    return Point(xs / n, ys / n)
