"""Planar geometry substrate: points, rectangles, distances, sampling."""

from repro.geometry.distances import (
    max_dist,
    max_dist_rects,
    min_dist,
    min_dist_rects,
    min_max_dist_rect,
    rounded_rect_area,
    within_distance_of_rect,
)
from repro.geometry.point import Point, centroid
from repro.geometry.rect import Rect, total_covered_area
from repro.geometry.sampling import (
    boundary_point,
    gaussian_cluster,
    uniform_arrays,
    uniform_point,
    uniform_points,
    weighted_choice,
    zipf_weights,
)

__all__ = [
    "Point",
    "Rect",
    "centroid",
    "total_covered_area",
    "min_dist",
    "max_dist",
    "min_dist_rects",
    "max_dist_rects",
    "min_max_dist_rect",
    "within_distance_of_rect",
    "rounded_rect_area",
    "uniform_point",
    "uniform_points",
    "uniform_arrays",
    "gaussian_cluster",
    "boundary_point",
    "weighted_choice",
    "zipf_weights",
]
