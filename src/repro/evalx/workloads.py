"""Shared workload construction for experiments and benchmarks.

All experiments draw their populations, POI sets and query mixes from
here so that every algorithm is evaluated on *identical* inputs and every
benchmark is reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence, Type

import numpy as np

from repro.cloaking.base import Cloaker
from repro.cloaking.grid_cloak import GridCloaker
from repro.cloaking.hilbert import HilbertCloaker
from repro.cloaking.mbr import MBRCloaker
from repro.cloaking.naive import NaiveCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.cloaking.quadtree_cloak import QuadtreeCloaker
from repro.core.stores import PrivateStore, PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.population import (
    clustered_population,
    hotspot_population,
    uniform_population,
)

Distribution = Literal["uniform", "clustered", "hotspot"]

#: The universe every experiment runs in (a 100x100 "city").
DEFAULT_BOUNDS = Rect(0.0, 0.0, 100.0, 100.0)


@dataclass(frozen=True)
class Workload:
    """A fully materialised experiment input."""

    bounds: Rect
    users: list[Point]
    pois: list[Point]
    seed: int
    distribution: Distribution


def build_workload(
    n_users: int = 2000,
    n_pois: int = 300,
    distribution: Distribution = "clustered",
    seed: int = 7,
    bounds: Rect = DEFAULT_BOUNDS,
) -> Workload:
    """Deterministic population + POI set for one experiment run."""
    rng = np.random.default_rng(seed)
    if distribution == "uniform":
        users = uniform_population(bounds, n_users, rng)
    elif distribution == "clustered":
        users = clustered_population(bounds, n_users, rng)
    elif distribution == "hotspot":
        users = hotspot_population(bounds, n_users, rng)
    else:
        raise ValueError(f"unknown distribution: {distribution!r}")
    pois = uniform_population(bounds, n_pois, rng)
    return Workload(
        bounds=bounds, users=users, pois=pois, seed=seed, distribution=distribution
    )


def loaded_cloaker(
    cloaker_cls: Type[Cloaker], workload: Workload, **kwargs
) -> Cloaker:
    """Instantiate a cloaker and register the whole workload population."""
    cloaker = cloaker_cls(workload.bounds, **kwargs)
    for i, point in enumerate(workload.users):
        cloaker.add_user(i, point)
    return cloaker


def standard_cloakers(workload: Workload) -> list[Cloaker]:
    """All six algorithms loaded with the same population.

    Structure parameters are matched for comparability: the grid, pyramid
    and quadtree all bottom out at roughly the same cell size.
    """
    return [
        loaded_cloaker(NaiveCloaker, workload),
        loaded_cloaker(MBRCloaker, workload),
        loaded_cloaker(QuadtreeCloaker, workload, capacity=4, max_depth=8),
        loaded_cloaker(GridCloaker, workload, cols=64),
        loaded_cloaker(PyramidCloaker, workload, height=6),
        loaded_cloaker(HilbertCloaker, workload, order=8),
    ]


def poi_store(workload: Workload) -> PublicStore:
    """The workload's POIs bulk-loaded into a public store."""
    return PublicStore.from_points(
        {("poi", i): point for i, point in enumerate(workload.pois)}
    )


def cloaked_private_store(
    cloaker: Cloaker, k: int, min_area: float = 0.0, max_area: float | None = None
) -> PrivateStore:
    """Every registered user cloaked once and loaded into a private store."""
    from repro.core.profiles import PrivacyRequirement

    requirement = PrivacyRequirement(k=k, min_area=min_area, max_area=max_area)
    store = PrivateStore()
    for user_id in cloaker.users():
        store.set_region(user_id, cloaker.cloak(user_id, requirement).region)
    return store


def sample_victims(
    workload: Workload, count: int, rng: np.random.Generator
) -> list[int]:
    """A deterministic sample of user ids to attack/query."""
    n = len(workload.users)
    if count >= n:
        return list(range(n))
    return [int(i) for i in rng.choice(n, size=count, replace=False)]


def query_windows(
    bounds: Rect, count: int, side_fraction: float, rng: np.random.Generator
) -> list[Rect]:
    """Random square query windows of the given relative size."""
    side = side_fraction * bounds.width
    windows = []
    for _ in range(count):
        cx = float(rng.uniform(bounds.min_x + side / 2, bounds.max_x - side / 2))
        cy = float(rng.uniform(bounds.min_y + side / 2, bounds.max_y - side / 2))
        windows.append(Rect.from_center(Point(cx, cy), side, side))
    return windows
