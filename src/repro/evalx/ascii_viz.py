"""ASCII rendering of populations and cloaked regions.

No plotting stack is assumed offline, so the examples render the spatial
story as character grids: density maps of user populations, region
outlines over them, and side-by-side algorithm comparisons.  Good enough
to *see* that a naive square is centred on its victim while a pyramid
cell is not.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.point import Point
from repro.geometry.rect import Rect

#: Density ramp from empty to crowded.
_RAMP = " .:-=+*#%@"


def density_map(
    points: Iterable[Point],
    bounds: Rect,
    width: int = 60,
    height: int = 24,
) -> str:
    """Character density map of a point population."""
    if width < 1 or height < 1:
        raise ValueError("width and height must be positive")
    counts = [[0] * width for _ in range(height)]
    for p in points:
        if not bounds.contains_point(p):
            continue
        col = min(int((p.x - bounds.min_x) / bounds.width * width), width - 1)
        row = min(int((p.y - bounds.min_y) / bounds.height * height), height - 1)
        counts[row][col] += 1
    peak = max((c for row in counts for c in row), default=0)
    if peak == 0:
        return "\n".join(" " * width for _ in range(height))
    lines = []
    # Render north-up: the last grid row is the top of the map.
    for row in reversed(counts):
        line = "".join(
            _RAMP[min(int(c / peak * (len(_RAMP) - 1) + (c > 0)), len(_RAMP) - 1)]
            for c in row
        )
        lines.append(line)
    return "\n".join(lines)


def overlay_regions(
    base: str,
    regions: Sequence[tuple[Rect, str]],
    bounds: Rect,
    markers: Sequence[tuple[Point, str]] = (),
) -> str:
    """Draw rectangle outlines (and point markers) over a density map.

    Args:
        base: output of :func:`density_map` (defines the canvas size).
        regions: ``(rect, outline_char)`` pairs.
        bounds: the universe the canvas spans.
        markers: ``(point, char)`` pairs drawn last (e.g. the victim).
    """
    lines = [list(line) for line in base.split("\n")]
    height = len(lines)
    width = len(lines[0]) if lines else 0

    def to_cell(p: Point) -> tuple[int, int]:
        col = min(int((p.x - bounds.min_x) / bounds.width * width), width - 1)
        row = min(int((p.y - bounds.min_y) / bounds.height * height), height - 1)
        return height - 1 - row, col  # north-up flip

    for region, char in regions:
        clipped = region.intersection(bounds)
        if clipped is None:
            continue
        top, left = to_cell(Point(clipped.min_x, clipped.max_y))
        bottom, right = to_cell(Point(clipped.max_x, clipped.min_y))
        for col in range(left, right + 1):
            lines[top][col] = char
            lines[bottom][col] = char
        for row in range(top, bottom + 1):
            lines[row][left] = char
            lines[row][right] = char
    for point, char in markers:
        if bounds.contains_point(point):
            row, col = to_cell(point)
            lines[row][col] = char
    return "\n".join("".join(line) for line in lines)


def render_cloak_comparison(
    points: Sequence[Point],
    victim: Point,
    labelled_regions: Sequence[tuple[str, Rect]],
    bounds: Rect,
    width: int = 60,
    height: int = 24,
) -> str:
    """One panel per algorithm: population + its region + the victim."""
    panels = []
    base = density_map(points, bounds, width, height)
    for label, region in labelled_regions:
        panel = overlay_regions(
            base, [(region, "█")], bounds, markers=[(victim, "X")]
        )
        panels.append(f"{label}\n{panel}")
    return "\n\n".join(panels)
