"""Reproducible mixed query workloads against a full PrivacySystem.

Realistic LBS traffic is not one query type: it is a mix of "what's near
me" range probes, "nearest X" lookups, and operator-side analytics, with
popularity skew across users.  This module generates such a mix
deterministically and drives it through the end-to-end system, producing
the QoS summary the trade-off analyses and stress tests consume.

Workloads are *data*: every event converts to a declarative
:class:`~repro.queries.spec.QuerySpec` (:func:`specs_from_events` /
:func:`generate_specs`), the spec list round-trips through JSON
(:func:`dump_specs` / :func:`load_specs`), and execution goes through
``PrivacySystem.query`` so the cost-based planner — not the workload
driver — picks the backend and route for every query.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from repro.core.errors import QueryError
from repro.core.system import PrivacySystem
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.sampling import zipf_weights
from repro.queries.public_range import exact_range_count
from repro.queries.spec import (
    CountSpec,
    NNSpec,
    QuerySpec,
    RangeSpec,
    dump_specs,
    load_specs,
)


class QueryKind(enum.Enum):
    """The query species of the mix."""

    PRIVATE_RANGE = "private_range"
    PRIVATE_NN = "private_nn"
    PUBLIC_COUNT = "public_count"
    PUBLIC_NN = "public_nn"


@dataclass(frozen=True)
class QueryEvent:
    """One scheduled query.

    ``subject`` is a user id for private queries, a query point for
    public NN, or a window for public counts.
    """

    kind: QueryKind
    subject: object
    radius: float = 0.0


@dataclass(frozen=True)
class QueryMix:
    """Workload recipe: how much of each kind, and the skews.

    Attributes:
        n_queries: total queries to generate.
        weights: relative frequency per kind, in the order
            (private_range, private_nn, public_count, public_nn).
        user_skew: Zipf skew of which users issue private queries
            (0 = uniform popularity).
        radius: radius used by private range queries.
        window_fraction: side of count windows relative to the universe.
    """

    n_queries: int = 100
    weights: tuple[float, float, float, float] = (0.4, 0.3, 0.2, 0.1)
    user_skew: float = 0.7
    radius: float = 5.0
    window_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.n_queries < 0:
            raise QueryError("n_queries must be non-negative")
        if len(self.weights) != 4 or any(w < 0 for w in self.weights):
            raise QueryError("weights must be four non-negative numbers")
        if sum(self.weights) <= 0:
            raise QueryError("weights must sum to a positive value")


def generate_events(
    mix: QueryMix,
    user_ids: Sequence[Hashable],
    bounds: Rect,
    rng: np.random.Generator,
) -> list[QueryEvent]:
    """Materialise a deterministic event list from a mix recipe."""
    if not user_ids:
        raise QueryError("need at least one user to generate a workload")
    kinds = list(QueryKind)
    weights = np.asarray(mix.weights, dtype=float)
    weights = weights / weights.sum()
    popularity = np.asarray(zipf_weights(len(user_ids), mix.user_skew))
    side = mix.window_fraction * bounds.width
    events: list[QueryEvent] = []
    for _ in range(mix.n_queries):
        kind = kinds[int(rng.choice(4, p=weights))]
        if kind in (QueryKind.PRIVATE_RANGE, QueryKind.PRIVATE_NN):
            user = user_ids[int(rng.choice(len(user_ids), p=popularity))]
            events.append(QueryEvent(kind, user, radius=mix.radius))
        elif kind is QueryKind.PUBLIC_COUNT:
            cx = float(rng.uniform(bounds.min_x + side / 2, bounds.max_x - side / 2))
            cy = float(rng.uniform(bounds.min_y + side / 2, bounds.max_y - side / 2))
            events.append(
                QueryEvent(kind, Rect.from_center(Point(cx, cy), side, side))
            )
        else:
            cx = float(rng.uniform(bounds.min_x, bounds.max_x))
            cy = float(rng.uniform(bounds.min_y, bounds.max_y))
            events.append(QueryEvent(kind, Point(cx, cy)))
    return events


def specs_from_events(
    events: Sequence[QueryEvent],
    samples: int = 1024,
    rng: np.random.Generator | None = None,
) -> list[QuerySpec]:
    """Convert scheduled events into declarative, serialisable specs.

    ``rng`` seeds the Monte-Carlo public-NN specs (one fresh seed per
    event, drawn deterministically), so a spec list fully determines the
    workload's answers — including the probabilistic ones.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    specs: list[QuerySpec] = []
    for event in events:
        if event.kind is QueryKind.PRIVATE_RANGE:
            specs.append(
                RangeSpec(
                    flavor="private", user=event.subject, radius=event.radius
                )
            )
        elif event.kind is QueryKind.PRIVATE_NN:
            specs.append(NNSpec(flavor="private", user=event.subject))
        elif event.kind is QueryKind.PUBLIC_COUNT:
            specs.append(CountSpec(window=event.subject))
        else:
            specs.append(
                NNSpec(
                    flavor="public",
                    dataset="private",
                    point=event.subject,
                    samples=samples,
                    seed=int(rng.integers(0, 2**31 - 1)),
                )
            )
    return specs


def generate_specs(
    mix: QueryMix,
    user_ids: Sequence[Hashable],
    bounds: Rect,
    rng: np.random.Generator,
    samples: int = 1024,
) -> list[QuerySpec]:
    """Materialise a mix directly as a JSON-ready spec list.

    ``dump_specs`` on the result (and ``load_specs`` back) round-trips
    the whole workload through plain JSON — workloads are data.
    """
    events = generate_events(mix, user_ids, bounds, rng)
    return specs_from_events(events, samples=samples, rng=rng)


def _kind_of_spec(spec: QuerySpec) -> QueryKind:
    """The mix species a spec belongs to (for report bucketing)."""
    if isinstance(spec, RangeSpec) and spec.user is not None:
        return QueryKind.PRIVATE_RANGE
    if isinstance(spec, NNSpec):
        if spec.user is not None:
            return QueryKind.PRIVATE_NN
        if spec.flavor == "public" and spec.dataset == "private":
            return QueryKind.PUBLIC_NN
    if isinstance(spec, CountSpec):
        return QueryKind.PUBLIC_COUNT
    raise QueryError(
        f"workload driver cannot score spec: {spec!r}; supported kinds "
        "are private range/NN (user-bound), public count, and "
        "probabilistic public NN"
    )


@dataclass
class WorkloadReport:
    """Aggregated outcome of one workload run."""

    executed: dict[QueryKind, int] = field(default_factory=dict)
    private_correct: int = 0
    private_total: int = 0
    count_abs_error: list[float] = field(default_factory=list)
    nn_truth_contained: int = 0
    nn_total: int = 0

    def summary(self) -> dict[str, float]:
        out: dict[str, float] = {
            f"n_{kind.value}": float(n) for kind, n in self.executed.items()
        }
        if self.private_total:
            out["private_accuracy"] = self.private_correct / self.private_total
        if self.count_abs_error:
            out["count_mean_abs_error"] = float(np.mean(self.count_abs_error))
        if self.nn_total:
            out["public_nn_containment"] = self.nn_truth_contained / self.nn_total
        return out


def run_workload(
    system: PrivacySystem,
    events: Sequence[QueryEvent],
    samples: int = 1024,
    rng: np.random.Generator | None = None,
) -> WorkloadReport:
    """Execute a workload end to end, scoring answers against ground truth.

    Events are converted to declarative specs (``rng`` seeds the
    probabilistic NN draws) and run through :func:`run_spec_workload`,
    so the cost-based planner chooses every execution.
    """
    specs = specs_from_events(events, samples=samples, rng=rng)
    return run_spec_workload(system, specs)


def run_spec_workload(
    system: PrivacySystem, specs: Sequence[QuerySpec]
) -> WorkloadReport:
    """Execute a spec workload through ``PrivacySystem.query``, scored.

    Ground truth comes from the simulator's exact user locations — which
    the server never sees; the report checks the privacy pipeline kept its
    correctness guarantees under the whole mix.
    """
    report = WorkloadReport()
    # Ground truth over *visible* users only: passive users are invisible
    # to the server by design, so they are outside the answerable universe.
    visible = set(system.anonymizer.registered_users())
    exact = {
        uid: user.location
        for uid, user in system.users.items()
        if uid in visible
    }
    for spec in specs:
        kind = _kind_of_spec(spec)
        report.executed[kind] = report.executed.get(kind, 0) + 1
        if kind in (QueryKind.PRIVATE_RANGE, QueryKind.PRIVATE_NN):
            outcome, _ = system.query(spec)
            report.private_total += 1
            report.private_correct += outcome.correct
        elif kind is QueryKind.PUBLIC_COUNT:
            answer = system.query(spec)
            truth = exact_range_count(exact, spec.window)
            report.count_abs_error.append(abs(answer.expected - truth))
        else:
            result = system.query(spec)
            truth_user = min(
                exact, key=lambda uid: exact[uid].distance_to(spec.point)
            )
            pseudonym = system.anonymizer.pseudonym_of(truth_user)
            report.nn_total += 1
            report.nn_truth_contained += pseudonym in result.candidates
    return report
