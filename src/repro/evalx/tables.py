"""Minimal text tables for experiment reports.

Every experiment in :mod:`repro.evalx.experiments` returns a
:class:`Table`; benchmarks and EXPERIMENTS.md print them with
:meth:`Table.to_text`.  No third-party table dependency — results must
render identically everywhere, including inside pytest output.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


class Table:
    """A titled table of experiment results."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []

    def add_row(self, *cells: object) -> None:
        """Append a row; cell count must match the headers."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_format_cell(c) for c in cells])

    def column(self, name: str) -> list[str]:
        """All cells of the named column."""
        try:
            idx = self.headers.index(name)
        except ValueError:
            raise KeyError(f"no column named {name!r}") from None
        return [row[idx] for row in self.rows]

    def to_text(self) -> str:
        """Fixed-width rendering with the title and a header rule."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (for EXPERIMENTS.md)."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)


def print_tables(tables: Iterable[Table]) -> None:
    """Print a sequence of tables separated by blank lines."""
    for table in tables:
        print(table.to_text())
        print()
