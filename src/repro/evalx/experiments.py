"""The experiment suite: one entry per paper figure / claim.

The paper is a vision paper with conceptual figures rather than measured
plots, so each experiment E1..E14 turns the corresponding figure or claim
into a measurement (see DESIGN.md's experiment index; E13/E14 cover the
related-work techniques the paper positions itself against).  Every
function is deterministic given its seed, returns a
:class:`~repro.evalx.tables.Table`, and is exercised both by the test
suite (shape + invariants) and by the benchmark harness (timings +
EXPERIMENTS.md tables).
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.attacks.linkage import MaxSpeedLinkageAttack
from repro.attacks.metrics import evaluate_attacks
from repro.cloaking.base import Cloaker
from repro.cloaking.incremental import IncrementalCloaker
from repro.cloaking.mbr import MBRCloaker
from repro.cloaking.naive import NaiveCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.cloaking.shared import cloak_all
from repro.core.profiles import PrivacyRequirement, example_profile, hhmm
from repro.core.stores import PrivateStore
from repro.evalx.metrics import mean_and_p95, smallest_k_area
from repro.evalx.tables import Table
from repro.evalx.workloads import (
    Workload,
    build_workload,
    cloaked_private_store,
    loaded_cloaker,
    poi_store,
    query_windows,
    sample_victims,
    standard_cloakers,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.sampling import uniform_point, uniform_points
from repro.mobility.random_waypoint import RandomWaypointModel
from repro.queries.continuous import ContinuousCountMonitor, ContinuousPrivateRange
from repro.queries.private_nn import exact_nn_answer, private_nn_query
from repro.queries.private_range import exact_range_answer, private_range_query
from repro.queries.public_nn import exact_nn_user, public_nn_query
from repro.queries.public_range import (
    exact_range_count,
    naive_range_count,
    public_range_count,
)


# ----------------------------------------------------------------------
# E1 — Figure 2: temporal privacy profiles
# ----------------------------------------------------------------------

def run_e1_profile() -> Table:
    """Reproduce Figure 2's profile behaviour across a full day."""
    profile = example_profile()
    table = Table(
        "E1 (Figure 2): requirement in force across the day",
        ["time", "k", "min_area", "max_area"],
    )
    for label in ["08:00", "12:00", "16:59", "17:00", "21:00", "22:00", "03:00"]:
        requirement = profile.requirement_at(hhmm(label))
        table.add_row(
            label,
            requirement.k,
            requirement.min_area,
            "-" if requirement.max_area is None else requirement.max_area,
        )
    return table


# ----------------------------------------------------------------------
# E2 / E3 — Figures 3 and 4: cloaking algorithm comparison
# ----------------------------------------------------------------------

def _cloaking_rows(
    cloakers: Sequence[Cloaker],
    workload: Workload,
    ks: Sequence[int],
    victims_per_k: int,
    table: Table,
) -> None:
    rng = np.random.default_rng(workload.seed + 1)
    victims = sample_victims(workload, victims_per_k, rng)
    for cloaker in cloakers:
        for k in ks:
            requirement = PrivacyRequirement(k=k)
            areas, rel_areas, times = [], [], []
            satisfied = 0
            for victim in victims:
                start = time.perf_counter()
                result = cloaker.cloak(victim, requirement)
                times.append(time.perf_counter() - start)
                areas.append(result.area)
                reference = smallest_k_area(cloaker, cloaker.location_of(victim), k)
                rel_areas.append(result.area / max(reference, 1e-9))
                satisfied += result.k_satisfied
            mean_area, p95_area = mean_and_p95(areas)
            table.add_row(
                cloaker.name,
                k,
                mean_area,
                p95_area,
                float(np.mean(rel_areas)),
                satisfied / len(victims),
                1000.0 * float(np.mean(times)),
            )


def run_e2_data_dependent(
    n_users: int = 2000, ks: Sequence[int] = (5, 20, 80), victims: int = 60, seed: int = 7
) -> Table:
    """Figure 3: naive vs MBR cloaking (areas, latency, leakage)."""
    workload = build_workload(n_users=n_users, seed=seed)
    cloakers = [
        loaded_cloaker(NaiveCloaker, workload),
        loaded_cloaker(MBRCloaker, workload),
    ]
    table = Table(
        "E2 (Figure 3): data-dependent cloaking",
        ["algorithm", "k", "mean_area", "p95_area", "rel_area", "k_sat", "ms/cloak"],
    )
    _cloaking_rows(cloakers, workload, ks, victims, table)
    return table


def run_e3_space_dependent(
    n_users: int = 2000, ks: Sequence[int] = (5, 20, 80), victims: int = 60, seed: int = 7
) -> Table:
    """Figure 4: quadtree vs grid vs pyramid (vs data-dependent reference)."""
    workload = build_workload(n_users=n_users, seed=seed)
    cloakers = [c for c in standard_cloakers(workload) if not c.data_dependent]
    table = Table(
        "E3 (Figure 4): space-dependent cloaking",
        ["algorithm", "k", "mean_area", "p95_area", "rel_area", "k_sat", "ms/cloak"],
    )
    _cloaking_rows(cloakers, workload, ks, victims, table)
    return table


def run_e3_ablation_pyramid(
    n_users: int = 2000, k: int = 20, victims: int = 100, seed: int = 7
) -> Table:
    """Ablation A3: pyramid search direction and neighbour merging."""
    workload = build_workload(n_users=n_users, seed=seed)
    variants = [
        ("bottom-up", loaded_cloaker(PyramidCloaker, workload, height=6)),
        (
            "top-down",
            loaded_cloaker(PyramidCloaker, workload, height=6, bottom_up=False),
        ),
        (
            "bottom-up+merge",
            loaded_cloaker(PyramidCloaker, workload, height=6, neighbor_merge=True),
        ),
    ]
    rng = np.random.default_rng(seed + 2)
    chosen = sample_victims(workload, victims, rng)
    requirement = PrivacyRequirement(k=k)
    table = Table(
        "E3 ablation (A3): pyramid variants",
        ["variant", "mean_area", "probes/cloak", "k_sat"],
    )
    for name, cloaker in variants:
        areas = []
        satisfied = 0
        for victim in chosen:
            result = cloaker.cloak(victim, requirement)
            areas.append(result.area)
            satisfied += result.k_satisfied
        probes = cloaker.stats.extra.get("probes", 0) / max(1, cloaker.stats.cloaks)
        table.add_row(name, float(np.mean(areas)), probes, satisfied / len(chosen))
    return table


def run_e2_clique(
    n_arrivals: int = 400,
    ks: Sequence[int] = (3, 5, 10),
    tolerance: float = 8.0,
    seed: int = 7,
) -> Table:
    """Deferred CliqueCloak (the real [17]) vs snapshot MBR cloaking.

    Requests arrive over time from a clustered city; CliqueCloak matches
    compatible groups (everyone in a group shares one region —
    reciprocal), paying with waiting time and a served-fraction below 1.
    """
    from repro.cloaking.clique import CliqueCloak

    workload = build_workload(n_users=n_arrivals, seed=seed)
    table = Table(
        "E2 extension: deferred CliqueCloak (personalised k, reciprocal groups)",
        ["k", "served_rate", "mean_group", "mean_delay", "mean_area"],
    )
    for k in ks:
        cloak = CliqueCloak(workload.bounds, max_delay=float(n_arrivals))
        for i, point in enumerate(workload.users):
            cloak.request(float(i), i, point, k=k, tolerance=tolerance)
        cloak.tick(float(n_arrivals))
        served_users = sum(r.group_size for r in cloak.served)
        delays = [r.max_delay_experienced for r in cloak.served]
        areas = [r.region.area for r in cloak.served]
        groups = [r.group_size for r in cloak.served]
        table.add_row(
            k,
            served_users / n_arrivals,
            float(np.mean(groups)) if groups else 0.0,
            float(np.mean(delays)) if delays else float("nan"),
            float(np.mean(areas)) if areas else float("nan"),
        )
    return table


# ----------------------------------------------------------------------
# E4 — Section 5.3: scalability techniques
# ----------------------------------------------------------------------

def run_e4_scalability(
    n_users: int = 3000,
    rounds: int = 4,
    move_fraction: float = 0.3,
    k: int = 20,
    seed: int = 7,
    bulk: bool = True,
) -> Table:
    """Incremental evaluation and shared execution vs naive recomputation.

    Each round moves a fraction of the population (random waypoint) and
    then re-cloaks *every* user; the strategies differ only in how the
    re-cloak is executed.  The headline strategy is the vectorized bulk
    write path (``publish_all(bulk=True)``, the default here): one numpy
    pass over the whole population plus a single server batch push,
    audited to zero undeclared privacy violations each run.  Pass
    ``bulk=False`` to route that strategy through the per-user oracle
    loop instead (the differential baseline).
    """
    requirement = PrivacyRequirement(k=k)
    table = Table(
        "E4 (Section 5.3): scalability techniques",
        ["strategy", "users", "cloaks/s", "reuse_or_share_rate"],
    )

    def fresh_setup():
        workload = build_workload(n_users=n_users, seed=seed)
        model = RandomWaypointModel(
            workload.bounds, np.random.default_rng(seed + 3), speed_range=(0.2, 1.0)
        )
        for i, point in enumerate(workload.users):
            model.add_user(i, point)
        return workload, model

    def run_rounds(cloak_round, cloaker_owner, model) -> tuple[float, int]:
        moved_per_round = int(move_fraction * n_users)
        rng = np.random.default_rng(seed + 4)
        total = 0
        start = time.perf_counter()
        for _ in range(rounds):
            positions = model.step(1.0)
            movers = rng.choice(n_users, size=moved_per_round, replace=False)
            for uid in movers:
                cloaker_owner.move_user(int(uid), positions[int(uid)])
            total += cloak_round()
        return time.perf_counter() - start, total

    # Headline strategy: the vectorized bulk write path, end to end
    # through anonymizer and server, with a privacy audit of the round's
    # cloak.bulk events (zero undeclared violations is a hard invariant).
    from repro.core.profiles import PrivacyProfile
    from repro.core.system import PrivacySystem
    from repro.mobility.users import MobileUser
    from repro.obs import PrivacyAuditor

    workload, model = fresh_setup()
    system = PrivacySystem(
        bounds=workload.bounds,
        cloaker=PyramidCloaker(workload.bounds, height=6),
    )
    profile = PrivacyProfile.always(k=k)
    for i, point in enumerate(workload.users):
        system.add_user(MobileUser(i, point, profile))

    def bulk_round() -> int:
        system.publish_all(bulk=bulk)
        return n_users

    elapsed, total = run_rounds(bulk_round, system.anonymizer.cloaker, model)
    auditor = PrivacyAuditor.from_log(system.obs.events)
    if auditor.violations():
        raise AssertionError(
            "bulk cloaking produced undeclared privacy violations"
        )
    table.add_row(
        "bulk-vectorized" if bulk else "bulk-disabled", n_users,
        total / elapsed, 0.0,
    )

    # Strategy 1: recompute every user individually (baseline).
    workload, model = fresh_setup()
    base = loaded_cloaker(PyramidCloaker, workload, height=6)
    elapsed, total = run_rounds(
        lambda: sum(1 for uid in base.users() if base.cloak(uid, requirement)),
        base,
        model,
    )
    table.add_row("recompute", n_users, total / elapsed, 0.0)

    # Strategy 2: incremental evaluation.
    workload, model = fresh_setup()
    inner = loaded_cloaker(PyramidCloaker, workload, height=6)
    incremental = IncrementalCloaker(inner)
    elapsed, total = run_rounds(
        lambda: sum(
            1 for uid in inner.users() if incremental.cloak(uid, requirement)
        ),
        incremental,
        model,
    )
    reuse_rate = inner.stats.reuses / max(1, total)
    table.add_row("incremental", n_users, total / elapsed, reuse_rate)

    # Strategy 3: shared batch execution.
    workload, model = fresh_setup()
    shared_cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    outcomes = []

    def shared_round() -> int:
        outcome = cloak_all(shared_cloaker, requirement)
        outcomes.append(outcome)
        return len(outcome.results)

    elapsed, total = run_rounds(shared_round, shared_cloaker, model)
    share_rate = float(np.mean([o.sharing_ratio for o in outcomes]))
    table.add_row("shared-batch", n_users, total / elapsed, share_rate)

    # Reference: a data-dependent algorithm, which cannot share.
    workload, model = fresh_setup()
    mbr = loaded_cloaker(MBRCloaker, workload)
    elapsed, total = run_rounds(
        lambda: sum(1 for uid in mbr.users() if mbr.cloak(uid, requirement)),
        mbr,
        model,
    )
    table.add_row("mbr-per-user", n_users, total / elapsed, 0.0)

    # Incremental wrapping shines where the inner cloak is expensive:
    # MBR revalidation (one vectorised count) beats a fresh kNN+MBR.
    workload, model = fresh_setup()
    mbr_inner = loaded_cloaker(MBRCloaker, workload)
    mbr_incremental = IncrementalCloaker(mbr_inner)
    elapsed, total = run_rounds(
        lambda: sum(
            1 for uid in mbr_inner.users() if mbr_incremental.cloak(uid, requirement)
        ),
        mbr_incremental,
        model,
    )
    mbr_reuse = mbr_inner.stats.reuses / max(1, total)
    table.add_row("mbr-incremental", n_users, total / elapsed, mbr_reuse)
    return table


def run_e4_scale_sweep(
    populations: Sequence[int] = (1000, 4000, 16000),
    k: int = 20,
    cloaks_per_size: int = 400,
    queries_per_size: int = 25,
    n_pois: int = 400,
    radius: float = 5.0,
    seed: int = 7,
) -> Table:
    """Scalability in the number of users (the paper's Section 1 concern).

    Per population size: cloaking throughput (pyramid vs MBR) and
    end-to-end private-range latency.  The pyramid's per-cloak cost must
    stay flat in N (counter walks); data-dependent costs grow.
    """
    table = Table(
        "E4 scale sweep: population growth",
        [
            "users",
            "pyramid_cloaks/s",
            "mbr_cloaks/s",
            "range_query_ms",
            "mean_area",
        ],
    )
    for n_users in populations:
        workload = build_workload(n_users=n_users, n_pois=n_pois, seed=seed)
        store = poi_store(workload)
        rng = np.random.default_rng(seed + 21)
        victims = sample_victims(workload, cloaks_per_size, rng)
        requirement = PrivacyRequirement(k=k)

        pyramid = loaded_cloaker(PyramidCloaker, workload, height=7)
        start = time.perf_counter()
        regions = [pyramid.cloak(v, requirement).region for v in victims]
        pyramid_rate = len(victims) / (time.perf_counter() - start)

        mbr = loaded_cloaker(MBRCloaker, workload)
        start = time.perf_counter()
        for victim in victims[: max(50, cloaks_per_size // 4)]:
            mbr.cloak(victim, requirement)
        mbr_rate = max(50, cloaks_per_size // 4) / (time.perf_counter() - start)

        start = time.perf_counter()
        for region in regions[:queries_per_size]:
            private_range_query(store, region, radius)
        query_ms = 1000.0 * (time.perf_counter() - start) / queries_per_size

        table.add_row(
            n_users,
            pyramid_rate,
            mbr_rate,
            query_ms,
            float(np.mean([r.area for r in regions])),
        )
    return table


# ----------------------------------------------------------------------
# E5 — Figure 5a: private range queries
# ----------------------------------------------------------------------

def run_e5_private_range(
    n_users: int = 2000,
    n_pois: int = 400,
    ks: Sequence[int] = (1, 5, 20, 80),
    radius: float = 5.0,
    queries: int = 40,
    seed: int = 7,
) -> Table:
    """Candidate-set cost of private range queries vs privacy level."""
    workload = build_workload(n_users=n_users, n_pois=n_pois, seed=seed)
    store = poi_store(workload)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    rng = np.random.default_rng(seed + 5)
    victims = sample_victims(workload, queries, rng)
    table = Table(
        "E5 (Figure 5a): private range query cost",
        [
            "k",
            "mean_area",
            "cand_exact",
            "cand_mbr",
            "mbr_inflation",
            "truth_size",
            "contained",
        ],
    )
    for k in ks:
        requirement = PrivacyRequirement(k=k)
        exact_sizes, mbr_sizes, truth_sizes, areas = [], [], [], []
        contained = True
        for victim in victims:
            point = cloaker.location_of(victim)
            region = (
                cloaker.cloak(victim, requirement).region
                if k > 1
                else Rect.from_point(point)
            )
            areas.append(region.area)
            exact = private_range_query(store, region, radius, "exact")
            approx = private_range_query(store, region, radius, "mbr")
            truth = exact_range_answer(store, point, radius)
            exact_sizes.append(len(exact.candidates))
            mbr_sizes.append(len(approx.candidates))
            truth_sizes.append(len(truth))
            contained = contained and set(truth) <= set(exact.candidates)
        table.add_row(
            k,
            float(np.mean(areas)),
            float(np.mean(exact_sizes)),
            float(np.mean(mbr_sizes)),
            float(np.mean(mbr_sizes)) / max(float(np.mean(exact_sizes)), 1e-9),
            float(np.mean(truth_sizes)),
            contained,
        )
    return table


# ----------------------------------------------------------------------
# E6 — Figure 5b: private NN queries
# ----------------------------------------------------------------------

def run_e6_private_nn(
    n_users: int = 2000,
    n_pois: int = 400,
    ks: Sequence[int] = (5, 20, 80),
    queries: int = 30,
    check_samples: int = 50,
    seed: int = 7,
) -> Table:
    """Candidate-set tightness of the three private-NN methods."""
    workload = build_workload(n_users=n_users, n_pois=n_pois, seed=seed)
    store = poi_store(workload)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    rng = np.random.default_rng(seed + 6)
    victims = sample_victims(workload, queries, rng)
    table = Table(
        "E6 (Figure 5b): private NN candidate sets",
        ["k", "method", "mean_cand", "p95_cand", "guarantee_ok", "ms/query"],
    )
    for k in ks:
        requirement = PrivacyRequirement(k=k)
        regions = [cloaker.cloak(v, requirement).region for v in victims]
        for method in ("range", "filter", "exact"):
            sizes, times = [], []
            guarantee = True
            for region in regions:
                start = time.perf_counter()
                result = private_nn_query(store, region, method)
                times.append(time.perf_counter() - start)
                sizes.append(len(result.candidates))
                for sample in uniform_points(region, check_samples, rng):
                    if exact_nn_answer(store, sample) not in result.candidates:
                        guarantee = False
            mean_size, p95_size = mean_and_p95(sizes)
            table.add_row(
                k, method, mean_size, p95_size, guarantee, 1000 * float(np.mean(times))
            )
    return table


# ----------------------------------------------------------------------
# E7 — Figure 6a: public count over private data
# ----------------------------------------------------------------------

def figure_6a_store() -> tuple[PrivateStore, Rect]:
    """The exact worked example of Figure 6a.

    Six cloaked objects A..F overlapping the query window with ratios
    1.0 (D), 0 (C), 0.75 (A), 0.5 (B), 0.2 (E), 0.25 (F).
    """
    store = PrivateStore()
    store.set_region("D", Rect(1, 1, 3, 3))
    store.set_region("C", Rect(20, 20, 22, 22))
    store.set_region("A", Rect(-2, 0, 6, 4))
    store.set_region("B", Rect(-5, 0, 5, 5))
    store.set_region("E", Rect(5, -8, 10, 2))
    store.set_region("F", Rect(6, 6, 14, 14))
    return store, Rect(0, 0, 10, 10)


def run_e7_public_count(
    n_users: int = 2000,
    ks: Sequence[int] = (1, 5, 20, 80),
    windows: int = 30,
    window_fraction: float = 0.15,
    seed: int = 7,
) -> tuple[Table, Table]:
    """Worked-example reproduction + accuracy sweep over privacy levels."""
    # Part 1: the paper's own numbers.
    store, window = figure_6a_store()
    answer = public_range_count(store, window)
    example = Table(
        "E7a (Figure 6a): worked example",
        ["format", "paper", "measured"],
    )
    example.add_row("absolute value", 2.7, answer.expected)
    example.add_row("interval min", 1, answer.interval[0])
    example.add_row("interval max", 5, answer.interval[1])
    example.add_row("naive count", 5, naive_range_count(store, window))

    # Part 2: accuracy vs privacy level on a synthetic city.
    workload = build_workload(n_users=n_users, seed=seed)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    exact_locations = {i: p for i, p in enumerate(workload.users)}
    rng = np.random.default_rng(seed + 7)
    query_set = query_windows(workload.bounds, windows, window_fraction, rng)
    sweep = Table(
        "E7b: count accuracy vs privacy level",
        ["k", "mean_truth", "abs_err", "naive_err", "interval_width", "mode_hit"],
    )
    for k in ks:
        private = cloaked_private_store(cloaker, k=k)
        errs, naive_errs, widths, mode_hits, truths = [], [], [], [], []
        for window in query_set:
            truth = exact_range_count(exact_locations, window)
            answer = public_range_count(private, window)
            errs.append(abs(answer.expected - truth))
            naive_errs.append(abs(naive_range_count(private, window) - truth))
            lo, hi = answer.interval
            widths.append(hi - lo)
            mode_hits.append(abs(answer.most_likely_count() - truth))
            truths.append(truth)
        sweep.add_row(
            k,
            float(np.mean(truths)),
            float(np.mean(errs)),
            float(np.mean(naive_errs)),
            float(np.mean(widths)),
            float(np.mean(mode_hits)),
        )
    return example, sweep


# ----------------------------------------------------------------------
# E8 — Figure 6b: public NN over private data
# ----------------------------------------------------------------------

def run_e8_public_nn(
    n_users: int = 400,
    ks: Sequence[int] = (1, 5, 20, 80),
    queries: int = 30,
    samples: int = 2048,
    seed: int = 7,
) -> Table:
    """Probabilistic NN answers: candidates, entropy, top-1 accuracy."""
    workload = build_workload(n_users=n_users, seed=seed)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    exact_locations = {i: p for i, p in enumerate(workload.users)}
    rng = np.random.default_rng(seed + 8)
    query_points = uniform_points(workload.bounds, queries, rng)
    table = Table(
        "E8 (Figure 6b): public NN over private data",
        ["k", "mean_cand", "entropy_bits", "top1_acc", "truth_in_cand"],
    )
    for k in ks:
        private = cloaked_private_store(cloaker, k=k)
        cand_sizes, entropies, top_hits, contained = [], [], [], []
        for query in query_points:
            result = public_nn_query(private, query, samples=samples, rng=rng)
            truth = exact_nn_user(exact_locations, query)
            cand_sizes.append(len(result.candidates))
            entropies.append(result.answer.entropy())
            top_hits.append(result.answer.top == truth)
            contained.append(truth in result.candidates)
        table.add_row(
            k,
            float(np.mean(cand_sizes)),
            float(np.mean(entropies)),
            float(np.mean(top_hits)),
            float(np.mean(contained)),
        )
    return table


def figure_6b_example() -> Table:
    """A Figure 6b-style scenario: pruning keeps {E, D, F}, drops A, B, C."""
    store = PrivateStore()
    # Regions positioned so D certainly beats A/B/C but E and F overlap the
    # race, mirroring the figure's qualitative layout.
    store.set_region("A", Rect(30, 60, 44, 74))
    store.set_region("B", Rect(10, 30, 26, 46))
    store.set_region("C", Rect(60, 65, 80, 85))
    store.set_region("D", Rect(48, 48, 54, 54))
    store.set_region("E", Rect(40, 38, 58, 50))
    store.set_region("F", Rect(50, 50, 68, 62))
    query = Point(51, 47)
    result = public_nn_query(store, query, samples=4096)
    table = Table(
        "E8 example (Figure 6b layout): candidate probabilities",
        ["object", "P(nearest)"],
    )
    for object_id, probability in result.answer.ranked():
        table.add_row(object_id, probability)
    return table


# ----------------------------------------------------------------------
# E9 — the central privacy/QoS trade-off
# ----------------------------------------------------------------------

def run_e9_tradeoff(
    n_users: int = 1500,
    n_pois: int = 300,
    ks: Sequence[int] = (1, 2, 5, 10, 20, 50, 100),
    queries: int = 25,
    radius: float = 5.0,
    seed: int = 7,
) -> Table:
    """k vs every cost the paper says the user is trading service for."""
    workload = build_workload(n_users=n_users, n_pois=n_pois, seed=seed)
    store = poi_store(workload)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    exact_locations = {i: p for i, p in enumerate(workload.users)}
    rng = np.random.default_rng(seed + 9)
    victims = sample_victims(workload, queries, rng)
    count_window = query_windows(workload.bounds, 1, 0.2, rng)[0]
    table = Table(
        "E9: privacy vs quality-of-service trade-off (pyramid cloaking)",
        [
            "k",
            "mean_area",
            "range_cand",
            "range_overhead",
            "nn_cand",
            "count_err",
            "answer_ok",
        ],
    )
    for k in ks:
        requirement = PrivacyRequirement(k=k)
        areas, range_sizes, overheads, nn_sizes = [], [], [], []
        all_ok = True
        for victim in victims:
            point = cloaker.location_of(victim)
            region = (
                cloaker.cloak(victim, requirement).region
                if k > 1
                else Rect.from_point(point)
            )
            areas.append(region.area)
            range_result = private_range_query(store, region, radius)
            truth = exact_range_answer(store, point, radius)
            range_sizes.append(len(range_result.candidates))
            overheads.append(len(range_result.candidates) / max(1, len(truth)))
            all_ok = all_ok and set(truth) <= set(range_result.candidates)
            nn_result = private_nn_query(store, region, "filter")
            nn_sizes.append(len(nn_result.candidates))
            all_ok = all_ok and exact_nn_answer(store, point) in nn_result.candidates
        private = cloaked_private_store(cloaker, k=k)
        count_answer = public_range_count(private, count_window)
        count_truth = exact_range_count(exact_locations, count_window)
        table.add_row(
            k,
            float(np.mean(areas)),
            float(np.mean(range_sizes)),
            float(np.mean(overheads)),
            float(np.mean(nn_sizes)),
            abs(count_answer.expected - count_truth),
            all_ok,
        )
    return table


def run_e9_by_algorithm(
    n_users: int = 1200,
    n_pois: int = 300,
    k: int = 20,
    queries: int = 25,
    radius: float = 5.0,
    posterior_sample: int = 10,
    seed: int = 7,
) -> Table:
    """The trade-off as an *algorithm choice* at fixed k.

    One row per cloaker: what the user pays (candidate sizes) and what she
    actually gets (posterior anonymity under the omniscient adversary) —
    the two sides of the dial the per-k sweep cannot show.
    """
    from repro.attacks.posterior import posterior_anonymity

    workload = build_workload(n_users=n_users, n_pois=n_pois, seed=seed)
    store = poi_store(workload)
    rng = np.random.default_rng(seed + 20)
    victims = sample_victims(workload, queries, rng)
    requirement = PrivacyRequirement(k=k)
    table = Table(
        "E9b: cost vs delivered anonymity by algorithm (k = %d)" % k,
        ["algorithm", "mean_area", "range_cand", "nn_cand", "posterior_k"],
    )
    for cloaker in standard_cloakers(workload):
        areas, range_sizes, nn_sizes = [], [], []
        for victim in victims:
            region = cloaker.cloak(victim, requirement).region
            areas.append(region.area)
            range_sizes.append(
                len(private_range_query(store, region, radius).candidates)
            )
            nn_sizes.append(len(private_nn_query(store, region, "filter").candidates))
        posteriors = [
            posterior_anonymity(cloaker, victim, requirement).posterior_anonymity
            for victim in victims[:posterior_sample]
        ]
        table.add_row(
            cloaker.name,
            float(np.mean(areas)),
            float(np.mean(range_sizes)),
            float(np.mean(nn_sizes)),
            float(np.mean(posteriors)),
        )
    return table


# ----------------------------------------------------------------------
# E10 — attack resistance of every algorithm
# ----------------------------------------------------------------------

def run_e10_attacks(
    n_users: int = 800,
    k: int = 10,
    victims: int = 40,
    posterior_sample: int = 15,
    seed: int = 7,
) -> Table:
    """Requirement 2 quantified: the attack suite against all algorithms."""
    workload = build_workload(n_users=n_users, seed=seed)
    rng = np.random.default_rng(seed + 10)
    chosen = sample_victims(workload, victims, rng)
    requirement = PrivacyRequirement(k=k)
    table = Table(
        "E10: attack resistance (k = %d)" % k,
        [
            "algorithm",
            "center_err",
            "random_err",
            "boundary_rate",
            "posterior_k",
            "reciprocity",
        ],
    )
    for cloaker in standard_cloakers(workload):
        report = evaluate_attacks(
            cloaker, requirement, chosen, rng, posterior_sample=posterior_sample
        )
        table.add_row(
            report.algorithm,
            report.center_norm_error,
            report.random_norm_error,
            report.boundary_rate,
            report.mean_posterior_anonymity,
            report.reciprocity_rate,
        )
    return table


def run_e10_density(
    n_users: int = 800,
    k: int = 10,
    victims: int = 40,
    seed: int = 7,
) -> Table:
    """Density-aware adversary on a hotspot city: the k-anonymity gap.

    A region that is nominally k-anonymous leaks location through public
    density knowledge; this table compares the centre attack against the
    density-weighted MAP attack per algorithm.
    """
    from repro.attacks.density import DensityModel, DensityWeightedAttack
    from repro.attacks.location import CenterAttack

    workload = build_workload(n_users=n_users, distribution="hotspot", seed=seed)
    model = DensityModel(workload.bounds, resolution=32).fit(workload.users)
    density_attack = DensityWeightedAttack(model)
    center_attack = CenterAttack()
    rng = np.random.default_rng(seed + 19)
    chosen = sample_victims(workload, victims, rng)
    requirement = PrivacyRequirement(k=k)
    table = Table(
        "E10 density: density-aware adversary (hotspot city, k = %d)" % k,
        ["algorithm", "center_err", "density_err", "effective_cells"],
    )
    for cloaker in standard_cloakers(workload):
        center_errors, density_errors, effective = [], [], []
        for victim in chosen:
            region = cloaker.cloak(victim, requirement).region
            true_location = cloaker.location_of(victim)
            center_errors.append(
                center_attack.attack(region, true_location).normalized_error
            )
            density_errors.append(
                density_attack.attack(region, true_location).normalized_error
            )
            effective.append(model.effective_anonymity(region))
        table.add_row(
            cloaker.name,
            float(np.mean(center_errors)),
            float(np.mean(density_errors)),
            float(np.mean(effective)),
        )
    return table


def run_e10_linkage(
    n_users: int = 1000,
    k: int = 20,
    steps: int = 20,
    seed: int = 7,
) -> Table:
    """Temporal leakage: max-speed linkage across successive cloaks."""
    workload = build_workload(n_users=n_users, seed=seed)
    bounds = workload.bounds
    table = Table(
        "E10 linkage: feasible-area shrinkage over an update stream",
        ["algorithm", "mean_shrinkage", "final_shrinkage"],
    )
    requirement = PrivacyRequirement(k=k)
    for cloaker in standard_cloakers(workload):
        model = RandomWaypointModel(
            bounds, np.random.default_rng(seed + 11), speed_range=(0.5, 0.5)
        )
        for i, point in enumerate(workload.users):
            model.add_user(i, point)
        attack = MaxSpeedLinkageAttack(max_speed=0.5)
        victim = 0
        for step in range(steps):
            positions = model.step(1.0)
            cloaker.move_user(victim, positions[victim])
            region = cloaker.cloak(victim, requirement).region
            attack.observe(float(step), region)
        table.add_row(
            cloaker.name,
            attack.mean_shrinkage(),
            attack.steps[-1].shrinkage,
        )
    return table


# ----------------------------------------------------------------------
# E11 — transmission cost vs the send-everything baseline
# ----------------------------------------------------------------------

def run_e11_transmission(
    n_users: int = 1500,
    n_pois_list: Sequence[int] = (100, 400, 1600),
    k: int = 20,
    radius: float = 5.0,
    queries: int = 25,
    seed: int = 7,
) -> Table:
    """Section 6.2.1's naive "ship all objects" vs candidate sets."""
    table = Table(
        "E11: transmission cost vs send-everything baseline",
        ["n_pois", "send_all", "range_cand", "nn_cand", "range_saving", "nn_saving"],
    )
    for n_pois in n_pois_list:
        workload = build_workload(n_users=n_users, n_pois=n_pois, seed=seed)
        store = poi_store(workload)
        cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
        rng = np.random.default_rng(seed + 12)
        victims = sample_victims(workload, queries, rng)
        requirement = PrivacyRequirement(k=k)
        range_sizes, nn_sizes = [], []
        for victim in victims:
            region = cloaker.cloak(victim, requirement).region
            range_sizes.append(
                len(private_range_query(store, region, radius).candidates)
            )
            nn_sizes.append(len(private_nn_query(store, region, "filter").candidates))
        mean_range = float(np.mean(range_sizes))
        mean_nn = float(np.mean(nn_sizes))
        table.add_row(
            n_pois,
            n_pois,
            mean_range,
            mean_nn,
            n_pois / max(mean_range, 1e-9),
            n_pois / max(mean_nn, 1e-9),
        )
    return table


# ----------------------------------------------------------------------
# E12 — continuous queries: incremental vs recompute
# ----------------------------------------------------------------------

def run_e12_continuous(
    n_users: int = 2000,
    updates: int = 2000,
    k: int = 20,
    seed: int = 7,
) -> Table:
    """Incremental monitor maintenance vs full re-evaluation."""
    workload = build_workload(n_users=n_users, seed=seed)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    private = cloaked_private_store(cloaker, k=k)
    rng = np.random.default_rng(seed + 13)
    window = query_windows(workload.bounds, 1, 0.25, rng)[0]

    monitor = ContinuousCountMonitor(window)
    monitor.seed_from_store(private)

    # Pre-generate an update stream: random users get slightly shifted
    # regions (as their movement triggers re-cloaks).
    stream = []
    user_ids = list(private)
    for _ in range(updates):
        uid = user_ids[int(rng.integers(len(user_ids)))]
        region = private.region_of(uid)
        dx = float(rng.uniform(-1, 1))
        dy = float(rng.uniform(-1, 1))
        stream.append((uid, region.translated(dx, dy).clipped(workload.bounds)))

    # Apply the store updates first so both strategies are timed purely on
    # *answer maintenance*, not on shared R-tree bookkeeping.
    final_regions: dict = {}
    for uid, region in stream:
        final_regions[uid] = region
    start = time.perf_counter()
    for uid, region in stream:
        monitor.on_region_update(uid, region)
    incremental_time = time.perf_counter() - start
    for uid, region in final_regions.items():
        private.set_region(uid, region)
    incremental_expected = monitor.expected_count

    # Baseline: full recompute after every update (measured on a slice and
    # extrapolated — running all of them would dominate the harness).
    probe = max(1, updates // 50)
    start = time.perf_counter()
    for _ in range(probe):
        monitor.recompute(private)
    recompute_time = (time.perf_counter() - start) / probe * updates
    recomputed = monitor.recompute(private)

    table = Table(
        "E12: continuous count query maintenance",
        ["strategy", "updates", "seconds", "updates/s", "expected_count"],
    )
    table.add_row(
        "incremental",
        updates,
        incremental_time,
        updates / incremental_time,
        incremental_expected,
    )
    table.add_row(
        "recompute",
        updates,
        recompute_time,
        updates / recompute_time,
        recomputed.expected,
    )
    return table


def run_e12_delta_transmission(
    n_users: int = 1000,
    n_pois: int = 400,
    steps: int = 25,
    k: int = 20,
    radius: float = 8.0,
    seed: int = 7,
) -> Table:
    """Delta shipping for a continuous private range query."""
    workload = build_workload(n_users=n_users, n_pois=n_pois, seed=seed)
    store = poi_store(workload)
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    model = RandomWaypointModel(
        workload.bounds, np.random.default_rng(seed + 14), speed_range=(0.5, 1.5)
    )
    for i, point in enumerate(workload.users):
        model.add_user(i, point)
    victim = 0
    requirement = PrivacyRequirement(k=k)
    continuous = ContinuousPrivateRange(store, radius=radius)
    full_cost = 0
    for _ in range(steps):
        positions = model.step(1.0)
        cloaker.move_user(victim, positions[victim])
        region = cloaker.cloak(victim, requirement).region
        continuous.on_region_update(region)
        full_cost += continuous.full_answer_cost
    table = Table(
        "E12 delta: continuous private range transmission",
        ["strategy", "steps", "objects_shipped", "objects/step"],
    )
    table.add_row(
        "delta", steps, continuous.objects_shipped, continuous.objects_shipped / steps
    )
    table.add_row("full-reship", steps, full_cost, full_cost / steps)
    return table


# ----------------------------------------------------------------------
# E13 — extension: spatio-temporal cloaking (time-for-space trade)
# ----------------------------------------------------------------------

def run_e13_temporal(
    n_users: int = 800,
    ks: Sequence[int] = (2, 5, 10),
    region_side: float = 4.0,
    steps: int = 40,
    requests: int = 40,
    seed: int = 7,
) -> Table:
    """Delay paid for a fixed small region vs the area a spatial cloaker
    needs for the same k — the two currencies of location privacy."""
    from repro.cloaking.temporal import TemporalCloaker

    workload = build_workload(n_users=n_users, seed=seed)
    table = Table(
        "E13 (extension): temporal vs spatial cloaking",
        [
            "k",
            "temporal_area",
            "release_rate",
            "mean_delay",
            "spatial_area(pyramid)",
        ],
    )
    spatial = loaded_cloaker(PyramidCloaker, workload, height=6)
    rng = np.random.default_rng(seed + 15)
    victims = sample_victims(workload, requests, rng)
    for k in ks:
        requirement = PrivacyRequirement(k=k)
        temporal = TemporalCloaker(
            workload.bounds,
            region_side=region_side,
            window=float(steps),
            max_delay=float(steps),
        )
        model = RandomWaypointModel(
            workload.bounds, np.random.default_rng(seed + 16), speed_range=(0.5, 2.0)
        )
        for i, point in enumerate(workload.users):
            model.add_user(i, point)
        temporal.observe_step(0.0, {i: p for i, p in enumerate(workload.users)})
        for victim in victims:
            temporal.request(0.0, victim, requirement)
        for step in range(1, steps + 1):
            temporal.observe_step(float(step), model.step(1.0))
            temporal.tick(float(step))
        released = temporal.released
        release_rate = len(released) / requests
        mean_delay = (
            float(np.mean([r.delay for r in released])) if released else float("nan")
        )
        spatial_areas = [
            spatial.cloak(victim, requirement).area for victim in victims
        ]
        table.add_row(
            k,
            region_side * region_side,
            release_rate,
            mean_delay,
            float(np.mean(spatial_areas)),
        )
    return table


# ----------------------------------------------------------------------
# E14 — related-work baseline: false dummies
# ----------------------------------------------------------------------

def run_e14_dummies(
    n_dummy_counts: Sequence[int] = (2, 4, 8),
    updates: int = 15,
    n_pois: int = 400,
    radius: float = 5.0,
    seed: int = 7,
) -> Table:
    """Privacy and query cost of false dummies vs cloaking.

    Privacy: plausible-set size after the movement-consistency attack.
    Cost: objects a private range query must ship (one answer per sent
    point, vs one candidate set for a cloaked region at matching k).
    """
    from repro.cloaking.dummies import DummyGenerator, dummy_posterior_size

    workload = build_workload(n_users=800, n_pois=n_pois, seed=seed)
    store = poi_store(workload)
    model = RandomWaypointModel(
        workload.bounds, np.random.default_rng(seed + 17), speed_range=(1.0, 1.0)
    )
    model.add_user("victim", workload.users[0])
    trajectory = [workload.users[0]]
    for _ in range(updates - 1):
        trajectory.append(model.step(1.0)["victim"])

    table = Table(
        "E14 (related work): false dummies vs cloaking",
        ["variant", "points_sent", "posterior_size", "range_transmission"],
    )
    for consistent in (False, True):
        for n_dummies in n_dummy_counts:
            generator = DummyGenerator(
                workload.bounds,
                n_dummies,
                np.random.default_rng(seed + 18),
                consistent=consistent,
            )
            reports = [generator.report("victim", p) for p in trajectory]
            posterior = dummy_posterior_size(reports, max_speed=1.0, dt=1.0)
            # Query cost: the server answers a plain range query around
            # every transmitted point of the final report.
            last = reports[-1]
            transmission = sum(
                len(exact_range_answer(store, p, radius)) for p in last.locations
            )
            table.add_row(
                "consistent" if consistent else "naive",
                n_dummies + 1,
                posterior,
                transmission,
            )
    # Reference: pyramid cloaking at a comparable nominal anonymity.
    cloaker = loaded_cloaker(PyramidCloaker, workload, height=6)
    for k in [n + 1 for n in n_dummy_counts]:
        region = cloaker.cloak(0, PrivacyRequirement(k=k)).region
        result = private_range_query(store, region, radius)
        table.add_row(f"pyramid k={k}", 1, float(k), len(result.candidates))
    return table


def run_all(fast: bool = True) -> list[Table]:
    """Run every experiment at default (laptop) scale."""
    tables = [run_e1_profile()]
    tables.append(run_e2_data_dependent())
    tables.append(run_e2_clique())
    tables.append(run_e3_space_dependent())
    tables.append(run_e3_ablation_pyramid())
    tables.append(run_e4_scalability())
    tables.append(run_e4_scale_sweep())
    tables.append(run_e5_private_range())
    tables.append(run_e6_private_nn())
    tables.extend(run_e7_public_count())
    tables.append(run_e8_public_nn())
    tables.append(figure_6b_example())
    tables.append(run_e9_tradeoff())
    tables.append(run_e9_by_algorithm())
    tables.append(run_e10_attacks())
    tables.append(run_e10_density())
    tables.append(run_e10_linkage())
    tables.append(run_e11_transmission())
    tables.append(run_e12_continuous())
    tables.append(run_e12_delta_transmission())
    tables.append(run_e13_temporal())
    tables.append(run_e14_dummies())
    return tables
