"""Quality-of-service and privacy metrics.

The paper frames the system as a dial between *information revealed* and
*quality of service obtained*.  These helpers standardise how each side of
the dial is scored across all experiments:

* privacy side — cloaked area, relative area (vs. the smallest region that
  could have satisfied k), k-satisfaction, posterior anonymity (in
  :mod:`repro.attacks`);
* QoS side — candidate-set size, transmission overhead, probabilistic
  answer error and uncertainty.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.cloaking.base import CloakResult, Cloaker
from repro.geometry.point import Point
from repro.geometry.rect import Rect


def smallest_k_area(cloaker: Cloaker, point: Point, k: int) -> float:
    """Area of the kNN MBR at ``point`` — a lower bound reference.

    The MBR of the user's k nearest users is (close to) the smallest
    axis-aligned region any algorithm could return while containing k
    users; the ratio of an algorithm's area to this is its *relative
    area* (1.0 = as tight as data-dependent cloaking can be).
    """
    xs, ys = cloaker.snapshot_arrays()
    d2 = (xs - point.x) ** 2 + (ys - point.y) ** 2
    if k >= len(d2):
        idx = np.arange(len(d2))
    else:
        idx = np.argpartition(d2, k - 1)[:k]
    min_x, max_x = float(xs[idx].min()), float(xs[idx].max())
    min_y, max_y = float(ys[idx].min()), float(ys[idx].max())
    return Rect(min_x, min_y, max_x, max_y).area


def relative_area(result: CloakResult, reference_area: float) -> float:
    """Cloaked area over the reference (kNN MBR) area.

    Degenerate references (co-located users) are floored at a tiny area so
    the ratio stays finite.
    """
    return result.area / max(reference_area, 1e-12)


def mean_and_p95(values: Sequence[float]) -> tuple[float, float]:
    """Mean and 95th percentile, the two numbers every table reports."""
    if not values:
        raise ValueError("no values to aggregate")
    arr = np.asarray(values, dtype=float)
    return float(arr.mean()), float(np.percentile(arr, 95))


def count_answer_error(expected: float, truth: int) -> float:
    """Absolute error of a probabilistic count's expected value."""
    return abs(expected - truth)


def normalized_count_error(expected: float, truth: int) -> float:
    """Count error normalised by ``max(1, truth)`` (comparable across windows)."""
    return abs(expected - truth) / max(1, truth)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (the right average for ratio metrics)."""
    if not values:
        raise ValueError("no values to aggregate")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return float(math.exp(np.mean(np.log(np.asarray(values, dtype=float)))))
