"""stdlib HTTP telemetry endpoint: /metrics, /health, /risk, /timeseries.

The paper's trusted third party is a *service*; external monitors (and
the ROADMAP's future shard aggregators) watch services over the network,
not by importing their modules.  :class:`TelemetryEndpoint` exposes a
running :class:`~repro.core.system.PrivacySystem` on an
``http.server.ThreadingHTTPServer``:

- ``GET /metrics`` — Prometheus text exposition (reuses
  :func:`repro.obs.export.to_prometheus` on the live snapshot);
- ``GET /health`` — the SLO :class:`HealthReport` as JSON, status 503
  when any objective is violated (load-balancer semantics);
- ``GET /risk`` — the online :class:`~repro.obs.risk.PrivacyRiskMonitor`
  report (fresh score per scrape);
- ``GET /timeseries`` — the windowed
  :class:`~repro.obs.timeseries.TimeSeriesStore` snapshot;
- ``GET /`` — a JSON index of the above.

Routing is a pure function (:meth:`TelemetryEndpoint.respond`) so the
body/status logic is unit-testable without sockets; the HTTP layer adds
only framing.  Reads race benignly with the serving thread — snapshots
iterate over list() copies and the GIL keeps single dict reads atomic —
which is the same trade the in-process exporters already make.

``validate_exposition`` checks Prometheus text-format well-formedness
(the ``make serve-smoke`` gate).
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING

from repro.obs.export import to_prometheus
from repro.obs.slo import EXIT_SLO_VIOLATION, SLOMonitor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import PrivacySystem

#: Paths the endpoint serves (the JSON index body).
ENDPOINT_PATHS = ("/metrics", "/health", "/risk", "/timeseries")

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \S+( \d+)?$"
)
_COMMENT_RE = re.compile(r"^#\s(HELP|TYPE)\s[a-zA-Z_:][a-zA-Z0-9_:]*(\s.*)?$")


def validate_exposition(text: str) -> list[str]:
    """Problems with a Prometheus text-exposition body (empty = valid).

    Checks line shape (``name{labels} value``), float-parsable sample
    values, and balanced label quoting — the format properties a real
    scraper would reject on.
    """
    problems: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not _COMMENT_RE.match(line):
                problems.append(f"line {lineno}: malformed comment: {line!r}")
            continue
        if not _SAMPLE_RE.match(line):
            problems.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        value = line.rsplit("}", 1)[-1].strip().split()[0] if "}" in line else line.split()[1]
        try:
            float(value)
        except ValueError:
            problems.append(f"line {lineno}: non-numeric value: {value!r}")
        if line.count('"') % 2:
            problems.append(f"line {lineno}: unbalanced label quotes")
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    return problems


class TelemetryEndpoint:
    """HTTP face of one :class:`PrivacySystem`'s telemetry.

    Args:
        system: the system to expose; monitoring (time-series + risk) is
            enabled on it if not already.
        slo_monitor: objectives behind ``/health`` (default
            :data:`DEFAULT_SLOS` via a fresh :class:`SLOMonitor`).
    """

    def __init__(
        self,
        system: "PrivacySystem",
        slo_monitor: SLOMonitor | None = None,
    ) -> None:
        self.system = system
        self.slo_monitor = slo_monitor if slo_monitor is not None else SLOMonitor()
        if system.timeseries is None or system.risk is None:
            system.enable_monitoring()
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    # Pure routing (unit-testable without sockets)
    # ------------------------------------------------------------------

    def respond(self, path: str) -> tuple[int, str, str]:
        """Route one GET: returns (status, content_type, body)."""
        self.requests_served += 1
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            return (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                to_prometheus(self.system.telemetry()),
            )
        if path == "/health":
            report = self.slo_monitor.evaluate(self.system)
            status = 200 if report.healthy else 503
            return status, "application/json", _json(report.to_dict())
        if path == "/risk":
            if self.system.risk is None:  # pragma: no cover - ctor enables
                return 404, "application/json", _json({"error": "risk monitoring disabled"})
            return 200, "application/json", _json(self.system.risk.report())
        if path == "/timeseries":
            if self.system.timeseries is None:  # pragma: no cover
                return 404, "application/json", _json({"error": "time-series disabled"})
            # A scrape is a natural sampling tick: cut a window if due.
            self.system.timeseries.maybe_sample()
            return 200, "application/json", _json(self.system.timeseries.snapshot())
        if path == "/":
            return 200, "application/json", _json(
                {
                    "service": "repro-telemetry",
                    "paths": list(ENDPOINT_PATHS),
                    "requests_served": self.requests_served,
                }
            )
        return 404, "application/json", _json(
            {"error": f"unknown path {path!r}", "paths": list(ENDPOINT_PATHS)}
        )

    # ------------------------------------------------------------------
    # Socket lifecycle
    # ------------------------------------------------------------------

    def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Bind and serve in a daemon thread; returns (host, bound_port).

        ``port=0`` asks the OS for an ephemeral port (the smoke-test and
        CI path — no collisions, no configuration).
        """
        if self._server is not None:
            raise RuntimeError("endpoint already started")
        endpoint = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                status, content_type, body = endpoint.respond(self.path)
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args: object) -> None:
                pass  # quiet: the CLI owns stdout

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-telemetry", daemon=True
        )
        self._thread.start()
        bound_host, bound_port = self._server.server_address[:2]
        return str(bound_host), int(bound_port)

    def shutdown(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        server, thread = self._server, self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    @property
    def running(self) -> bool:
        return self._server is not None


def scrape(host: str, port: int, path: str) -> tuple[int, str]:
    """Minimal stdlib GET against a running endpoint (smoke tests)."""
    import http.client

    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        conn.close()


def smoke(system: "PrivacySystem", host: str = "127.0.0.1") -> dict:
    """Start, scrape every path, validate, shut down; returns a verdict.

    The ``make serve-smoke`` body: asserts the exposition format parses,
    the JSON endpoints round-trip, /health carries the SLO verdict (503
    maps to exit code 4 semantics), and shutdown releases the socket.
    """
    endpoint = TelemetryEndpoint(system)
    bound_host, port = endpoint.start(host=host, port=0)
    problems: list[str] = []
    checks: dict[str, dict] = {}
    try:
        status, body = scrape(bound_host, port, "/metrics")
        checks["/metrics"] = {"status": status, "bytes": len(body)}
        if status != 200:
            problems.append(f"/metrics returned {status}")
        problems.extend(validate_exposition(body))

        status, body = scrape(bound_host, port, "/health")
        health = json.loads(body)
        checks["/health"] = {"status": status, "healthy": health["healthy"]}
        if health["healthy"] != (status == 200):
            problems.append("/health status disagrees with verdict")
        if not health["healthy"] and health["exit_code"] != EXIT_SLO_VIOLATION:
            problems.append("/health exit_code mismatch")

        status, body = scrape(bound_host, port, "/risk")
        risk = json.loads(body)
        checks["/risk"] = {"status": status, "schema": risk.get("schema")}
        if status != 200 or risk.get("schema") != "repro.obs.risk/1":
            problems.append(f"/risk invalid (status {status})")

        status, body = scrape(bound_host, port, "/timeseries")
        series = json.loads(body)
        checks["/timeseries"] = {
            "status": status,
            "windows": len(series.get("windows", [])),
        }
        if status != 200:
            problems.append(f"/timeseries returned {status}")
    finally:
        endpoint.shutdown()
    if endpoint.running:
        problems.append("endpoint still running after shutdown")
    return {
        "ok": not problems,
        "host": bound_host,
        "port": port,
        "checks": checks,
        "problems": problems,
    }


def _json(payload: dict) -> str:
    return json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
