"""Declarative SLO specs and the rolling health monitor.

The paper's user profiles are QoS contracts — each user names the
privacy (k, A_min) she requires and implicitly the service quality she
expects back.  This module states the *system-wide* counterpart as
data: a tuple of :class:`SLOSpec` values (p95 per-stage latency,
privacy-attainment rate, degradation rate, snapshot-reuse rate,
planner mispredict ratio, answer accuracy), evaluated by
:class:`SLOMonitor` over the rolling event-log window and the
telemetry snapshot into a typed :class:`HealthReport` with stable exit
codes — ``python -m repro health`` is the operational front door, and
CI smoke-checks it.

Two evidence sources, deliberately different windows:

* **event-derived** SLOs (attainment, degradation, snapshot reuse,
  mispredict ratio, accuracy) evaluate over the last ``window`` events
  of the ring buffer — a *rolling* view that recovers when the system
  does;
* **latency** SLOs read the span histograms, which are lifetime
  aggregates — drift detection across restarts belongs to
  ``BENCH_HISTORY.jsonl``, not this monitor.

A spec with no evidence in the window (e.g. snapshot-reuse before any
batch ran) passes vacuously with ``measured=None`` — absence of
traffic is not an outage.  Evaluation emits one ``slo.evaluated``
event and publishes ``slo.ok{slo=...}`` / ``slo.value{slo=...}``
gauges so dashboards and the Prometheus exporter carry the verdict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.obs.accuracy import PlanAccuracyAuditor
from repro.obs.audit import PrivacyAuditor
from repro.obs.events import (
    RISK_SCORED,
    SLO_EVALUATED,
    SNAPSHOT_CAPTURED,
    SNAPSHOT_DELTA,
    SNAPSHOT_REUSED,
    Event,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import PrivacySystem
    from repro.obs import Telemetry

#: Report envelope schema tag.
SLO_SCHEMA = "repro.obs.slo/1"

#: Process exit code for "one or more SLOs violated" (``repro health``).
#: Distinct from the audit CLI's 2 and bench-history's 3.
EXIT_SLO_VIOLATION = 4

#: Rolling event window (most recent events) for event-derived SLOs.
DEFAULT_WINDOW = 512

#: Spec kinds -> (comparison direction, unit).  ``<=`` kinds are upper
#: bounds (latency, degradation); ``>=`` kinds are floors (attainment).
SLO_KINDS: dict[str, tuple[str, str]] = {
    "latency_p95": ("<=", "ms"),
    "attainment_rate": (">=", "rate"),
    "degradation_rate": ("<=", "rate"),
    "undeclared_violations": ("<=", "count"),
    "snapshot_reuse_rate": (">=", "rate"),
    "mispredict_ratio": ("<=", "x"),
    "query_accuracy": (">=", "rate"),
    "reidentification_risk": ("<=", "rate"),
    "k_attainment_entropy": (">=", "bits"),
}


@dataclass(frozen=True)
class SLOSpec:
    """One declarative service-level objective.

    Attributes:
        name: unique label (the gauge/report key).
        kind: one of :data:`SLO_KINDS`.
        target: the bound, in the kind's unit.
        stage: span name, required for (and only for) ``latency_p95``.
        description: one human line for reports.
    """

    name: str
    kind: str
    target: float
    stage: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; known: {sorted(SLO_KINDS)}"
            )
        if (self.kind == "latency_p95") != (self.stage is not None):
            raise ValueError(
                "stage is required for latency_p95 specs and meaningless "
                f"for any other kind (got kind={self.kind!r}, "
                f"stage={self.stage!r})"
            )

    @property
    def direction(self) -> str:
        return SLO_KINDS[self.kind][0]

    @property
    def unit(self) -> str:
        return SLO_KINDS[self.kind][1]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "stage": self.stage,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "SLOSpec":
        return cls(
            name=str(record["name"]),
            kind=str(record["kind"]),
            target=float(record["target"]),
            stage=record.get("stage"),
            description=str(record.get("description", "")),
        )


def load_slos(path: str) -> tuple[SLOSpec, ...]:
    """Read a JSON list of spec dicts (the ``--specs`` CLI flag)."""
    with open(path, "r", encoding="utf-8") as handle:
        records = json.load(handle)
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a JSON list of SLO spec objects")
    return tuple(SLOSpec.from_dict(record) for record in records)


#: The stock objectives ``python -m repro health`` evaluates.  Latency
#: bounds are generous — they catch pathologies, not CI-runner jitter;
#: the behavioural floors mirror the paper's contracts (answers exact,
#: every degradation declared).
DEFAULT_SLOS: tuple[SLOSpec, ...] = (
    SLOSpec(
        "cloak_latency_p95",
        "latency_p95",
        250.0,
        stage="anonymizer.cloak",
        description="per-cloak p95 stays interactive",
    ),
    SLOSpec(
        "private_range_latency_p95",
        "latency_p95",
        250.0,
        stage="server.private_range",
        description="candidate generation p95 stays interactive",
    ),
    SLOSpec(
        "attainment",
        "attainment_rate",
        0.5,
        description="cloaks fully attaining their (k, A_min) requirement",
    ),
    SLOSpec(
        "degradation",
        "degradation_rate",
        0.5,
        description="declared best-effort degradations stay the exception",
    ),
    SLOSpec(
        "undeclared_violations",
        "undeclared_violations",
        0.0,
        description="every missed requirement is declared (paper contract)",
    ),
    SLOSpec(
        "snapshot_reuse",
        "snapshot_reuse_rate",
        0.0,
        description="batch rounds answered without re-freezing (informational floor)",
    ),
    SLOSpec(
        "plan_accuracy",
        "mispredict_ratio",
        32.0,
        description=(
            "planner cost predictions within ~1.5 orders of magnitude "
            "(small workloads are dominated by fixed per-query overhead)"
        ),
    ),
    SLOSpec(
        "answer_accuracy",
        "query_accuracy",
        0.99,
        description="refined private-query answers match ground truth",
    ),
    SLOSpec(
        "reidentification_risk",
        "reidentification_risk",
        0.9,
        description=(
            "mean posterior re-identification probability stays below "
            "near-certain (risk monitor evidence)"
        ),
    ),
    SLOSpec(
        "k_attainment_entropy",
        "k_attainment_entropy",
        0.0,
        description=(
            "anonymity entropy the cloaks deliver (informational floor)"
        ),
    ),
)


@dataclass(frozen=True)
class SLOResult:
    """One evaluated objective.

    ``measured is None`` means the window held no evidence for this
    spec; the objective passes vacuously (``ok=True``) and the detail
    says so.
    """

    spec: SLOSpec
    measured: float | None
    ok: bool
    detail: str

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "measured": self.measured,
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass
class HealthReport:
    """The typed verdict ``python -m repro health`` prints and exits on."""

    results: list[SLOResult] = field(default_factory=list)
    window: int = DEFAULT_WINDOW
    events_seen: int = 0

    @property
    def healthy(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def violated(self) -> list[SLOResult]:
        return [result for result in self.results if not result.ok]

    @property
    def exit_code(self) -> int:
        return 0 if self.healthy else EXIT_SLO_VIOLATION

    def to_dict(self) -> dict:
        return {
            "schema": SLO_SCHEMA,
            "healthy": self.healthy,
            "exit_code": self.exit_code,
            "window": self.window,
            "events_seen": self.events_seen,
            "ok": sum(result.ok for result in self.results),
            "total": len(self.results),
            "violated": [result.spec.name for result in self.violated],
            "results": [result.to_dict() for result in self.results],
        }

    def render(self) -> str:
        """ASCII verdict table (the ``repro health`` default output)."""
        verdict = "HEALTHY" if self.healthy else "UNHEALTHY"
        ok = sum(result.ok for result in self.results)
        lines = [
            f"== SLO health ==  {verdict} ({ok}/{len(self.results)} ok)  "
            f"window={self.window} events ({self.events_seen} seen)"
        ]
        if not self.results:
            lines.append("  (no SLO specs)")
            return "\n".join(lines)
        name_width = max(len(result.spec.name) for result in self.results)
        for result in self.results:
            mark = "ok " if result.ok else "FAIL"
            lines.append(
                f"  {mark:<4} {result.spec.name:<{name_width}}  {result.detail}"
            )
        return "\n".join(lines)


class SLOMonitor:
    """Evaluates :class:`SLOSpec` s against a live system or raw telemetry.

    Args:
        specs: objectives to evaluate (default :data:`DEFAULT_SLOS`).
        window: rolling event window for event-derived objectives.
    """

    def __init__(
        self,
        specs: Sequence[SLOSpec] = DEFAULT_SLOS,
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self.specs = tuple(specs)
        self.window = window

    def evaluate(
        self,
        system: "PrivacySystem | None" = None,
        *,
        snapshot: dict | None = None,
        events: Iterable[Event] | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> HealthReport:
        """One health verdict right now.

        Either pass a :class:`~repro.core.system.PrivacySystem` (its
        telemetry snapshot, event ring and sink are used), or supply
        ``snapshot`` (for latency specs) and ``events`` (for the rest)
        directly.  When a telemetry unit is reachable the verdict is
        itself observable: ``slo.ok`` / ``slo.value`` gauges are set and
        one ``slo.evaluated`` event is emitted.
        """
        if system is not None:
            snapshot = system.telemetry() if snapshot is None else snapshot
            events = (
                list(system.obs.events.events()) if events is None else events
            )
            telemetry = system.obs if telemetry is None else telemetry
        event_list = list(events) if events is not None else []
        windowed = event_list[-self.window :]
        stages = (snapshot or {}).get("stages", {})

        audit = PrivacyAuditor().consume(windowed).report()
        accuracy = PlanAccuracyAuditor().consume(windowed).report()
        snapshot_counts = {
            kind: 0
            for kind in (SNAPSHOT_REUSED, SNAPSHOT_CAPTURED, SNAPSHOT_DELTA)
        }
        for event in windowed:
            if event.kind in snapshot_counts:
                snapshot_counts[event.kind] += 1
        # Risk evidence: the newest risk.scored event in the window (the
        # online monitor emits one per sampling tick).  No monitoring
        # enabled -> no event -> the risk SLOs pass vacuously.
        risk: dict | None = None
        for event in reversed(windowed):
            if event.kind == RISK_SCORED:
                risk = event.attrs
                break

        results = [
            self._evaluate_one(
                spec, stages, audit, accuracy, snapshot_counts, risk
            )
            for spec in self.specs
        ]
        report = HealthReport(
            results=results, window=self.window, events_seen=len(event_list)
        )
        if telemetry is not None:
            for result in results:
                telemetry.set_gauge(
                    "slo.ok", float(result.ok), slo=result.spec.name
                )
                if result.measured is not None:
                    telemetry.set_gauge(
                        "slo.value", result.measured, slo=result.spec.name
                    )
            telemetry.emit(
                SLO_EVALUATED,
                healthy=report.healthy,
                ok=sum(result.ok for result in results),
                total=len(results),
                violated=[result.spec.name for result in report.violated],
                window=self.window,
            )
        return report

    # ------------------------------------------------------------------

    def _evaluate_one(
        self,
        spec: SLOSpec,
        stages: dict,
        audit: dict,
        accuracy: dict,
        snapshot_counts: dict,
        risk: dict | None,
    ) -> SLOResult:
        measured = self._measure(
            spec, stages, audit, accuracy, snapshot_counts, risk
        )
        if measured is None:
            return SLOResult(
                spec,
                None,
                True,
                f"no evidence in window (vacuously ok, target "
                f"{spec.direction} {spec.target:g}{_unit_suffix(spec)})",
            )
        ok = (
            measured <= spec.target
            if spec.direction == "<="
            else measured >= spec.target
        )
        return SLOResult(
            spec,
            measured,
            ok,
            f"{measured:g}{_unit_suffix(spec)} {spec.direction} "
            f"{spec.target:g}{_unit_suffix(spec)}",
        )

    def _measure(
        self,
        spec: SLOSpec,
        stages: dict,
        audit: dict,
        accuracy: dict,
        snapshot_counts: dict,
        risk: dict | None,
    ) -> float | None:
        kind = spec.kind
        if kind == "latency_p95":
            stage = stages.get(spec.stage)
            if not stage or not stage.get("count"):
                return None
            return float(stage["p95_ms"])
        totals = audit["totals"]
        if kind == "attainment_rate":
            if not totals["cloaks"]:
                return None
            return float(totals["attainment_rate"])
        if kind == "degradation_rate":
            if not totals["cloaks"]:
                return None
            return totals["degraded_declared"] / totals["cloaks"]
        if kind == "undeclared_violations":
            if not totals["cloaks"]:
                return None
            return float(totals["undeclared_violations"])
        if kind == "snapshot_reuse_rate":
            rounds = sum(snapshot_counts.values())
            if not rounds:
                return None
            return snapshot_counts[SNAPSHOT_REUSED] / rounds
        if kind == "mispredict_ratio":
            if not accuracy["measured"]:
                return None
            return float(accuracy["median_folded"])
        if kind == "query_accuracy":
            queries = audit["queries"]
            total = sum(entry["count"] for entry in queries.values())
            if not total:
                return None
            correct = sum(
                entry["accuracy"] * entry["count"]
                for entry in queries.values()
            )
            return correct / total
        if kind == "reidentification_risk":
            if risk is None or risk.get("reidentification") is None:
                return None
            return float(risk["reidentification"])
        if kind == "k_attainment_entropy":
            if risk is None or risk.get("k_attainment_entropy_bits") is None:
                return None
            return float(risk["k_attainment_entropy_bits"])
        raise ValueError(f"unknown SLO kind: {kind!r}")  # pragma: no cover


def _unit_suffix(spec: SLOSpec) -> str:
    unit = spec.unit
    if unit == "ms":
        return " ms"
    if unit == "x":
        return "x"
    if unit == "bits":
        return " bits"
    return ""
