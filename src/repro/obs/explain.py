"""Per-query EXPLAIN: structured plan trees for every query path.

``EXPLAIN`` answers *why this answer cost what it cost*: which index was
chosen, how many nodes it visited, which pruning decisions fired, and
whether the batch engine took a vectorised kernel or the scalar
fallback.  A :class:`QueryExplainer` **executes the query for real**
against its server — the reported index counters are measured deltas of
the stores' :class:`~repro.index.base.IndexCounters`, not estimates, so
a plan's ``node_visits`` equals exactly the work a plain call would
have done (held by ``tests/property/test_prop_obs_events.py``).

Plans are :class:`PlanNode` trees rendered two ways: machine-readable
JSON (:func:`plan_to_json`) and an ASCII tree (:func:`render_plan`),
both behind ``python -m repro explain``.  The default CLI plan is the
paper's own Figure 6a count query, whose leaves carry the worked
example's membership probabilities 1.0 / 0.75 / 0.5 / 0.2 / 0.25.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import IndexCounters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import LocationServer
    from repro.engine.queries import BatchQuery

#: Vectorised kernel behind each batch kind (``None``: inherently scalar).
BATCH_KERNELS: dict[str, str | None] = {
    "public_range": "points_in_windows_grid",
    "public_nn": "knn_points_grid",
    "public_count": "rects_intersecting_window + membership_probabilities",
    "private_range": "points_within_radius / points_in_windows",
    "private_nn": None,
}

#: Canonical result-order policy per batch kind (docs/batch_engine.md).
TIE_BREAK: dict[str, str] = {
    "public_range": "snapshot row order",
    "public_nn": "distance, then snapshot rank",
    "public_count": "snapshot row order",
    "private_range": "snapshot row order",
    "private_nn": "snapshot row order",
}


@dataclass
class PlanNode:
    """One operator of an executed query plan.

    Attributes:
        op: operator name (``"index.range_query"``, ``"filter.exact"``...).
        detail: the operator's measured facts (counts, parameters,
            decisions) — plain JSON-serialisable values.
        children: sub-operators in execution order.
    """

    op: str
    detail: dict = field(default_factory=dict)
    children: list["PlanNode"] = field(default_factory=list)

    def add(self, op: str, **detail: object) -> "PlanNode":
        """Append and return a child node (builder convenience)."""
        child = PlanNode(op, dict(detail))
        self.children.append(child)
        return child

    def find(self, op: str) -> list["PlanNode"]:
        """All nodes (depth-first, self included) with operator ``op``."""
        found = [self] if self.op == op else []
        for child in self.children:
            found.extend(child.find(op))
        return found

    def leaves(self) -> list["PlanNode"]:
        """Nodes with no children, depth-first."""
        if not self.children:
            return [self]
        out: list[PlanNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "detail": dict(self.detail),
            "children": [child.to_dict() for child in self.children],
        }


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def plan_to_json(plan: PlanNode, indent: int | None = 2) -> str:
    """The plan tree as a JSON document."""
    return json.dumps(plan.to_dict(), indent=indent, sort_keys=True, default=str)


def _fmt_value(value: object) -> str:
    if isinstance(value, float):
        return format(value, "g")
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_fmt_value(v) for v in value) + "]"
    return str(value)


def render_plan(plan: PlanNode) -> str:
    """ASCII tree rendering: one line per operator, details inline."""
    lines: list[str] = []

    def walk(node: PlanNode, prefix: str, is_last: bool, is_root: bool) -> None:
        detail = "  ".join(f"{k}={_fmt_value(v)}" for k, v in node.detail.items())
        if is_root:
            lines.append(f"{node.op}" + (f"  {detail}" if detail else ""))
            child_prefix = ""
        else:
            branch = "└─ " if is_last else "├─ "
            lines.append(prefix + branch + node.op + (f"  {detail}" if detail else ""))
            child_prefix = prefix + ("   " if is_last else "│  ")
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1, False)

    walk(plan, "", True, True)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The explainer
# ----------------------------------------------------------------------

def _rect_list(rect: Rect) -> list[float]:
    return [rect.min_x, rect.min_y, rect.max_x, rect.max_y]


class QueryExplainer:
    """EXPLAIN for every query path of one :class:`LocationServer`.

    Each ``explain_*`` method runs the query through the server's normal
    entry point, measures the index-counter delta it caused, and returns
    the plan tree with the answer summary on the root node.
    """

    def __init__(self, server: "LocationServer") -> None:
        self.server = server

    @contextmanager
    def _measured(self, counters: IndexCounters, sink: dict) -> Iterator[None]:
        """Fill ``sink`` with the counter delta of the enclosed execution."""
        before = counters.snapshot()
        yield
        after = counters.snapshot()
        sink.update({name: after[name] - before[name] for name in after})

    # ------------------------------------------------------------------
    # Public queries over public data
    # ------------------------------------------------------------------

    def explain_public_range(self, window: Rect) -> PlanNode:
        """Classic exact range query over the public store."""
        delta: dict = {}
        with self._measured(self.server.public.index_counters, delta):
            ids = self.server.public_range_over_public(window)
        plan = PlanNode(
            "public_range",
            {"window": _rect_list(window), "matched": len(ids),
             "order": TIE_BREAK["public_range"]},
        )
        plan.add("index.range_query", index="rtree", store="public", **delta)
        return plan

    def explain_public_knn(self, point: Point, k: int = 1) -> PlanNode:
        """Classic exact k-NN query over the public store."""
        delta: dict = {}
        with self._measured(self.server.public.index_counters, delta):
            ids = self.server.public_nn_over_public(point, k)
        plan = PlanNode(
            "public_knn",
            {"point": [point.x, point.y], "k": k, "answered": len(ids),
             "tie_break": TIE_BREAK["public_nn"]},
        )
        plan.add("index.nearest", index="rtree", store="public", **delta)
        return plan

    # ------------------------------------------------------------------
    # Public queries over private data (Figure 6)
    # ------------------------------------------------------------------

    def explain_public_count(self, window: Rect) -> PlanNode:
        """Probabilistic count (Figure 6a): one leaf per possible member."""
        delta: dict = {}
        with self._measured(self.server.private.index_counters, delta):
            answer = self.server.public_count(window)
        lo, hi = answer.interval
        plan = PlanNode(
            "public_count",
            {"window": _rect_list(window), "expected": answer.expected,
             "interval": [lo, hi], "possible": len(answer.probabilities)},
        )
        plan.add("index.range_query", index="rtree", store="private", **delta)
        # Leaves in store insertion order: deterministic regardless of the
        # backing index's internal layout (the Figure 6a golden relies on
        # this reading D, A, B, E, F).
        for object_id, region in self.server.private.items():
            probability = answer.probabilities.get(object_id)
            if probability is None:
                continue
            plan.add(
                "region.probability",
                object=object_id,
                probability=float(probability),
                region_area=region.area,
            )
        return plan

    def explain_public_nn(self, point: Point, samples: int = 4096) -> PlanNode:
        """Probabilistic NN over private data (Figure 6b)."""
        delta: dict = {}
        with self._measured(self.server.private.index_counters, delta):
            result = self.server.public_nn(point, samples)
        plan = PlanNode(
            "public_nn",
            {"point": [point.x, point.y],
             "candidates": len(result.answer.probabilities),
             "samples": result.samples},
        )
        plan.add("index.nearest_iter", index="rtree", store="private", **delta)
        plan.add(
            "pruning.bound",
            m=result.pruning_bound,
            rule="keep o with min_dist(q, R_o) <= min_o' max_dist(q, R_o')",
        )
        plan.add(
            "estimate.monte_carlo",
            samples=result.samples,
            skipped=result.samples == 0,
        )
        return plan

    # ------------------------------------------------------------------
    # Private queries over public data (Figure 5)
    # ------------------------------------------------------------------

    def explain_private_range(
        self, region: Rect, radius: float, method: str = "exact"
    ) -> PlanNode:
        """Candidate-set range query from a cloaked region (Figure 5a)."""
        delta: dict = {}
        with self._measured(self.server.public.index_counters, delta):
            result = self.server.private_range(region, radius, method)
        plan = PlanNode(
            "private_range",
            {"region": _rect_list(region), "radius": radius, "method": method,
             "candidates": len(result.candidates)},
        )
        plan.add(
            "expand.window",
            window=_rect_list(region.expanded(radius)),
            locus="rounded rectangle (Minkowski sum), prefiltered by its MBR",
        )
        plan.add("index.range_query", index="rtree", store="public", **delta)
        if method == "exact":
            plan.add(
                "filter.exact",
                kept=len(result.candidates),
                predicate="min_dist(point, region) <= radius",
            )
        else:
            plan.add(
                "filter.mbr",
                kept=len(result.candidates),
                predicate="none (MBR superset shipped as-is)",
            )
        return plan

    def explain_private_nn(self, region: Rect, method: str = "filter") -> PlanNode:
        """Candidate-set NN query from a cloaked region (Figure 5b)."""
        delta: dict = {}
        with self._measured(self.server.public.index_counters, delta):
            result = self.server.private_nn(region, method)
        plan = PlanNode(
            "private_nn",
            {"region": _rect_list(region), "method": method,
             "candidates": len(result.candidates)},
        )
        plan.add("index.nearest_iter", index="rtree", store="public", **delta)
        plan.add(
            "pruning.radius",
            m=result.pruning_radius,
            rule="m = min_o max_dist(region, o); farther objects never win",
        )
        if method in ("filter", "exact"):
            plan.add(
                "filter.dominance",
                rule="prune o when one competitor beats it over all of region",
                survivors=len(result.candidates) if method == "filter" else None,
            )
        if method == "exact":
            plan.add(
                "voronoi.clip",
                rule="keep o iff its Voronoi cell intersects region",
                survivors=len(result.candidates),
            )
        return plan

    def explain_private_knn(
        self, region: Rect, k: int, method: str = "filter"
    ) -> PlanNode:
        """Candidate-set k-NN query from a cloaked region (extension)."""
        from repro.queries.private_knn import private_knn_query

        delta: dict = {}
        with self._measured(self.server.public.index_counters, delta):
            result = private_knn_query(self.server.public, region, k, method)
        plan = PlanNode(
            "private_knn",
            {"region": _rect_list(region), "k": k, "method": method,
             "candidates": len(result.candidates)},
        )
        plan.add("index.nearest_iter", index="rtree", store="public", **delta)
        plan.add(
            "pruning.radius",
            m=result.pruning_radius,
            rule="max over corners of d_k(corner) + in_radius (1-Lipschitz bound)",
        )
        if method == "filter":
            plan.add(
                "filter.corner_dominance",
                rule="prune o when k competitors beat it at all four corners",
                survivors=len(result.candidates),
            )
        return plan

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def explain_batch(
        self, queries: Iterable["BatchQuery"], *, vectorize: bool = True
    ) -> PlanNode:
        """One heterogeneous batch through the engine, per-kind groups."""
        batch = list(queries)
        engine = self.server.engine
        cached = engine._cached
        reused = cached is not None and cached.matches(self.server)
        self.server.execute_batch(batch, vectorize=vectorize)
        snapshot = engine._cached
        plan = PlanNode("batch", {"size": len(batch), "vectorize": vectorize})
        plan.add(
            "snapshot",
            result="reused" if reused else "captured",
            n_public=snapshot.n_public if snapshot is not None else 0,
            n_private=snapshot.n_private if snapshot is not None else 0,
        )
        groups: dict[str, int] = {}
        for query in batch:
            groups[query.kind] = groups.get(query.kind, 0) + 1
        for kind, n in groups.items():
            vectorized = vectorize and kind != "private_nn"
            plan.add(
                f"engine.{kind}",
                n=n,
                path="vectorized" if vectorized else "scalar",
                kernel=(BATCH_KERNELS[kind] or "per-query processor")
                if vectorized
                else "per-query processor",
                tie_break=TIE_BREAK[kind],
            )
        return plan

    # ------------------------------------------------------------------
    # Bulk cloaking (the vectorized write path)
    # ------------------------------------------------------------------

    def explain_bulk_cloak(self, anonymizer, t: float = 0.0) -> PlanNode:
        """One vectorized population cloaking round end to end.

        Runs ``anonymizer.publish_all_bulk(t)`` against this explainer's
        server, measuring the private-store index work the bulk push
        caused, and renders the round's kernel path plus one
        ``cloak.group`` leaf per distinct requirement (the same
        aggregates the ``cloak.bulk`` events carry).
        """
        delta: dict = {}
        with self._measured(self.server.private.index_counters, delta):
            results = anonymizer.publish_all_bulk(t)
        outcome = anonymizer.last_bulk_outcome
        plan = PlanNode(
            "bulk_cloak",
            {"users": len(results), "t": t,
             "algo": outcome.algo, "path": outcome.path,
             "escalated": outcome.escalated, "degraded": outcome.degraded},
        )
        plan.add(
            "cloak.kernel",
            path=outcome.path,
            algo=outcome.algo,
            groups=len(outcome.groups),
            rule="one numpy pass per structure level; per-user cloaker is "
            "the differential oracle",
        )
        for group in outcome.groups:
            plan.add("cloak.group", **group)
        plan.add("store.set_regions", index="rtree", store="private", **delta)
        return plan

    # ------------------------------------------------------------------
    # Planned specs (the cost-based planner's chosen plans)
    # ------------------------------------------------------------------

    def explain_spec(self, spec) -> PlanNode:
        """EXPLAIN a declarative QuerySpec through the cost-based planner.

        Unlike the ``explain_*`` methods above, which show what a fixed
        entry point *did*, this shows what the planner *chose*: the
        decision subtree (chosen + rejected candidates with estimated
        seconds) followed by the measured execution under that choice.
        User-bound specs are rejected — cloak them first and explain the
        region-bound form.
        """
        if getattr(spec, "user", None) is not None:
            raise ValueError(
                "explain_spec() takes region-bound or public specs; "
                "user-bound specs run through PrivacySystem.query()"
            )
        planner = self.server.planner
        # One correlation scope over decide + execute: the plan tree
        # carries the same qid as the decision/measured event pair, so
        # EXPLAIN output joins the event trail (repro.obs.correlate).
        with self.server.telemetry.correlate("q") as qid:
            decision = planner.decide(spec)
            over_private = spec.kind == "count" or (
                getattr(spec, "dataset", "public") == "private"
            )
            store = self.server.private if over_private else self.server.public
            delta: dict = {}
            with self._measured(store.index_counters, delta):
                result = planner.execute(spec, decision=decision)
        if isinstance(result, tuple):
            answered = len(result)
        elif hasattr(result, "candidates"):
            answered = len(result.candidates)
        elif hasattr(result, "probabilities"):
            answered = len(result.probabilities)
        else:  # PublicNNResult
            answered = len(result.answer.probabilities)
        plan = PlanNode(
            f"planned.{decision.kind}",
            {"spec": spec.kind, "answered": answered, "qid": qid},
        )
        plan.children.append(decision.to_plan_node())
        plan.add(
            "execute",
            backend=decision.backend,
            route=decision.route,
            store="private" if over_private else "public",
            **delta,
        )
        return plan

    # ------------------------------------------------------------------
    # Dispatch by batch-query value
    # ------------------------------------------------------------------

    def explain(self, query: "BatchQuery") -> PlanNode:
        """EXPLAIN one batch-query value through its scalar path."""
        kind = query.kind
        if kind == "public_range":
            return self.explain_public_range(query.window)
        if kind == "public_nn":
            return self.explain_public_knn(query.point, query.k)
        if kind == "public_count":
            return self.explain_public_count(query.window)
        if kind == "private_range":
            return self.explain_private_range(
                query.region, query.radius, query.method
            )
        if kind == "private_nn":
            return self.explain_private_nn(query.region, query.method)
        raise ValueError(f"no EXPLAIN for query kind {kind!r}")


def explain_figure_6a() -> PlanNode:
    """The paper's Figure 6a count query as an executed plan.

    Builds the worked-example store (six cloaked objects A..F) and
    explains the count over its query window; the ``region.probability``
    leaves read exactly 1.0 (D), 0.75 (A), 0.5 (B), 0.2 (E), 0.25 (F) —
    the expected answer is 2.7 against the naive baseline's 5.
    """
    from repro.core.server import LocationServer
    from repro.evalx.experiments import figure_6a_store
    from repro.obs import Telemetry

    store, window = figure_6a_store()
    server = LocationServer(telemetry=Telemetry(enabled=False))
    server.private = store
    return QueryExplainer(server).explain_public_count(window)
