"""Windowed time-series over the metrics registry and event stream.

Everything PR 1–8 emits is cumulative-since-start: counters only grow,
histograms only accumulate, the event log only appends.  That is the
right durable substrate, but a *service* is watched through windows —
queries per second over the last interval, p95 latency of the last
window, how many cloaks degraded since the previous scrape.  This module
adds that time dimension without touching a single emitter:
:class:`TimeSeriesStore` snapshots the registry's raw cumulative state
(counter values, gauge values, histogram bucket vectors, the event
sequence counter) at fixed intervals and differences consecutive
captures into :class:`Window` values held in a bounded ring.

Per-window latency percentiles come straight from the histogram bucket
deltas: subtracting two cumulative bucket-count vectors yields the exact
per-bucket sample counts of the window, from which the usual rank
statistic is interpolated over the geometric bucket ladder.  The window
estimate therefore lands in *exactly* the bucket that contains the true
rank statistic of the window's samples — the property
``tests/property/test_prop_timeseries.py`` proves against numpy's
``inverted_cdf`` quantile as oracle.

Design constraints match the rest of the package: dependency-free,
bounded memory (``keep`` windows, each a plain dict-of-deltas), and a
hot-path cost of one clock read + comparison when no window is due
(:meth:`TimeSeriesStore.maybe_sample`, wired into the
:class:`~repro.core.system.PrivacySystem` entry points).

Schema: ``repro.obs.timeseries/1``.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.obs.metrics import render_key

#: Versioned schema tag stamped on every snapshot export.
TIMESERIES_SCHEMA = "repro.obs.timeseries/1"

#: Quantiles computed per window for every histogram that saw samples.
WINDOW_QUANTILES = (0.50, 0.95, 0.99)


def window_quantile(
    bounds: tuple[float, ...], deltas: list[int] | tuple[int, ...], q: float
) -> float:
    """Estimated ``q``-quantile of one window's histogram bucket deltas.

    ``deltas`` is the per-bucket sample count of the window (cumulative
    bucket counts at window end minus window start), one slot per bound
    plus the overflow slot — the same layout as
    :class:`repro.obs.metrics.Histogram.bucket_counts`.

    Uses the same rank statistic as the cumulative histogram
    (``rank = max(1, ceil(q * n))``) but interpolates over the bucket
    bounds alone: a window has no min/max record, so the first bucket
    interpolates from 0 and the overflow bucket reports the last bound.
    The estimate always falls inside the half-open bucket interval
    ``(lo, hi]`` that contains the window's true rank statistic.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    n = sum(deltas)
    if n == 0:
        return 0.0
    rank = max(1, math.ceil(q * n))
    cumulative = 0
    for i, bucket_count in enumerate(deltas):
        if cumulative + bucket_count >= rank:
            if i >= len(bounds):
                return bounds[-1]  # overflow slot: bounded below only
            lo = bounds[i - 1] if i >= 1 else 0.0
            hi = bounds[i]
            fraction = (rank - cumulative) / bucket_count
            return lo + fraction * (hi - lo)
        cumulative += bucket_count
    return bounds[-1]  # pragma: no cover - rank <= n by construction


@dataclass(frozen=True, slots=True)
class Window:
    """One fixed-interval slice of the telemetry stream.

    All counter/histogram fields are *deltas* over the window; gauges are
    instantaneous values at window close (a gauge has no meaningful
    delta).  ``rates`` divides counter deltas by the measured elapsed
    wall-clock, so an overdue sample still reports honest per-second
    figures.
    """

    index: int
    t_start: float
    t_end: float
    elapsed: float
    #: Counter deltas over the window (zero-delta counters omitted).
    counters: dict[str, int] = field(default_factory=dict)
    #: Counter deltas per elapsed second.
    rates: dict[str, float] = field(default_factory=dict)
    #: Gauge values at window close.
    gauges: dict[str, float] = field(default_factory=dict)
    #: Histogram window stats: count/sum/mean/p50/p95/p99 per metric
    #: (histograms with no samples this window omitted).
    histograms: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Event-log sequence numbers covered: (first_seq_exclusive, last_seq].
    seq_start: int = 0
    seq_end: int = 0

    @property
    def events(self) -> dict[str, int]:
        """Per-kind event deltas (the ``events.emitted`` counter family)."""
        prefix = "events.emitted{kind="
        out: dict[str, int] = {}
        for name, delta in self.counters.items():
            if name.startswith(prefix):
                out[name[len(prefix) : -1]] = delta
        return out

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "elapsed": self.elapsed,
            "counters": dict(self.counters),
            "rates": dict(self.rates),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
            "events": self.events,
            "seq_start": self.seq_start,
            "seq_end": self.seq_end,
        }


class TimeSeriesStore:
    """Fixed-interval ring-buffered windows over a Telemetry instance.

    Args:
        telemetry: the :class:`repro.obs.Telemetry` whose registry and
            event log are sampled (captures are read-only).
        interval: target seconds between windows; :meth:`maybe_sample`
            cuts a window only once this much has elapsed.
        keep: ring capacity — older windows fall off the front.
        clock: injectable monotonic clock (tests pin it).
    """

    def __init__(
        self,
        telemetry,
        interval: float = 1.0,
        keep: int = 120,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if interval < 0:
            raise ValueError("interval must be >= 0")
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.telemetry = telemetry
        self.interval = float(interval)
        self.keep = int(keep)
        self._clock = clock
        self._windows: deque[Window] = deque(maxlen=self.keep)
        self._previous = self._capture()
        self._next_due = self._previous["t"] + self.interval
        self.windows_cut = 0
        #: Hooks invoked with each freshly cut Window (the risk monitor
        #: scores itself on this cadence).
        self.on_sample: list[Callable[[Window], None]] = []

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def maybe_sample(self) -> Window | None:
        """Cut a window iff the interval has elapsed (hot-path safe)."""
        if self._clock() < self._next_due:
            return None
        return self.sample()

    def sample(self) -> Window:
        """Unconditionally cut a window from the delta since the last."""
        current = self._capture()
        window = self._delta(self._previous, current)
        self._previous = current
        self._windows.append(window)
        self._next_due = current["t"] + self.interval
        self.windows_cut += 1
        for hook in self.on_sample:
            hook(window)
        return window

    def _capture(self) -> dict:
        """Raw cumulative state: cheap copies, no derived statistics."""
        registry = self.telemetry.registry
        return {
            "t": self._clock(),
            "counters": {
                render_key(k): c.value for k, c in registry.counters()
            },
            "gauges": {render_key(k): g.value for k, g in registry.gauges()},
            "histograms": {
                render_key(k): (
                    h.count,
                    h.total,
                    tuple(h.bucket_counts),
                    h.bounds,
                )
                for k, h in registry.histograms()
            },
            "seq": self.telemetry.events._seq,
        }

    def _delta(self, previous: dict, current: dict) -> Window:
        elapsed = max(current["t"] - previous["t"], 1e-9)
        prev_counters = previous["counters"]
        counters = {}
        for name, value in current["counters"].items():
            delta = value - prev_counters.get(name, 0)
            if delta:
                counters[name] = delta
        rates = {name: delta / elapsed for name, delta in counters.items()}
        histograms = {}
        prev_hists = previous["histograms"]
        for name, (count, total, buckets, bounds) in current[
            "histograms"
        ].items():
            prev = prev_hists.get(name)
            prev_count, prev_total, prev_buckets = (
                (prev[0], prev[1], prev[2]) if prev else (0, 0.0, None)
            )
            dcount = count - prev_count
            if dcount <= 0:
                continue
            if prev_buckets is None:
                deltas = list(buckets)
            else:
                deltas = [b - p for b, p in zip(buckets, prev_buckets)]
            stats = {
                "count": dcount,
                "sum": total - prev_total,
                "mean": (total - prev_total) / dcount,
            }
            for q in WINDOW_QUANTILES:
                stats[f"p{int(q * 100)}"] = window_quantile(bounds, deltas, q)
            histograms[name] = stats
        return Window(
            index=self.windows_cut,
            t_start=previous["t"],
            t_end=current["t"],
            elapsed=elapsed,
            counters=counters,
            rates=rates,
            gauges=dict(current["gauges"]),
            histograms=histograms,
            seq_start=previous["seq"],
            seq_end=current["seq"],
        )

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------

    def windows(self) -> Iterator[Window]:
        """Buffered windows oldest-first."""
        return iter(list(self._windows))

    def latest(self) -> Window | None:
        return self._windows[-1] if self._windows else None

    def __len__(self) -> int:
        return len(self._windows)

    def snapshot(self) -> dict:
        """JSON-safe export of every buffered window."""
        return {
            "schema": TIMESERIES_SCHEMA,
            "interval": self.interval,
            "keep": self.keep,
            "windows_cut": self.windows_cut,
            "windows": [w.to_dict() for w in self._windows],
        }

    def render(self, last: int = 6, top: int = 5) -> str:
        """Terminal table of the most recent windows (``repro top``).

        One block per window: elapsed, event/query throughput, the
        busiest counter rates and every histogram's windowed p95.
        """
        windows = list(self._windows)[-last:]
        lines = [
            f"time-series  interval={self.interval:g}s  "
            f"windows={len(self._windows)}/{self.keep} (cut {self.windows_cut})"
        ]
        if not windows:
            lines.append("  (no windows cut yet)")
            return "\n".join(lines)
        for w in windows:
            events = sum(w.events.values())
            lines.append(
                f"  window #{w.index}  {w.elapsed:.3f}s  "
                f"events={events} ({events / w.elapsed:.1f}/s)  "
                f"seq {w.seq_start}..{w.seq_end}"
            )
            busiest = sorted(
                w.rates.items(), key=lambda kv: kv[1], reverse=True
            )[:top]
            for name, rate in busiest:
                lines.append(f"    {name:<58s} {rate:10.1f}/s")
            for name, stats in sorted(w.histograms.items()):
                lines.append(
                    f"    {name:<46s} n={stats['count']:<6d} "
                    f"p50={stats['p50']:.3f} p95={stats['p95']:.3f} "
                    f"p99={stats['p99']:.3f}"
                )
        return "\n".join(lines)
