"""Online privacy-risk scoring over the live event stream.

Mokbel'06 casts the anonymizer as a *continuously running* trusted third
party, yet the attack library (:mod:`repro.attacks`) only ever ran
offline, after an experiment.  :class:`PrivacyRiskMonitor` closes that
gap: it taps the structured event stream (:meth:`EventLog.add_tap`) and
maintains the streaming forms of the three estimators
(:mod:`repro.attacks.streaming`) incrementally —

- **density**: a :class:`StreamingDensityModel` grid tracking the
  admitted population through ``user.admitted``/``user.moved``/
  ``user.retired``, scoring published regions by density-weighted
  effective anonymity (skewed populations pin victims to the packed
  corner of a nominally k-anonymous region);
- **linkage**: one :class:`StreamingLinkageTracker` per live pseudonym,
  fed by ``region.published`` with time taken from the cloak events'
  ``t`` (pseudonym rotation starts a fresh tracker — that is the
  defense the tracker quantifies);
- **posterior**: a :class:`StreamingPosteriorIndex` bucketing users by
  equal published region — the rolling estimate of the inversion-set
  anonymity an omniscient adversary would compute;
- **k-attainment**: a bounded window of (k requested, k achieved) pairs
  from ``cloak.result``/``cloak.bulk``, summarised as attainment entropy
  (bits of anonymity actually delivered).

Per-event cost is a dict/rect update; the full scoring pass
(:meth:`score`) runs on the time-series sampling cadence, publishes
``risk.*`` gauges, and emits one ``risk.scored`` event the SLO monitor
reads (kinds ``reidentification_risk`` / ``k_attainment_entropy``), so
``python -m repro health`` covers privacy risk, not just latency.

Schema: ``repro.obs.risk/1``.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Mapping

from repro.attacks.streaming import (
    StreamingDensityModel,
    StreamingLinkageTracker,
    StreamingPosteriorIndex,
)
from repro.geometry.rect import Rect
from repro.obs.events import (
    CLOAK_ATTEMPT,
    CLOAK_BULK,
    CLOAK_RESULT,
    CLOCK_ADVANCED,
    REGION_PUBLISHED,
    REGIONS_PUBLISHED_BULK,
    RISK_SCORED,
    USER_ADDED,
    USER_ADMITTED,
    USER_MOVED,
    USER_RETIRED,
    Event,
)

#: Versioned schema tag stamped on every risk report.
RISK_SCHEMA = "repro.obs.risk/1"

#: Default density-grid resolution (kept modest: scoring scans the grid).
DEFAULT_RESOLUTION = 16

#: Distinct regions scored for effective anonymity per :meth:`score`.
DEFAULT_SAMPLE_REGIONS = 16

#: Bounded window of (k, k_achieved, weight) attainment records.
DEFAULT_ATTAINMENT_WINDOW = 512

#: LRU cap on live per-pseudonym linkage trackers.
DEFAULT_MAX_TRACKERS = 4096


class PrivacyRiskMonitor:
    """Incremental adversary models fed by the live event stream.

    Args:
        bounds: the universe rectangle (density grid extent).
        resolution: density-grid resolution per axis.
        max_speed: linkage adversary's speed bound; when ``None`` it is
            learned as the fastest ``speed`` any ``user.added`` event has
            declared so far (0.0 until one is seen).
        telemetry: optional :class:`repro.obs.Telemetry` that receives
            ``risk.*`` gauges and the ``risk.scored`` events.
        sample_regions: distinct recent regions scored for density-
            weighted effective anonymity per :meth:`score`.
        attainment_window: bounded count of attainment records kept.
        max_trackers: LRU cap on concurrent linkage trackers.
    """

    def __init__(
        self,
        bounds: Rect,
        resolution: int = DEFAULT_RESOLUTION,
        max_speed: float | None = None,
        telemetry=None,
        sample_regions: int = DEFAULT_SAMPLE_REGIONS,
        attainment_window: int = DEFAULT_ATTAINMENT_WINDOW,
        max_trackers: int = DEFAULT_MAX_TRACKERS,
    ) -> None:
        self.telemetry = telemetry
        self.density = StreamingDensityModel(bounds, resolution)
        self.posterior = StreamingPosteriorIndex()
        self._trackers: dict[str, StreamingLinkageTracker] = {}
        self._max_speed = max_speed
        self._learned_speed = 0.0
        self.sample_regions = sample_regions
        self.max_trackers = max_trackers
        self._attainment: deque[tuple[int, int, int]] = deque(
            maxlen=attainment_window
        )
        self._t = 0.0
        self.events_consumed = 0
        self.scores = 0
        self.last_score: dict | None = None
        self._installed_log = None
        self._dispatch = {
            USER_ADDED: self._on_user_added,
            USER_ADMITTED: self._on_user_admitted,
            USER_MOVED: self._on_user_moved,
            USER_RETIRED: self._on_user_retired,
            CLOCK_ADVANCED: self._on_clock,
            CLOAK_ATTEMPT: self._on_clock,
            CLOAK_BULK: self._on_cloak_bulk,
            CLOAK_RESULT: self._on_cloak_result,
            REGION_PUBLISHED: self._on_region_published,
            REGIONS_PUBLISHED_BULK: self._on_regions_bulk,
        }

    # ------------------------------------------------------------------
    # Stream plumbing
    # ------------------------------------------------------------------

    def install(self, event_log) -> "PrivacyRiskMonitor":
        """Tap ``event_log`` so every future emission feeds the monitor."""
        event_log.add_tap(self.consume)
        self._installed_log = event_log
        return self

    def uninstall(self) -> None:
        if self._installed_log is not None:
            self._installed_log.remove_tap(self.consume)
            self._installed_log = None

    def consume(self, event: Event) -> None:
        """Feed one event (the EventLog tap entry point)."""
        handler = self._dispatch.get(event.kind)
        if handler is None:
            return
        self.events_consumed += 1
        handler(event.attrs)

    def replay(self, events) -> "PrivacyRiskMonitor":
        """Feed a finished trail (offline use of the online monitors)."""
        for event in events:
            self.consume(event)
        return self

    def seed_from(self, system) -> "PrivacyRiskMonitor":
        """Bootstrap from a system's current state (late enablement).

        Events emitted before the monitor existed are gone from the ring;
        seeding reconstructs the density grid and posterior buckets from
        the anonymizer's registrations and the server's live regions so
        ``/risk`` is meaningful immediately.
        """
        anonymizer = system.anonymizer
        cloaker = anonymizer.cloaker
        private = system.server.private if system.server is not None else None
        for user_id, registration in anonymizer._registrations.items():
            location = cloaker.location_of(user_id)
            self.density.admit(str(user_id), location.x, location.y)
            if private is not None and registration.pseudonym in private:
                self.posterior.publish(
                    str(user_id), private.region_of(registration.pseudonym)
                )
        self._t = system.clock
        return self

    # ------------------------------------------------------------------
    # Event handlers (hot path: cheap incremental updates only)
    # ------------------------------------------------------------------

    @property
    def max_speed(self) -> float:
        """The linkage adversary's speed bound (fixed or learned)."""
        if self._max_speed is not None:
            return self._max_speed
        return self._learned_speed

    def _on_user_added(self, attrs: Mapping) -> None:
        speed = attrs.get("speed")
        if speed is not None and float(speed) > self._learned_speed:
            self._learned_speed = float(speed)

    def _on_user_admitted(self, attrs: Mapping) -> None:
        self.density.admit(attrs["user"], attrs["x"], attrs["y"])

    def _on_user_moved(self, attrs: Mapping) -> None:
        # StreamingDensityModel ignores users it never admitted, which
        # filters the system-side moves of passive (invisible) users.
        self.density.move(attrs["user"], attrs["x"], attrs["y"])

    def _on_user_retired(self, attrs: Mapping) -> None:
        user = attrs["user"]
        self.density.retire(user)
        self.posterior.retire(user)
        pseudonym = attrs.get("pseudonym")
        if pseudonym is not None:
            self._trackers.pop(pseudonym, None)

    def _on_clock(self, attrs: Mapping) -> None:
        t = attrs.get("t")
        if t is not None and float(t) > self._t:
            self._t = float(t)

    def _on_cloak_result(self, attrs: Mapping) -> None:
        self._on_clock(attrs)
        k = attrs.get("k")
        achieved = attrs.get("k_achieved")
        if k is not None and achieved is not None:
            self._attainment.append((int(k), int(achieved), 1))

    def _on_cloak_bulk(self, attrs: Mapping) -> None:
        self._on_clock(attrs)
        n = int(attrs.get("n") or 0)
        k = attrs.get("k")
        k_sum = attrs.get("k_sum")
        if n > 0 and k is not None and k_sum is not None:
            # One aggregate record per requirement group, weighted by its
            # population; the mean achieved k stands in for the per-user
            # stream the bulk path deliberately does not emit.
            self._attainment.append((int(k), int(round(k_sum / n)), n))

    def _observe_region(self, user: str, pseudonym: str, region: Rect) -> None:
        self.posterior.publish(user, region)
        tracker = self._trackers.get(pseudonym)
        if tracker is None:
            if len(self._trackers) >= self.max_trackers:
                oldest = next(iter(self._trackers))
                del self._trackers[oldest]
            tracker = self._trackers[pseudonym] = StreamingLinkageTracker(
                self.max_speed
            )
        tracker.observe(self._t, region)

    def _on_region_published(self, attrs: Mapping) -> None:
        old = attrs.get("old_pseudonym")
        if old is not None:
            self._trackers.pop(old, None)
        region = Rect(
            attrs["min_x"], attrs["min_y"], attrs["max_x"], attrs["max_y"]
        )
        self._observe_region(attrs["user"], attrs["pseudonym"], region)

    def _on_regions_bulk(self, attrs: Mapping) -> None:
        for row in attrs.get("regions") or ():
            user, pseudonym, min_x, min_y, max_x, max_y = row
            self._observe_region(
                user, pseudonym, Rect(min_x, min_y, max_x, max_y)
            )

    # ------------------------------------------------------------------
    # Scoring (sampling-cadence path)
    # ------------------------------------------------------------------

    def score(self, emit: bool = True) -> dict:
        """Summarise the current adversary estimates into risk gauges.

        Returns the score dict and (by default) publishes it as
        ``risk.*`` gauges plus one ``risk.scored`` event — the evidence
        the SLO monitor's ``reidentification_risk`` /
        ``k_attainment_entropy`` kinds read.
        """
        reid = self.posterior.mean_reidentification()
        entropy = self.posterior.mean_entropy_bits()
        attainment = None
        k_entropy = None
        if self._attainment:
            weight = sum(w for _, _, w in self._attainment)
            attainment = (
                sum(min(1.0, ka / k) * w for k, ka, w in self._attainment)
                / weight
            )
            k_entropy = (
                sum(math.log2(max(1, ka)) * w for _, ka, w in self._attainment)
                / weight
            )
        shrinkage = None
        tracked = [t for t in self._trackers.values() if t.steps_seen]
        if tracked:
            shrinkage = sum(t.mean_shrinkage() for t in tracked) / len(tracked)
        effective = None
        recent = self.posterior.recent_regions(self.sample_regions)
        if recent:
            effective = sum(
                self.density.effective_anonymity(region) for region in recent
            ) / len(recent)
        score = {
            "t": self._t,
            "population": self.density.population,
            "publishing": self.posterior.population,
            "buckets": self.posterior.bucket_count,
            "trackers": len(self._trackers),
            "events_consumed": self.events_consumed,
            "max_speed": self.max_speed,
            "reidentification": reid,
            "posterior_entropy_bits": entropy,
            "k_attainment": attainment,
            "k_attainment_entropy_bits": k_entropy,
            "linkage_shrinkage": shrinkage,
            "effective_anonymity": effective,
        }
        self.scores += 1
        self.last_score = score
        if emit and self.telemetry is not None:
            for name, value in (
                ("risk.reidentification", reid),
                ("risk.posterior_entropy_bits", entropy),
                ("risk.k_attainment", attainment),
                ("risk.k_attainment_entropy_bits", k_entropy),
                ("risk.linkage_shrinkage", shrinkage),
                ("risk.effective_anonymity", effective),
            ):
                if value is not None:
                    self.telemetry.set_gauge(name, value)
            self.telemetry.emit(RISK_SCORED, **score)
        return score

    def report(self) -> dict:
        """Full JSON risk report (the ``/risk`` endpoint body)."""
        score = self.score(emit=False)
        worst = None
        sizes = sorted(
            len(b) for b in self.posterior._buckets.values()
        )
        if sizes:
            worst = sizes[0]
        return {
            "schema": RISK_SCHEMA,
            "score": score,
            "posterior": {
                "population": self.posterior.population,
                "buckets": self.posterior.bucket_count,
                "smallest_bucket": worst,
                "largest_bucket": sizes[-1] if sizes else None,
            },
            "linkage": {
                "trackers": len(self._trackers),
                "max_speed": self.max_speed,
                "inconsistent_steps": sum(
                    t.inconsistent_steps for t in self._trackers.values()
                ),
            },
            "attainment_records": len(self._attainment),
            "scores": self.scores,
        }

    def render(self) -> str:
        """One-screen ASCII summary (the ``repro top`` risk panel)."""
        score = self.last_score or self.score(emit=False)

        def fmt(value, pattern="{:.3f}"):
            return pattern.format(value) if value is not None else "-"

        return "\n".join(
            [
                "privacy risk  "
                f"(population={score['population']} "
                f"publishing={score['publishing']} "
                f"buckets={score['buckets']} trackers={score['trackers']})",
                f"  reidentification risk   {fmt(score['reidentification'])}"
                "   (mean 1/bucket; 1.0 = unique)",
                f"  posterior entropy       {fmt(score['posterior_entropy_bits'])} bits",
                f"  k-attainment            {fmt(score['k_attainment'])}"
                f"   entropy {fmt(score['k_attainment_entropy_bits'])} bits",
                f"  linkage shrinkage       {fmt(score['linkage_shrinkage'])}"
                "   (1.0 = nothing learned)",
                f"  effective anonymity     {fmt(score['effective_anonymity'])}"
                "   equivalent cells",
            ]
        )
