"""Privacy-attainment auditing over the structured event log.

The anonymizer's contract (paper, Section 5) is per-query: every cloaked
region must hold at least ``k`` subscribed users and at least ``A_min``
area, or the degradation must be explicit (best-effort clamping).  The
:class:`PrivacyAuditor` replays ``cloak.result`` / ``cloak.bulk`` /
``cloak.degraded`` / ``query.completed`` events
(:mod:`repro.obs.events`) and rolls them into
per-user and per-profile attainment reports, flagging any *undeclared*
violation — a region that missed its requirement without a matching
``cloak.degraded`` event.  ``tests/property/test_prop_obs_events.py``
holds the pipeline to zero undeclared violations on arbitrary workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.events import (
    CLOAK_BULK,
    CLOAK_DEGRADED,
    CLOAK_RESULT,
    EVENT_KINDS,
    QUERY_COMPLETED,
    Event,
    EventLog,
    read_jsonl,
)

#: The kinds the auditor folds into its tallies.  Everything else in
#: ``EVENT_KINDS`` carries no privacy semantics — telemetry plumbing
#: (``planner.*``, ``slo.evaluated``, ``profile.sampled``, snapshot and
#: batch bookkeeping) — and is ignored *by rule*, not by accident:
#: ``tests/unit/test_obs_audit.py`` asserts the two sets partition the
#: registry, so a future kind must be explicitly classified here.
AUDITED_KINDS: frozenset[str] = frozenset(
    {CLOAK_RESULT, CLOAK_BULK, CLOAK_DEGRADED, QUERY_COMPLETED}
)

#: Registered kinds the auditor deliberately skips (the folding rule).
AUDIT_IGNORED_KINDS: frozenset[str] = frozenset(EVENT_KINDS) - AUDITED_KINDS


def _profile_key(attrs: dict) -> str:
    """Canonical label of the (k, A_min, A_max) profile behind an event."""
    max_area = attrs.get("max_area")
    return (
        f"k={attrs.get('k', 1)},"
        f"a_min={attrs.get('min_area', 0.0):g},"
        f"a_max={'inf' if max_area is None else format(max_area, 'g')}"
    )


@dataclass
class _Tally:
    """Attainment counters for one user or one profile."""

    cloaks: int = 0
    k_attained: int = 0
    area_attained: int = 0
    fully_attained: int = 0
    degraded_declared: int = 0
    undeclared_violations: int = 0
    areas: list = field(default_factory=list)
    k_achieved: list = field(default_factory=list)
    # Aggregate moments contributed by ``cloak.bulk`` group events, which
    # carry sums/minima over many users instead of per-user samples.
    area_agg_sum: float = 0.0
    area_agg_n: int = 0
    area_agg_min: float | None = None
    k_agg_sum: int = 0
    k_agg_n: int = 0
    k_agg_min: int | None = None

    def as_dict(self) -> dict:
        out = {
            "cloaks": self.cloaks,
            "k_attained": self.k_attained,
            "area_attained": self.area_attained,
            "fully_attained": self.fully_attained,
            "degraded_declared": self.degraded_declared,
            "undeclared_violations": self.undeclared_violations,
            "attainment_rate": (
                self.fully_attained / self.cloaks if self.cloaks else 1.0
            ),
        }
        if self.areas or self.area_agg_n:
            n = len(self.areas) + self.area_agg_n
            out["mean_area"] = (sum(self.areas) + self.area_agg_sum) / n
            mins = [min(self.areas)] if self.areas else []
            if self.area_agg_min is not None:
                mins.append(self.area_agg_min)
            out["min_area"] = min(mins)
        if self.k_achieved or self.k_agg_n:
            n = len(self.k_achieved) + self.k_agg_n
            out["mean_k_achieved"] = (sum(self.k_achieved) + self.k_agg_sum) / n
            mins = [min(self.k_achieved)] if self.k_achieved else []
            if self.k_agg_min is not None:
                mins.append(self.k_agg_min)
            out["min_k_achieved"] = min(mins)
        return out


class PrivacyAuditor:
    """Rolls audit events into per-user / per-profile attainment reports.

    Feed it events from a live :class:`~repro.obs.events.EventLog`
    (:meth:`from_log`), a JSONL trail on disk (:meth:`from_jsonl`), or
    any iterable of :class:`~repro.obs.events.Event` (:meth:`consume`);
    then read :meth:`report` or :meth:`violations`.
    """

    def __init__(self) -> None:
        self._users: dict[str, _Tally] = {}
        self._profiles: dict[str, _Tally] = {}
        self._results: list[Event] = []
        self._bulk_events: list[Event] = []
        self._bulk_totals = _Tally()
        self._degraded_seqs: set[int] = set()
        self._degraded_result_seqs: set[int] = set()
        self._query_overheads: dict[str, list[float]] = {}
        self._query_counts: dict[str, int] = {}
        self._query_correct: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    @classmethod
    def from_log(cls, log: EventLog) -> "PrivacyAuditor":
        return cls().consume(log.events())

    @classmethod
    def from_jsonl(cls, path: str) -> "PrivacyAuditor":
        return cls().consume(read_jsonl(path))

    def consume(self, events: Iterable[Event]) -> "PrivacyAuditor":
        """Fold a stream of events into the running tallies; returns self."""
        for event in events:
            if event.kind == CLOAK_RESULT:
                self._consume_result(event)
            elif event.kind == CLOAK_BULK:
                self._consume_bulk(event)
            elif event.kind == CLOAK_DEGRADED:
                self._degraded_seqs.add(event.seq)
                result_seq = event.attrs.get("result_seq")
                if result_seq is not None:
                    self._degraded_result_seqs.add(int(result_seq))
            elif event.kind == QUERY_COMPLETED:
                self._consume_query(event)
        # Declarations may arrive after their results within one batch of
        # events; settle the undeclared counts once the stream is folded.
        self._settle()
        return self

    def _consume_result(self, event: Event) -> None:
        self._results.append(event)
        attrs = event.attrs
        user = str(attrs.get("user"))
        for tally in (
            self._users.setdefault(user, _Tally()),
            self._profiles.setdefault(_profile_key(attrs), _Tally()),
        ):
            tally.cloaks += 1
            tally.k_attained += bool(attrs.get("k_satisfied"))
            tally.area_attained += bool(attrs.get("area_satisfied"))
            tally.fully_attained += bool(
                attrs.get("k_satisfied") and attrs.get("area_satisfied")
            )
            if "area" in attrs:
                tally.areas.append(float(attrs["area"]))
            if "k_achieved" in attrs:
                tally.k_achieved.append(int(attrs["k_achieved"]))

    def _consume_bulk(self, event: Event) -> None:
        """Fold one ``cloak.bulk`` requirement-group aggregate.

        Bulk rounds carry no per-user identity (one event per distinct
        requirement, not per user), so they contribute to the profile
        tallies and the report totals but leave the per-user section
        untouched.  Degradations are declared in-band via the event's
        ``degraded`` count, settled alongside per-result declarations.
        """
        self._bulk_events.append(event)
        attrs = event.attrs
        n = int(attrs.get("n", 0))
        for tally in (
            self._profiles.setdefault(_profile_key(attrs), _Tally()),
            self._bulk_totals,
        ):
            tally.cloaks += n
            tally.k_attained += int(attrs.get("k_attained", 0))
            tally.area_attained += int(attrs.get("area_attained", 0))
            tally.fully_attained += int(attrs.get("fully_attained", 0))
            if "area_sum" in attrs:
                tally.area_agg_sum += float(attrs["area_sum"])
                tally.area_agg_n += n
            if "area_min" in attrs:
                low = float(attrs["area_min"])
                if tally.area_agg_min is None or low < tally.area_agg_min:
                    tally.area_agg_min = low
            if "k_sum" in attrs:
                tally.k_agg_sum += int(attrs["k_sum"])
                tally.k_agg_n += n
            if "k_min" in attrs:
                low = int(attrs["k_min"])
                if tally.k_agg_min is None or low < tally.k_agg_min:
                    tally.k_agg_min = low

    def _consume_query(self, event: Event) -> None:
        kind = str(event.attrs.get("query", "query"))
        self._query_counts[kind] = self._query_counts.get(kind, 0) + 1
        self._query_correct[kind] = self._query_correct.get(kind, 0) + bool(
            event.attrs.get("correct", True)
        )
        overhead = event.attrs.get("overhead")
        if overhead is not None:
            self._query_overheads.setdefault(kind, []).append(float(overhead))

    def _settle(self) -> None:
        tallies = (
            list(self._users.values())
            + list(self._profiles.values())
            + [self._bulk_totals]
        )
        for tally in tallies:
            tally.degraded_declared = 0
            tally.undeclared_violations = 0
        for event in self._bulk_events:
            attrs = event.attrs
            declared = int(attrs.get("degraded", 0))
            missed = int(attrs.get("n", 0)) - int(attrs.get("fully_attained", 0))
            undeclared = max(0, missed - declared)
            for tally in (
                self._profiles[_profile_key(attrs)],
                self._bulk_totals,
            ):
                tally.degraded_declared += declared
                tally.undeclared_violations += undeclared
        for event in self._results:
            attrs = event.attrs
            satisfied = bool(
                attrs.get("k_satisfied") and attrs.get("area_satisfied")
            )
            declared = (
                bool(attrs.get("degraded"))
                or event.seq in self._degraded_result_seqs
            )
            user = str(attrs.get("user"))
            for tally in (self._users[user], self._profiles[_profile_key(attrs)]):
                if satisfied:
                    continue
                if declared:
                    tally.degraded_declared += 1
                else:
                    tally.undeclared_violations += 1

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------

    def violations(self, declared: bool = False) -> list[Event]:
        """``cloak.result`` events that missed their requirement.

        With ``declared=False`` (the default) only *undeclared* misses —
        no ``degraded`` marker anywhere — are returned; those are
        contract breaches.  ``declared=True`` returns every miss.

        Bulk rounds participate too: a ``cloak.bulk`` group event is a
        declared miss when its ``degraded`` count covers every user that
        missed, and an undeclared violation otherwise.
        """
        out = []
        for event in self._results:
            attrs = event.attrs
            if attrs.get("k_satisfied") and attrs.get("area_satisfied"):
                continue
            is_declared = (
                bool(attrs.get("degraded"))
                or event.seq in self._degraded_result_seqs
            )
            if declared or not is_declared:
                out.append(event)
        for event in self._bulk_events:
            attrs = event.attrs
            missed = int(attrs.get("n", 0)) - int(attrs.get("fully_attained", 0))
            if missed <= 0:
                continue
            is_declared = int(attrs.get("degraded", 0)) >= missed
            if declared or not is_declared:
                out.append(event)
        out.sort(key=lambda e: e.seq)
        return out

    def report(self) -> dict:
        """Plain-data attainment report (JSON-serialisable as-is)."""
        totals = _Tally()
        for tally in self._users.values():
            totals.cloaks += tally.cloaks
            totals.k_attained += tally.k_attained
            totals.area_attained += tally.area_attained
            totals.fully_attained += tally.fully_attained
            totals.degraded_declared += tally.degraded_declared
            totals.undeclared_violations += tally.undeclared_violations
            totals.areas.extend(tally.areas)
            totals.k_achieved.extend(tally.k_achieved)
        bulk = self._bulk_totals
        totals.cloaks += bulk.cloaks
        totals.k_attained += bulk.k_attained
        totals.area_attained += bulk.area_attained
        totals.fully_attained += bulk.fully_attained
        totals.degraded_declared += bulk.degraded_declared
        totals.undeclared_violations += bulk.undeclared_violations
        totals.area_agg_sum = bulk.area_agg_sum
        totals.area_agg_n = bulk.area_agg_n
        totals.area_agg_min = bulk.area_agg_min
        totals.k_agg_sum = bulk.k_agg_sum
        totals.k_agg_n = bulk.k_agg_n
        totals.k_agg_min = bulk.k_agg_min
        queries = {
            kind: {
                "count": count,
                "accuracy": self._query_correct.get(kind, 0) / count,
                **(
                    {
                        "mean_overhead": sum(overheads) / len(overheads),
                        "max_overhead": max(overheads),
                    }
                    if (overheads := self._query_overheads.get(kind))
                    else {}
                ),
            }
            for kind, count in sorted(self._query_counts.items())
        }
        return {
            "schema": "repro.obs.audit/1",
            "totals": totals.as_dict(),
            "users": {
                user: tally.as_dict()
                for user, tally in sorted(self._users.items())
            },
            "profiles": {
                profile: tally.as_dict()
                for profile, tally in sorted(self._profiles.items())
            },
            "queries": queries,
        }
