"""Privacy-attainment auditing over the structured event log.

The anonymizer's contract (paper, Section 5) is per-query: every cloaked
region must hold at least ``k`` subscribed users and at least ``A_min``
area, or the degradation must be explicit (best-effort clamping).  The
:class:`PrivacyAuditor` replays ``cloak.result`` / ``cloak.degraded`` /
``query.completed`` events (:mod:`repro.obs.events`) and rolls them into
per-user and per-profile attainment reports, flagging any *undeclared*
violation — a region that missed its requirement without a matching
``cloak.degraded`` event.  ``tests/property/test_prop_obs_events.py``
holds the pipeline to zero undeclared violations on arbitrary workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.obs.events import (
    CLOAK_DEGRADED,
    CLOAK_RESULT,
    QUERY_COMPLETED,
    Event,
    EventLog,
    read_jsonl,
)


def _profile_key(attrs: dict) -> str:
    """Canonical label of the (k, A_min, A_max) profile behind an event."""
    max_area = attrs.get("max_area")
    return (
        f"k={attrs.get('k', 1)},"
        f"a_min={attrs.get('min_area', 0.0):g},"
        f"a_max={'inf' if max_area is None else format(max_area, 'g')}"
    )


@dataclass
class _Tally:
    """Attainment counters for one user or one profile."""

    cloaks: int = 0
    k_attained: int = 0
    area_attained: int = 0
    fully_attained: int = 0
    degraded_declared: int = 0
    undeclared_violations: int = 0
    areas: list = field(default_factory=list)
    k_achieved: list = field(default_factory=list)

    def as_dict(self) -> dict:
        out = {
            "cloaks": self.cloaks,
            "k_attained": self.k_attained,
            "area_attained": self.area_attained,
            "fully_attained": self.fully_attained,
            "degraded_declared": self.degraded_declared,
            "undeclared_violations": self.undeclared_violations,
            "attainment_rate": (
                self.fully_attained / self.cloaks if self.cloaks else 1.0
            ),
        }
        if self.areas:
            out["mean_area"] = sum(self.areas) / len(self.areas)
            out["min_area"] = min(self.areas)
        if self.k_achieved:
            out["mean_k_achieved"] = sum(self.k_achieved) / len(self.k_achieved)
            out["min_k_achieved"] = min(self.k_achieved)
        return out


class PrivacyAuditor:
    """Rolls audit events into per-user / per-profile attainment reports.

    Feed it events from a live :class:`~repro.obs.events.EventLog`
    (:meth:`from_log`), a JSONL trail on disk (:meth:`from_jsonl`), or
    any iterable of :class:`~repro.obs.events.Event` (:meth:`consume`);
    then read :meth:`report` or :meth:`violations`.
    """

    def __init__(self) -> None:
        self._users: dict[str, _Tally] = {}
        self._profiles: dict[str, _Tally] = {}
        self._results: list[Event] = []
        self._degraded_seqs: set[int] = set()
        self._degraded_result_seqs: set[int] = set()
        self._query_overheads: dict[str, list[float]] = {}
        self._query_counts: dict[str, int] = {}
        self._query_correct: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    @classmethod
    def from_log(cls, log: EventLog) -> "PrivacyAuditor":
        return cls().consume(log.events())

    @classmethod
    def from_jsonl(cls, path: str) -> "PrivacyAuditor":
        return cls().consume(read_jsonl(path))

    def consume(self, events: Iterable[Event]) -> "PrivacyAuditor":
        """Fold a stream of events into the running tallies; returns self."""
        for event in events:
            if event.kind == CLOAK_RESULT:
                self._consume_result(event)
            elif event.kind == CLOAK_DEGRADED:
                self._degraded_seqs.add(event.seq)
                result_seq = event.attrs.get("result_seq")
                if result_seq is not None:
                    self._degraded_result_seqs.add(int(result_seq))
            elif event.kind == QUERY_COMPLETED:
                self._consume_query(event)
        # Declarations may arrive after their results within one batch of
        # events; settle the undeclared counts once the stream is folded.
        self._settle()
        return self

    def _consume_result(self, event: Event) -> None:
        self._results.append(event)
        attrs = event.attrs
        user = str(attrs.get("user"))
        for tally in (
            self._users.setdefault(user, _Tally()),
            self._profiles.setdefault(_profile_key(attrs), _Tally()),
        ):
            tally.cloaks += 1
            tally.k_attained += bool(attrs.get("k_satisfied"))
            tally.area_attained += bool(attrs.get("area_satisfied"))
            tally.fully_attained += bool(
                attrs.get("k_satisfied") and attrs.get("area_satisfied")
            )
            if "area" in attrs:
                tally.areas.append(float(attrs["area"]))
            if "k_achieved" in attrs:
                tally.k_achieved.append(int(attrs["k_achieved"]))

    def _consume_query(self, event: Event) -> None:
        kind = str(event.attrs.get("query", "query"))
        self._query_counts[kind] = self._query_counts.get(kind, 0) + 1
        self._query_correct[kind] = self._query_correct.get(kind, 0) + bool(
            event.attrs.get("correct", True)
        )
        overhead = event.attrs.get("overhead")
        if overhead is not None:
            self._query_overheads.setdefault(kind, []).append(float(overhead))

    def _settle(self) -> None:
        for tally in list(self._users.values()) + list(self._profiles.values()):
            tally.degraded_declared = 0
            tally.undeclared_violations = 0
        for event in self._results:
            attrs = event.attrs
            satisfied = bool(
                attrs.get("k_satisfied") and attrs.get("area_satisfied")
            )
            declared = (
                bool(attrs.get("degraded"))
                or event.seq in self._degraded_result_seqs
            )
            user = str(attrs.get("user"))
            for tally in (self._users[user], self._profiles[_profile_key(attrs)]):
                if satisfied:
                    continue
                if declared:
                    tally.degraded_declared += 1
                else:
                    tally.undeclared_violations += 1

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------

    def violations(self, declared: bool = False) -> list[Event]:
        """``cloak.result`` events that missed their requirement.

        With ``declared=False`` (the default) only *undeclared* misses —
        no ``degraded`` marker anywhere — are returned; those are
        contract breaches.  ``declared=True`` returns every miss.
        """
        out = []
        for event in self._results:
            attrs = event.attrs
            if attrs.get("k_satisfied") and attrs.get("area_satisfied"):
                continue
            is_declared = (
                bool(attrs.get("degraded"))
                or event.seq in self._degraded_result_seqs
            )
            if declared or not is_declared:
                out.append(event)
        return out

    def report(self) -> dict:
        """Plain-data attainment report (JSON-serialisable as-is)."""
        totals = _Tally()
        for tally in self._users.values():
            totals.cloaks += tally.cloaks
            totals.k_attained += tally.k_attained
            totals.area_attained += tally.area_attained
            totals.fully_attained += tally.fully_attained
            totals.degraded_declared += tally.degraded_declared
            totals.undeclared_violations += tally.undeclared_violations
            totals.areas.extend(tally.areas)
            totals.k_achieved.extend(tally.k_achieved)
        queries = {
            kind: {
                "count": count,
                "accuracy": self._query_correct.get(kind, 0) / count,
                **(
                    {
                        "mean_overhead": sum(overheads) / len(overheads),
                        "max_overhead": max(overheads),
                    }
                    if (overheads := self._query_overheads.get(kind))
                    else {}
                ),
            }
            for kind, count in sorted(self._query_counts.items())
        }
        return {
            "schema": "repro.obs.audit/1",
            "totals": totals.as_dict(),
            "users": {
                user: tally.as_dict()
                for user, tally in sorted(self._users.items())
            },
            "profiles": {
                profile: tally.as_dict()
                for profile, tally in sorted(self._profiles.items())
            },
            "queries": queries,
        }
