"""Bounded structured event log: the pipeline's per-query evidence trail.

Where :mod:`repro.obs.metrics` aggregates and :mod:`repro.obs.trace`
times, this module *records decisions*: one typed event per pipeline
action — a user admitted, a cloak attempted/escalated/degraded, a region
published, a candidate list generated, a batch snapshot reused — each
carrying the numbers an auditor needs to judge it (requested vs achieved
k, cloaked area vs A_min, candidate overhead).  The paper's anonymizer
silently trades region area against each user's (k, A_min) profile;
events make that trade inspectable per query instead of only in
aggregate (:mod:`repro.obs.audit` rolls them into attainment reports).

Design constraints match the rest of the package: dependency-free, a
bounded ring buffer so a long-lived system cannot grow without bound,
and an optional JSONL sink for durable trails.  Disabled emission is a
single attribute check; with the ring buffer on and the sink off, the
cost per event is one dict build plus a ``deque.append`` — held under
5 % of a real query by ``tests/unit/test_obs_events_overhead.py``.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator, Mapping

from repro.obs.metrics import MetricsRegistry

#: Counter family under which every emission is tallied (per kind).
EVENT_METRIC = "events.emitted"

# ----------------------------------------------------------------------
# Event taxonomy (see docs/observability.md for the paper-stage mapping)
# ----------------------------------------------------------------------

#: A mobile user joined the simulated world (any mode, passive included).
USER_ADDED = "user.added"
#: A user subscribed to the anonymizer with a privacy profile.
USER_ADMITTED = "user.admitted"
#: A user unsubscribed; her server-side region was retired.
USER_RETIRED = "user.retired"
#: A user reported an exact location (anonymizer-side knowledge only).
USER_MOVED = "user.moved"
#: A user switched participation mode (passive/active/query).
USER_MODE_CHANGED = "user.mode"
#: A user changed her privacy profile (Section 4: "at any time").
PROFILE_UPDATED = "profile.updated"
#: A public point of interest was registered with the server.
POI_ADDED = "poi.added"
#: A moving public object reported a new position.
POI_MOVED = "poi.moved"
#: A public object was dropped from the server.
POI_REMOVED = "poi.removed"
#: The simulation clock advanced one mobility step.
CLOCK_ADVANCED = "clock.advanced"
#: The server accounted one (or ``n``) served queries under a kind.
SERVER_QUERY = "server.query"
#: A standing continuous count monitor was installed over a window.
MONITOR_REGISTERED = "monitor.registered"
#: A standing continuous count monitor was dropped.
MONITOR_DROPPED = "monitor.dropped"
#: A cloak was requested (requirement in force at time ``t``).
CLOAK_ATTEMPT = "cloak.attempt"
#: Best-effort escalation: requested k exceeded the population and was clamped.
CLOAK_ESCALATED = "cloak.escalated"
#: A cloaked region was produced; the per-query privacy audit record.
CLOAK_RESULT = "cloak.result"
#: Explicit declaration that a produced region missed its requirement.
CLOAK_DEGRADED = "cloak.degraded"
#: Shared-execution round summary (Section 5.3 batch cloaking).
CLOAK_BATCH = "cloak.batch"
#: One requirement-group aggregate of a vectorized bulk cloaking round;
#: carries the attainment counts a per-user ``cloak.result`` stream would,
#: with every degradation declared in-band (the ``degraded`` count).
CLOAK_BULK = "cloak.bulk"
#: A cloaked region reached the server under a pseudonym.
REGION_PUBLISHED = "region.published"
#: A whole population's regions reached the server in one bulk push.
REGIONS_PUBLISHED_BULK = "regions.published_bulk"
#: The server generated a candidate set for a private query.
CANDIDATES_GENERATED = "candidates.generated"
#: An end-to-end private query finished; carries the overhead ratio.
QUERY_COMPLETED = "query.completed"
#: The batch engine froze a fresh server snapshot (cache invalidation).
SNAPSHOT_CAPTURED = "snapshot.captured"
#: The batch engine answered from the cached snapshot (stores quiescent).
SNAPSHOT_REUSED = "snapshot.reused"
#: The cached snapshot absorbed a store delta instead of re-freezing.
SNAPSHOT_DELTA = "snapshot.delta"
#: One heterogeneous batch was executed.
BATCH_EXECUTED = "batch.executed"
#: The cost-based planner chose a backend/route for one query (group);
#: carries the chosen pair, the ranked cost estimates, and the reason.
PLANNER_DECISION = "planner.decision"
#: The planner's statistics collector (re)calibrated backend costs.
PLANNER_CALIBRATED = "planner.calibrated"
#: Measured execution cost for one planned query (group); joins its
#: ``planner.decision`` on ``qid`` and carries seconds + counter deltas.
PLANNER_MEASURED = "planner.measured"
#: A (kind, backend, route) group's measured/predicted cost ratio left
#: the accuracy monitor's tolerance band (planner self-healing trigger).
PLANNER_MISPREDICT = "planner.mispredict"
#: The SLO monitor evaluated its specs over the rolling event window.
SLO_EVALUATED = "slo.evaluated"
#: The hot-span profiler cut an aggregated self-time report.
PROFILE_SAMPLED = "profile.sampled"
#: The bounded ring evicted events that never reached the JSONL sink;
#: the marker declares the lost ``[first_seq, last_seq]`` range so a
#: replay reader can surface the gap instead of silently recovering
#: from an incomplete trail.
LOG_TRUNCATED = "log.truncated"
#: A durable checkpoint of the whole pipeline state was written.
PERSIST_CHECKPOINT = "persist.checkpoint"
#: A recovered system finished replaying its event-log tail.
PERSIST_REPLAYED = "persist.replayed"
#: The online privacy-risk monitor scored the live stream: rolling
#: re-identification risk, k-attainment entropy, linkage shrinkage and
#: density-weighted effective anonymity (repro.obs.risk).
RISK_SCORED = "risk.scored"
#: The WAL sink was rotated into a sealed segment file; the fresh WAL
#: starts with a ``log.truncated`` marker carrying ``rotated_to`` so
#: recovery can tell deliberate rotation from silent data loss.
WAL_ROTATED = "wal.rotated"

#: Every kind this package emits, for validation and documentation.
EVENT_KINDS: tuple[str, ...] = (
    USER_ADDED,
    USER_ADMITTED,
    USER_RETIRED,
    USER_MOVED,
    USER_MODE_CHANGED,
    PROFILE_UPDATED,
    POI_ADDED,
    POI_MOVED,
    POI_REMOVED,
    CLOCK_ADVANCED,
    SERVER_QUERY,
    MONITOR_REGISTERED,
    MONITOR_DROPPED,
    CLOAK_ATTEMPT,
    CLOAK_ESCALATED,
    CLOAK_RESULT,
    CLOAK_DEGRADED,
    CLOAK_BATCH,
    CLOAK_BULK,
    REGION_PUBLISHED,
    REGIONS_PUBLISHED_BULK,
    CANDIDATES_GENERATED,
    QUERY_COMPLETED,
    SNAPSHOT_CAPTURED,
    SNAPSHOT_REUSED,
    SNAPSHOT_DELTA,
    BATCH_EXECUTED,
    PLANNER_DECISION,
    PLANNER_CALIBRATED,
    PLANNER_MEASURED,
    PLANNER_MISPREDICT,
    SLO_EVALUATED,
    PROFILE_SAMPLED,
    LOG_TRUNCATED,
    PERSIST_CHECKPOINT,
    PERSIST_REPLAYED,
    RISK_SCORED,
    WAL_ROTATED,
)


@dataclass(frozen=True, slots=True)
class Event:
    """One recorded pipeline decision.

    Attributes:
        seq: monotonically increasing per-log sequence number (the join
            key between related events, e.g. a ``cloak.degraded`` names
            its ``cloak.result`` via the ``result_seq`` attribute).
        kind: one of the ``EVENT_KINDS`` constants.
        attrs: the decision's payload (plain JSON-serialisable values).
    """

    seq: int
    kind: str
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Flat JSONL-ready form: ``{**attrs, "seq": ..., "kind": ...}``.

        The reserved keys win: an attribute named ``seq`` or ``kind``
        must never corrupt the record's identity on the round trip
        (emitters use ``query`` for the query kind for this reason).
        """
        return {**self.attrs, "seq": self.seq, "kind": self.kind}

    @classmethod
    def from_dict(cls, record: Mapping) -> "Event":
        """Inverse of :meth:`to_dict` (JSONL ingestion)."""
        attrs = {k: v for k, v in record.items() if k not in ("seq", "kind")}
        return cls(seq=int(record["seq"]), kind=str(record["kind"]), attrs=attrs)


class EventLog:
    """Bounded ring buffer of :class:`Event` s with an optional JSONL sink.

    Args:
        registry: destination for the per-kind ``events.emitted`` counters;
            emission is not tallied when omitted.
        enabled: start recording (the default) or dark.  A disabled log's
            :meth:`emit` is a single attribute check.
        keep: ring-buffer capacity; older events fall off the front.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        enabled: bool = True,
        keep: int = 2048,
    ) -> None:
        self.registry = registry
        self.enabled = enabled
        #: Optional :class:`~repro.obs.correlate.CorrelationIds` whose
        #: active scope is stamped onto every emission (set by Telemetry).
        self.correlation = None
        self._ring: deque[Event] = deque(maxlen=keep)
        self._seq = 0
        self._sink: IO[str] | None = None
        self._sink_owned = False
        # WAL-completeness accounting: the highest seq the sink has seen,
        # and a pinned gap marker for events the ring evicted before they
        # were ever streamed.  The marker lives *outside* the ring (it
        # would otherwise evict a live event and recurse) and is mutated
        # in place to coalesce consecutive lossy evictions.
        self._streamed_seq = 0
        self._gap: Event | None = None
        # Live-stream taps (repro.obs.risk): callables invoked with every
        # emitted Event.  An empty list costs one truthiness check on the
        # hot path; taps must not raise and may re-enter emit() (a tap
        # emitting its own event simply takes the next seq).
        self._taps: list = []

    # ------------------------------------------------------------------
    # The one hot entry point
    # ------------------------------------------------------------------

    def emit(self, kind: str, /, **attrs: object) -> int | None:
        """Record one event (dropped entirely while disabled).

        Returns the event's sequence number so related events can carry
        a join key (e.g. ``cloak.degraded`` naming its ``cloak.result``
        via ``result_seq``); ``None`` while disabled.
        """
        if not self.enabled:
            return None
        if self.correlation is not None:
            self.correlation.stamp(attrs)
        self._seq += 1
        event = Event(self._seq, kind, attrs)
        ring = self._ring
        if len(ring) == ring.maxlen and ring[0].seq > self._streamed_seq:
            self._note_lossy_eviction(ring[0])
        ring.append(event)
        if self.registry is not None:
            self.registry.counter(EVENT_METRIC, kind=kind).inc()
        if self._sink is not None:
            self._sink.write(
                json.dumps(event.to_dict(), sort_keys=True, default=str) + "\n"
            )
            self._streamed_seq = event.seq
        if self._taps:
            for tap in self._taps:
                tap(event)
        return event.seq

    def _note_lossy_eviction(self, victim: Event) -> None:
        """Record that ``victim`` fell off the ring without ever being
        flushed to a JSONL sink — i.e. it is gone for good.

        The first lossy eviction creates the pinned ``log.truncated``
        marker (carrying the victim's seq as its own, so replay readers
        see where the trail breaks); later ones widen its range.
        """
        if self._gap is None:
            self._gap = Event(
                victim.seq,
                LOG_TRUNCATED,
                {
                    "first_seq": victim.seq,
                    "last_seq": victim.seq,
                    "lost": 1,
                    "flushed_seq": self._streamed_seq,
                },
            )
        else:
            self._gap.attrs["last_seq"] = victim.seq
            self._gap.attrs["lost"] += 1

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def add_tap(self, tap) -> None:
        """Invoke ``tap(event)`` for every future emission (live stream).

        Taps see events *after* ring/sink handling, in registration
        order.  They are the feed of the online risk monitor — cheap by
        contract: a tap runs inline on the emit hot path.
        """
        if tap not in self._taps:
            self._taps.append(tap)

    def remove_tap(self, tap) -> None:
        """Stop invoking a previously added tap (no-op when absent)."""
        try:
            self._taps.remove(tap)
        except ValueError:
            pass

    def attach_jsonl(self, target: str | IO[str]) -> None:
        """Stream every future event to ``target`` (path or open text file).

        A path is opened in append mode and owned (closed by
        :meth:`detach_jsonl` / a later ``attach``); a file object is
        borrowed and left open.

        Buffered events the sink has never seen are backfilled first,
        oldest-first, so attaching late still yields a complete trail of
        everything the ring remembers.  If unflushed events were already
        evicted, the ``log.truncated`` marker is written ahead of them —
        the sink's trail then *declares* its own incompleteness instead
        of hiding it (strict readers refuse such trails).
        """
        self.detach_jsonl()
        if isinstance(target, str):
            # Line-buffered: each event record reaches the OS as soon as
            # it is written, which is what makes the sink usable as a
            # write-ahead log — a crashed process loses at most the one
            # record it was mid-write on (repro.persist tolerates exactly
            # that torn final line).
            self._sink = open(target, "a", encoding="utf-8", buffering=1)
            self._sink_owned = True
        else:
            self._sink = target
            self._sink_owned = False
        pending = [e for e in self._buffered() if e.seq > self._streamed_seq]
        for event in pending:
            self._sink.write(
                json.dumps(event.to_dict(), sort_keys=True, default=str) + "\n"
            )
        if pending:
            self._streamed_seq = pending[-1].seq

    def detach_jsonl(self) -> None:
        """Stop streaming; closes the sink only if this log opened it."""
        sink, owned = self._sink, self._sink_owned
        self._sink = None
        self._sink_owned = False
        if sink is not None:
            if owned:
                sink.close()
            else:
                sink.flush()

    def reset(self) -> None:
        """Forget buffered events (sequence numbers keep increasing).

        An explicit reset also drops the truncation marker: the caller
        deliberately discarded the buffer, which is not the silent data
        loss the marker exists to declare.
        """
        self._ring.clear()
        self._gap = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def truncated(self) -> Event | None:
        """The pinned ``log.truncated`` gap marker, if any loss occurred."""
        return self._gap

    def _buffered(self) -> list[Event]:
        """Gap marker (when present) followed by the ring, oldest-first."""
        if self._gap is None:
            return list(self._ring)
        return [self._gap, *self._ring]

    def events(self, kind: str | None = None) -> Iterator[Event]:
        """Buffered events oldest-first, optionally filtered by kind.

        When unflushed events have been evicted, the stream starts with
        the ``log.truncated`` marker declaring the lost seq range.
        """
        if kind is None:
            return iter(self._buffered())
        return iter([e for e in self._buffered() if e.kind == kind])

    def counts(self) -> dict[str, int]:
        """Buffered events per kind (ring-buffer view, not lifetime)."""
        out: dict[str, int] = {}
        for event in self._buffered():
            out[event.kind] = out.get(event.kind, 0) + 1
        return dict(sorted(out.items()))

    def dump_jsonl(self, stream: IO[str] | None = None) -> str:
        """Serialise the buffered events as JSONL; also returns the text.

        The ``log.truncated`` marker (when present) leads the dump, so a
        trail reconstructed from the ring declares its own incompleteness
        to :func:`read_jsonl` / replay instead of passing for a full WAL.
        """
        lines = [
            json.dumps(e.to_dict(), sort_keys=True, default=str)
            for e in self._buffered()
        ]
        text = "\n".join(lines) + ("\n" if lines else "")
        if stream is not None:
            stream.write(text)
        return text

    def __len__(self) -> int:
        return len(self._ring)


def read_jsonl(
    source: str | IO[str] | Iterable[str], *, strict: bool = False
) -> list[Event]:
    """Parse a JSONL event trail back into :class:`Event` values.

    Accepts a path, an open text file, or any iterable of lines; blank
    lines are skipped, so concatenated sink files ingest cleanly.

    A truncated or otherwise unparsable *final* line is dropped instead
    of raising: a process that crashes mid-``write`` leaves exactly one
    partial record at the tail, and a recovery reader (the event log is
    the ROADMAP's write-ahead log in waiting) must still ingest the
    complete prefix.  Corruption anywhere *before* the final line still
    raises — that is data loss, not an interrupted append.  Pass
    ``strict=True`` to raise on any bad line.

    ``strict=True`` additionally refuses trails that *declare* their own
    incompleteness via a ``log.truncated`` marker: a recovery reader must
    not silently rebuild state from a trail whose ring evicted unflushed
    events.  Non-strict reads pass the marker through so callers (the
    :mod:`repro.persist` recovery engine) can surface the gap themselves.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    lines = [line for line in lines if line.strip()]
    events: list[Event] = []
    last = len(lines) - 1
    for position, line in enumerate(lines):
        try:
            events.append(Event.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            if strict or position != last:
                raise
    if strict:
        for event in events:
            if event.kind == LOG_TRUNCATED:
                raise ValueError(
                    "event trail declares a truncation gap: events "
                    f"{event.attrs.get('first_seq')}..{event.attrs.get('last_seq')} "
                    "were evicted before reaching the sink"
                )
    return events
