"""Pipeline-wide observability: metrics, tracing, exporters.

This package makes the paper's privacy/QoS dial *measurable*.  Every
stage of the Figure 1 architecture — user update, anonymizer admission,
cloaking, server candidate generation, client refinement, plus the
public/probabilistic paths and the batch engine's snapshot/kernel
stages — is wrapped in a :func:`Telemetry.span`, and the spatial
indexes count node visits, leaf scans and distance computations per
query (see ``docs/observability.md`` for the complete
span/metric -> paper-stage mapping).

The :class:`Telemetry` facade bundles a :class:`~repro.obs.metrics.
MetricsRegistry` with a :class:`~repro.obs.trace.Tracer`.  A process
global (:func:`get_telemetry`) serves components constructed standalone;
:class:`~repro.core.system.PrivacySystem` builds a private instance per
system so concurrent systems never mix numbers.  Exporters for JSON,
Prometheus text format and an ASCII dashboard live in
:mod:`repro.obs.export` and behind ``python -m repro obs``.
"""

from __future__ import annotations

from repro.obs.correlate import (
    CORRELATION_METRIC,
    CorrelatedRecord,
    CorrelationIds,
    correlate_events,
)
from repro.obs.events import EVENT_KINDS, EVENT_METRIC, Event, EventLog
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_key,
)
from repro.obs.trace import SPAN_METRIC, SpanRecord, Tracer


class Telemetry:
    """One registry + one tracer + one event log: the injection unit.

    Args:
        enabled: whether spans are recorded; metrics counters always work
            (they are integer adds, cheaper than the spans they'd gate).
        keep: completed-span ring-buffer size.
        events_enabled: whether structured events are recorded; follows
            ``enabled`` when omitted, so dark telemetry stays dark.
        events_keep: event ring-buffer size.
    """

    def __init__(
        self,
        enabled: bool = True,
        keep: int = 512,
        events_enabled: bool | None = None,
        events_keep: int = 2048,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(self.registry, enabled=enabled, keep=keep)
        self.events = EventLog(
            self.registry,
            enabled=enabled if events_enabled is None else events_enabled,
            keep=events_keep,
        )
        # One correlation-id unit shared by the log and the tracer, so a
        # scope opened at any entry point stamps both streams.
        self.correlation = CorrelationIds(self.registry)
        self.events.correlation = self.correlation
        self.tracer.correlation = self.correlation
        # Bind the hot methods straight onto the instance: one method
        # call instead of two on the hottest paths in the package.
        self.span = self.tracer.span
        self.emit = self.events.emit
        self.correlate = self.correlation.scope

    # ------------------------------------------------------------------
    # Hot-path API
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: object):
        """Time one stage; no-op fast path when tracing is disabled."""
        return self.tracer.span(name, **attrs)

    def emit(self, kind: str, /, **attrs: object) -> int | None:
        """Record one structured event; dropped while events are disabled."""
        return self.events.emit(kind, **attrs)

    def correlate(self, kind: str = "q", reuse: bool = False):
        """Open a correlation scope: everything recorded inside carries
        the minted ``qid`` (see :class:`~repro.obs.correlate.CorrelationIds`)."""
        return self.correlation.scope(kind, reuse=reuse)

    def profiled(self, top: int = 15, sample_every: int = 1):
        """Context manager installing a hot-span profiler on this tracer;
        yields the :class:`~repro.obs.profile.SpanProfiler`."""
        from repro.obs.profile import profiled as _profiled

        return _profiled(self, top=top, sample_every=sample_every)

    def correlated_records(self):
        """Join buffered events and spans by ``qid`` (offline view)."""
        return correlate_events(self.events.events(), self.tracer.spans())

    def count(self, name: str, amount: int = 1, **labels: object) -> None:
        """Increment counter ``name`` (created on first use)."""
        self.registry.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record ``value`` into histogram ``name``."""
        self.registry.histogram(name, **labels).observe(value)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        self.registry.gauge(name, **labels).set(value)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def enable(self) -> None:
        self.tracer.enable()

    def disable(self) -> None:
        self.tracer.disable()

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.reset()
        self.events.reset()

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def stage_latencies(self) -> dict[str, dict[str, float]]:
        """Per-span-name latency summaries (count, mean, p50/p95/p99, ms)."""
        stages: dict[str, dict[str, float]] = {}
        for (name, labels), hist in self.registry.histograms():
            if name != SPAN_METRIC:
                continue
            label_map = dict(labels)
            span_name = label_map.get("span")
            if span_name is None:
                continue
            stages[span_name] = {
                "count": hist.count,
                "total_ms": hist.total,
                "mean_ms": hist.mean,
                "p50_ms": hist.quantile(0.50),
                "p95_ms": hist.quantile(0.95),
                "p99_ms": hist.quantile(0.99),
                "max_ms": hist.max,
            }
        return dict(sorted(stages.items()))

    def snapshot(self) -> dict[str, object]:
        """Plain-data snapshot: stages + raw metrics, JSON-serialisable."""
        raw = self.registry.snapshot()
        histograms = {
            key: value
            for key, value in raw["histograms"].items()
            if not key.startswith(SPAN_METRIC + "{")
        }
        return {
            "enabled": self.enabled,
            "stages": self.stage_latencies(),
            "counters": raw["counters"],
            "gauges": raw["gauges"],
            "histograms": histograms,
            "events": self.events.counts(),
        }


_GLOBAL = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-global telemetry used by standalone components."""
    return _GLOBAL


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Swap the process-global telemetry; returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = telemetry
    return previous


def span(name: str, **attrs: object):
    """Span on the process-global telemetry (module-level convenience)."""
    return _GLOBAL.span(name, **attrs)


def enable_tracing() -> None:
    _GLOBAL.enable()


def disable_tracing() -> None:
    _GLOBAL.disable()


# Imported after Telemetry exists: audit builds on events, explain on the
# index counters — none depends back on this module at import time.
from repro.obs.accuracy import (  # noqa: E402
    AccuracyMonitor,
    PlanAccuracyAuditor,
)
from repro.obs.audit import PrivacyAuditor  # noqa: E402
from repro.obs.explain import (  # noqa: E402
    PlanNode,
    QueryExplainer,
    plan_to_json,
    render_plan,
)
from repro.obs.profile import SpanProfiler  # noqa: E402
from repro.obs.risk import PrivacyRiskMonitor  # noqa: E402
from repro.obs.serve import (  # noqa: E402
    TelemetryEndpoint,
    validate_exposition,
)
from repro.obs.slo import (  # noqa: E402
    DEFAULT_SLOS,
    HealthReport,
    SLOMonitor,
    SLOSpec,
    load_slos,
)
from repro.obs.timeseries import TimeSeriesStore, Window  # noqa: E402

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "SPAN_METRIC",
    "SpanRecord",
    "Tracer",
    "Telemetry",
    "Event",
    "EventLog",
    "EVENT_KINDS",
    "EVENT_METRIC",
    "CorrelationIds",
    "CorrelatedRecord",
    "correlate_events",
    "CORRELATION_METRIC",
    "PrivacyAuditor",
    "AccuracyMonitor",
    "PlanAccuracyAuditor",
    "SpanProfiler",
    "PrivacyRiskMonitor",
    "TimeSeriesStore",
    "Window",
    "TelemetryEndpoint",
    "validate_exposition",
    "SLOSpec",
    "SLOMonitor",
    "HealthReport",
    "DEFAULT_SLOS",
    "load_slos",
    "PlanNode",
    "QueryExplainer",
    "plan_to_json",
    "render_plan",
    "get_telemetry",
    "set_telemetry",
    "span",
    "enable_tracing",
    "disable_tracing",
    "render_key",
]
