"""Correlation IDs: join every telemetry signal for one request.

The event log, the span tracer, the planner's decision stream and
EXPLAIN each record their own view of a query.  Until now nothing tied
those views together: a ``planner.decision`` and the ``query.completed``
it caused were only related by their position in the ring buffer.  This
module mints a request-scoped identifier at every entry point —
``q-000042`` for a single query, ``b-000007`` for a batch — and the
:class:`~repro.obs.events.EventLog` and :class:`~repro.obs.trace.Tracer`
stamp it onto everything recorded while the scope is active, so all
telemetry for one request joins into a single record.

Design constraints match the rest of the package: dependency-free and
cheap enough to sit on the hot path.  An active scope costs two
attribute writes on entry and two on exit; stamping is one ``None``
check per event/span.  Thread-safety is out of scope — the system is
single-process synchronous today (see ROADMAP), and the scope stack
restores correctly under any nesting of entry points.

Scope semantics
---------------

* ``scope("q")`` mints a fresh query id.  Nested query scopes mint
  fresh ids too (each user-bound query inside a batch gets its own).
* ``scope("b")`` mints a batch id and makes it both the current id and
  the ambient batch id, so events emitted directly by the batch driver
  carry it as ``qid`` while per-query children carry it as ``bid``.
* ``reuse=True`` joins an already-active scope of the same kind instead
  of minting: ``BatchEngine.execute`` inside ``server.execute_batch``
  inside ``system.execute_batch`` is one batch, not three, and
  ``planner.execute`` called under ``system.query`` shares the query's
  id so decision and measurement join on it.

The offline join (:func:`correlate_events`) groups a recorded event
trail by ``qid`` — the auditors in :mod:`repro.obs.accuracy` build on
it, and dashboards can reconstruct one request's full story from a
JSONL file alone.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.events import Event
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import SpanRecord

#: Counter family tallying minted ids per kind (``correlation.ids{kind=q}``).
CORRELATION_METRIC = "correlation.ids"

#: Kind prefix for single-query scopes.
QUERY_KIND = "q"
#: Kind prefix for batch scopes (``execute_batch``, ``publish_all``).
BATCH_KIND = "b"


class CorrelationIds:
    """Mints and scopes the request ids one telemetry unit stamps.

    One instance lives on each :class:`~repro.obs.Telemetry`; the event
    log and tracer hold a reference and read :attr:`current` /
    :attr:`batch` at record time.

    Args:
        registry: optional metrics registry; each mint increments
            ``correlation.ids{kind=...}`` so exporters can show request
            volume per entry-point kind.
    """

    __slots__ = ("registry", "current", "batch", "_next")

    def __init__(self, registry: "MetricsRegistry | None" = None) -> None:
        self.registry = registry
        #: Innermost active scope id (stamped as ``qid``), or ``None``.
        self.current: str | None = None
        #: Innermost active *batch* scope id (stamped as ``bid``), or ``None``.
        self.batch: str | None = None
        self._next = 1

    def mint(self, kind: str = QUERY_KIND) -> str:
        """A fresh id like ``q-000042`` (monotonic per telemetry unit)."""
        ident = f"{kind}-{self._next:06d}"
        self._next += 1
        if self.registry is not None:
            self.registry.counter(CORRELATION_METRIC, kind=kind).inc()
        return ident

    @contextmanager
    def scope(self, kind: str = QUERY_KIND, reuse: bool = False) -> Iterator[str]:
        """Activate a correlation scope; yields the active id.

        Args:
            kind: ``"q"`` for one query, ``"b"`` for a batch.
            reuse: join an already-active scope of the same kind instead
                of minting a fresh id (nested entry points that are the
                *same* request, not a sub-request).
        """
        if reuse:
            existing = (
                self.batch
                if kind == BATCH_KIND
                else (
                    self.current
                    if self.current is not None
                    and self.current.startswith(kind + "-")
                    else None
                )
            )
            if existing is not None:
                yield existing
                return
        ident = self.mint(kind)
        prev_current, prev_batch = self.current, self.batch
        self.current = ident
        if kind == BATCH_KIND:
            self.batch = ident
        try:
            yield ident
        finally:
            self.current, self.batch = prev_current, prev_batch

    def stamp(self, attrs: dict) -> None:
        """Write ``qid`` (and ``bid`` under a batch) into ``attrs`` in place.

        Explicit caller-provided ids win; outside any scope this is a
        no-op, so uncorrelated emission stays byte-identical.
        """
        qid = self.current
        if qid is None:
            return
        attrs.setdefault("qid", qid)
        bid = self.batch
        if bid is not None and bid != qid:
            attrs.setdefault("bid", bid)


# ----------------------------------------------------------------------
# Offline join
# ----------------------------------------------------------------------


@dataclass
class CorrelatedRecord:
    """Every telemetry signal recorded under one correlation id."""

    qid: str
    #: Ambient batch id, when the request ran inside a batch scope.
    bid: str | None = None
    events: list["Event"] = field(default_factory=list)
    spans: list["SpanRecord"] = field(default_factory=list)

    def kinds(self) -> list[str]:
        """Event kinds in arrival order (handy in tests and reports)."""
        return [event.kind for event in self.events]

    def first(self, kind: str) -> "Event | None":
        """The first event of ``kind`` in this record, or ``None``."""
        for event in self.events:
            if event.kind == kind:
                return event
        return None

    def to_dict(self) -> dict:
        return {
            "qid": self.qid,
            "bid": self.bid,
            "events": [event.to_dict() for event in self.events],
            "spans": [
                {
                    "name": span.name,
                    "path": span.path,
                    "duration_ms": span.duration_ms,
                }
                for span in self.spans
            ],
        }


def correlate_events(
    events: Iterable["Event"],
    spans: Iterable["SpanRecord"] = (),
) -> dict[str, CorrelatedRecord]:
    """Group an event trail (and optionally spans) by correlation id.

    Events without a ``qid`` (emitted outside any scope, or by an older
    log format) are skipped — correlation is additive, not required.
    Returns ``{qid: record}`` in first-seen order.
    """
    records: dict[str, CorrelatedRecord] = {}

    def _record_for(qid: str, bid: object) -> CorrelatedRecord:
        record = records.get(qid)
        if record is None:
            record = records[qid] = CorrelatedRecord(qid=qid)
        if record.bid is None and isinstance(bid, str):
            record.bid = bid
        return record

    for event in events:
        qid = event.attrs.get("qid")
        if isinstance(qid, str):
            _record_for(qid, event.attrs.get("bid")).events.append(event)
    for span in spans:
        qid = span.attrs.get("qid")
        if isinstance(qid, str):
            _record_for(qid, span.attrs.get("bid")).spans.append(span)
    return records
