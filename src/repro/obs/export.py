"""Exporters for telemetry snapshots: JSON, Prometheus text, ASCII.

All three exporters consume the plain-data snapshot shape produced by
:meth:`repro.obs.Telemetry.snapshot` /
:meth:`repro.core.system.PrivacySystem.telemetry` — a dict with optional
sections ``stages``, ``counters``, ``gauges``, ``histograms``,
``indexes``, ``server`` and ``qos`` — so a snapshot can be serialised,
shipped, and re-rendered anywhere without the live objects.
"""

from __future__ import annotations

import json
import re
from typing import Mapping

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABELLED_RE = re.compile(r"^(?P<name>[^{]+)\{(?P<labels>.*)\}$", re.DOTALL)


def to_json(snapshot: Mapping[str, object], indent: int | None = 2) -> str:
    """The snapshot as a JSON document (machine-readable baseline)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


# ----------------------------------------------------------------------
# Prometheus text exposition format
# ----------------------------------------------------------------------

def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name.strip())


def _split_rendered(key: str) -> tuple[str, dict[str, str]]:
    """Undo :func:`repro.obs.metrics.render_key`: ``name{k=v}`` -> parts."""
    match = _LABELLED_RE.match(key)
    if match is None:
        return key, {}
    labels: dict[str, str] = {}
    for pair in match.group("labels").split(","):
        if "=" in pair:
            k, v = pair.split("=", 1)
            labels[k] = v
    return match.group("name"), labels


def _prom_label_value(value: object) -> str:
    """Escape a label value per the text exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_prom_name(str(k))}="{_prom_label_value(v)}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def to_prometheus(snapshot: Mapping[str, object], prefix: str = "repro") -> str:
    """Prometheus text exposition of the snapshot.

    Counters and gauges map directly; stage latencies and histograms are
    emitted as summaries (``quantile`` label plus ``_count``/``_sum``).
    """
    lines: list[str] = []
    typed: set[str] = set()

    def emit(name: str, labels: Mapping[str, object], value: float) -> None:
        lines.append(f"{name}{_prom_labels(labels)} {value}")

    def declare(metric: str, kind: str) -> None:
        # One TYPE line per metric family, even across labelled samples.
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} {kind}")

    for key, value in dict(snapshot.get("counters", {})).items():
        name, labels = _split_rendered(key)
        metric = f"{prefix}_{_prom_name(name)}_total"
        declare(metric, "counter")
        emit(metric, labels, value)

    for key, value in dict(snapshot.get("gauges", {})).items():
        name, labels = _split_rendered(key)
        metric = f"{prefix}_{_prom_name(name)}"
        declare(metric, "gauge")
        emit(metric, labels, value)

    stage_metric = f"{prefix}_stage_latency_ms"
    stages = dict(snapshot.get("stages", {}))
    if stages:
        declare(stage_metric, "summary")
    for stage, summary in stages.items():
        labels = {"span": stage}
        for quantile, field_name in (("0.5", "p50_ms"), ("0.95", "p95_ms"), ("0.99", "p99_ms")):
            emit(stage_metric, {**labels, "quantile": quantile}, summary[field_name])
        emit(f"{stage_metric}_count", labels, summary["count"])
        emit(f"{stage_metric}_sum", labels, summary["total_ms"])

    for key, summary in dict(snapshot.get("histograms", {})).items():
        name, labels = _split_rendered(key)
        metric = f"{prefix}_{_prom_name(name)}"
        buckets = summary.get("buckets")
        if buckets:
            # Proper histogram exposition: cumulative _bucket{le=...}
            # samples ending at +Inf, plus _count and _sum.
            declare(metric, "histogram")
            for le, cumulative in buckets:
                le_text = le if isinstance(le, str) else format(le, "g")
                emit(f"{metric}_bucket", {**labels, "le": le_text}, cumulative)
        else:
            declare(metric, "summary")
            for quantile, field_name in (
                ("0.5", "p50"),
                ("0.95", "p95"),
                ("0.99", "p99"),
            ):
                emit(metric, {**labels, "quantile": quantile}, summary[field_name])
        emit(f"{metric}_count", labels, summary["count"])
        emit(f"{metric}_sum", labels, summary["sum"])

    for index_name, counters in dict(snapshot.get("indexes", {})).items():
        for counter_name, value in counters.items():
            metric = f"{prefix}_index_{_prom_name(counter_name)}_total"
            declare(metric, "counter")
            emit(metric, {"index": index_name}, value)

    for stat_name, value in dict(snapshot.get("server", {})).items():
        if isinstance(value, (int, float)):
            metric = f"{prefix}_server_{_prom_name(stat_name)}"
            declare(metric, "gauge")
            emit(metric, {}, value)

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# ASCII dashboard
# ----------------------------------------------------------------------

def _bar(value: float, scale: float, width: int = 24) -> str:
    if scale <= 0:
        return ""
    filled = int(round(width * min(1.0, value / scale)))
    return "#" * filled


def render_dashboard(snapshot: Mapping[str, object], width: int = 78) -> str:
    """A terminal dashboard of the snapshot (stages, indexes, counters)."""
    out: list[str] = []

    def rule(title: str) -> None:
        out.append(f"== {title} " + "=" * max(0, width - len(title) - 4))

    stages = dict(snapshot.get("stages", {}))
    if stages:
        rule("pipeline stages (wall-clock, ms)")
        scale = max(s["p95_ms"] for s in stages.values()) or 1.0
        name_w = max(len(n) for n in stages)
        for name, s in stages.items():
            out.append(
                f"{name:<{name_w}}  n={int(s['count']):>6}  "
                f"p50={s['p50_ms']:>8.3f}  p95={s['p95_ms']:>8.3f}  "
                f"p99={s['p99_ms']:>8.3f}  {_bar(s['p95_ms'], scale)}"
            )

    indexes = dict(snapshot.get("indexes", {}))
    if indexes:
        rule("index work (cumulative)")
        name_w = max(len(n) for n in indexes)
        for name, counters in indexes.items():
            parts = "  ".join(f"{k}={v}" for k, v in counters.items() if v)
            out.append(f"{name:<{name_w}}  {parts or '(idle)'}")

    histograms = dict(snapshot.get("histograms", {}))
    if histograms:
        rule("distributions")
        name_w = max(len(n) for n in histograms)
        for name, s in histograms.items():
            out.append(
                f"{name:<{name_w}}  n={int(s['count']):>6}  mean={s['mean']:>9.2f}  "
                f"p50={s['p50']:>9.2f}  p95={s['p95']:>9.2f}  p99={s['p99']:>9.2f}"
            )

    counters = dict(snapshot.get("counters", {}))
    gauges = dict(snapshot.get("gauges", {}))
    if counters or gauges:
        rule("counters and gauges")
        for name, value in {**counters, **gauges}.items():
            out.append(f"{name} = {value}")

    server = dict(snapshot.get("server", {}))
    if server:
        rule("server")
        for name, value in server.items():
            out.append(f"{name} = {value}")

    qos = dict(snapshot.get("qos", {}))
    if qos:
        rule("quality of service")
        for name, value in qos.items():
            formatted = f"{value:.4g}" if isinstance(value, float) else str(value)
            out.append(f"{name} = {formatted}")

    if not out:
        out.append("(no telemetry recorded)")
    return "\n".join(out)
