"""Dependency-free metrics primitives: counters, gauges, histograms.

The registry is the numeric half of the observability layer (the other
half, wall-clock span tracing, lives in :mod:`repro.obs.trace`).  Design
constraints, in order:

1. no third-party dependencies — histograms estimate quantiles from
   fixed geometric buckets instead of keeping samples;
2. cheap enough to leave on in production paths — an increment is a dict
   lookup plus an integer add;
3. usable both as a process-global (``repro.obs.get_telemetry()``) and as
   an injected per-system instance, so two :class:`~repro.core.system.
   PrivacySystem` instances never mix their numbers.

Metric identity is ``(name, labels)``; labels are free-form keyword
arguments (``registry.counter("queries", kind="private_range")``).
Creation is lock-guarded; updates rely on the GIL (single bytecode-level
races can at worst drop an increment, never corrupt state).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterator, Mapping

#: Geometric bucket ladder (powers of two from 1/1024 up to ~2 million).
#: One ladder serves both latency-in-milliseconds and candidate-count
#: histograms: relative resolution is a constant factor of 2 everywhere.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(2.0**e for e in range(-10, 22))

MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, object]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_key(key: MetricKey) -> str:
    """Flat display form: ``name{k=v,...}`` (plain ``name`` when unlabelled)."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount


class Gauge:
    """A float that can move in both directions (population sizes, ratios)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimates.

    Observations land in geometric buckets; a quantile is reconstructed
    by linear interpolation inside the bucket holding the target rank and
    clamped to the observed ``[min, max]``.  With the default powers-of-two
    ladder the estimate is within a factor of 2 of the true quantile, and
    far closer in practice because the endpoints are exact.
    """

    __slots__ = ("bounds", "bucket_counts", "count", "total", "_min", "_max")

    def __init__(self, buckets: tuple[float, ...] | None = None) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be strictly increasing")
        if not bounds:
            raise ValueError("at least one bucket bound is required")
        self.bounds = bounds
        # One slot per bound (values <= bound) plus a final overflow slot.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of everything observed so far."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if cumulative + bucket_count >= rank:
                lo = self.bounds[i - 1] if i >= 1 else self._min
                hi = self.bounds[i] if i < len(self.bounds) else self._max
                lo = max(lo, self._min)
                hi = min(hi, self._max)
                if hi <= lo:
                    return lo
                fraction = (rank - cumulative) / bucket_count
                return lo + fraction * (hi - lo)
            cumulative += bucket_count
        return self._max  # pragma: no cover - rank <= count by construction

    def buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, Prometheus-style.

        The ladder is truncated at the first bound at or above the
        observed maximum (the long empty tail carries no information)
        and always ends with the ``+Inf`` bucket equal to ``count``.
        """
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
            if self.count and bound >= self._max:
                break
        out.append((math.inf, self.count))
        return out

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            # +Inf rendered as a string: strict-JSON safe, and already the
            # exact ``le`` label value Prometheus exposition expects.
            "buckets": [
                [le if math.isfinite(le) else "+Inf", n]
                for le, n in self.buckets()
            ],
        }


class MetricsRegistry:
    """Named, labelled counters/gauges/histograms with a flat snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    # ------------------------------------------------------------------
    # Metric accessors (create on first use)
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        key = _key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            with self._lock:
                metric = self._counters.setdefault(key, Counter())
        return metric

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = _key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            with self._lock:
                metric = self._gauges.setdefault(key, Gauge())
        return metric

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: object
    ) -> Histogram:
        key = _key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            with self._lock:
                metric = self._histograms.setdefault(key, Histogram(buckets))
        return metric

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def counters(self) -> Iterator[tuple[MetricKey, Counter]]:
        return iter(list(self._counters.items()))

    def gauges(self) -> Iterator[tuple[MetricKey, Gauge]]:
        return iter(list(self._gauges.items()))

    def histograms(self) -> Iterator[tuple[MetricKey, Histogram]]:
        return iter(list(self._histograms.items()))

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Plain-data snapshot: rendered metric name -> value(s)."""
        return {
            "counters": {
                render_key(k): c.value for k, c in sorted(self._counters.items())
            },
            "gauges": {
                render_key(k): g.value for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                render_key(k): h.snapshot()
                for k, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every metric (fresh registry semantics, same identity)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
