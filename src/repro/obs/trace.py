"""Span-based wall-clock tracing for the private-query pipeline.

A *span* wraps one pipeline stage in a context manager::

    with tracer.span("anonymizer.cloak", algo="pyramid"):
        result = cloaker.cloak(user, requirement)

On exit the span's duration lands in a per-stage histogram
(``span_ms{span=anonymizer.cloak}``) and a completed-span record — name,
dotted path, attributes, depth, duration — joins a bounded ring buffer
for dashboards.  Spans nest naturally: entering a span while another is
active records the child with a ``parent/child`` path.

Disabled tracing is a hard no-op fast path: ``span()`` returns a shared
singleton whose ``__enter__``/``__exit__`` do nothing, so instrumented
code pays one attribute check per stage and nothing else.  The overhead
test in ``tests/unit/test_obs_overhead.py`` holds this to < 5 % on a
10k-query microloop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator

from repro.obs.metrics import MetricsRegistry

#: Histogram name under which every span duration is recorded.
SPAN_METRIC = "span_ms"


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    Attributes:
        name: the stage name (``"server.private_range"``).
        path: slash-joined ancestry (``"query.private_range/server.private_range"``).
        depth: 0 for root spans, 1 for their children, ...
        duration_ms: wall-clock time between enter and exit.
        attrs: the keyword attributes passed to :meth:`Tracer.span`.
    """

    name: str
    path: str
    depth: int
    duration_ms: float
    attrs: dict[str, object] = field(default_factory=dict)


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def annotate(self, **attrs: object) -> None:
        """Accept and drop attributes (API parity with live spans)."""


_NOOP_SPAN = _NoopSpan()


class _LiveSpan:
    """An active span; created only when tracing is enabled."""

    __slots__ = ("_tracer", "name", "attrs", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def annotate(self, **attrs: object) -> None:
        """Attach attributes discovered mid-span (e.g. result sizes)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_LiveSpan":
        self._tracer._stack.append(self.name)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        duration_ms = (perf_counter() - self._start) * 1000.0
        stack = self._tracer._stack
        path = "/".join(stack)
        depth = len(stack) - 1
        stack.pop()
        self._tracer._record(self, path, depth, duration_ms)
        return False


class Tracer:
    """Produces spans and aggregates their durations into a registry.

    Args:
        registry: destination for per-span histograms; a private registry
            is created when omitted.
        enabled: start enabled (the default) or dark.
        keep: ring-buffer capacity for completed :class:`SpanRecord` s.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        enabled: bool = True,
        keep: int = 512,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.enabled = enabled
        #: Optional :class:`~repro.obs.correlate.CorrelationIds` whose
        #: active scope is stamped onto every record (set by Telemetry).
        self.correlation = None
        #: Optional :class:`~repro.obs.profile.SpanProfiler` fed every
        #: completed span (installed by ``SpanProfiler.install``).
        self.profiler = None
        self._stack: list[str] = []
        self._recent: deque[SpanRecord] = deque(maxlen=keep)

    # ------------------------------------------------------------------
    # The one hot entry point
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: object):
        """A context manager timing one pipeline stage.

        When tracing is disabled this returns a shared no-op object — the
        fast path is a single attribute check.
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _LiveSpan(self, name, attrs)

    # ------------------------------------------------------------------
    # Control and introspection
    # ------------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def spans(self) -> Iterator[SpanRecord]:
        """Completed spans, oldest first (bounded by ``keep``)."""
        return iter(list(self._recent))

    def reset(self) -> None:
        """Forget recorded spans (metrics live in the registry)."""
        self._recent.clear()
        self._stack.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _record(
        self, span: _LiveSpan, path: str, depth: int, duration_ms: float
    ) -> None:
        if self.correlation is not None:
            self.correlation.stamp(span.attrs)
        profiler = self.profiler
        if profiler is not None:
            profiler.on_record(span.name, path, depth, duration_ms)
        self.registry.histogram(SPAN_METRIC, span=span.name).observe(duration_ms)
        self._recent.append(
            SpanRecord(
                name=span.name,
                path=path,
                depth=depth,
                duration_ms=duration_ms,
                attrs=span.attrs,
            )
        )
