"""Plan-accuracy auditing: predicted cost vs measured reality.

PR 6's planner emits a predicted per-query cost in every
``planner.decision`` event, but nothing ever checked the prediction.
This module closes that loop twice over:

* :class:`AccuracyMonitor` — the *online* half, owned by
  :class:`~repro.planner.planner.QueryPlanner`.  Every executed query
  feeds it (decision, measured seconds); it keeps a rolling
  measured/predicted ratio window per (kind, backend, route) group,
  emits a ``planner.mispredict`` event the moment a group's median
  ratio leaves the tolerance band, and — when the *overall* calibration
  drift (geometric mean of group medians) exceeds its band — asks the
  :class:`~repro.planner.stats.StatisticsCollector` to recalibrate.
  That is planner self-healing driven purely by observability: a stale
  calibration manifests as drift, drift triggers recalibration, fresh
  predictions bring the ratios home (proved end-to-end by
  ``tests/integration/test_feedback_loop.py``).

* :class:`PlanAccuracyAuditor` — the *offline* half.  Point it at any
  recorded event trail (ring buffer or JSONL file) and it joins each
  ``planner.decision`` with the ``planner.measured`` event sharing its
  ``qid`` (see :mod:`repro.obs.correlate`), then reports per-group
  mispredict ratios, overall drift, and how often the online loop fired
  (schema ``repro.obs.accuracy/1``).

Ratios are symmetric: a group predicting 4x too *low* is as wrong as
one predicting 4x too high, so bands compare ``max(r, 1/r)`` against
the threshold.  Sub-microsecond predictions are skipped — at that scale
the measurement is timer noise, not evidence.

Pinned routes (``Decision.pinned``: private NN / k-NN / Monte-Carlo NN,
which only the native store can execute) are handled differently.  A
mispredict there is *unfixable* by route choice — there is exactly one
candidate — and the statistics collector's recalibration does not model
their refinement machinery, so flagging them only produced alarm noise
and futile recalibrations.  Instead the monitor keeps a separate ratio
window per pinned group and folds the observed median into a
multiplicative ``pinned_bias`` that the planner applies to that group's
next cost estimates: the prediction self-corrects, the group never
counts toward ``mispredicts`` or drift.
"""

from __future__ import annotations

import math
from collections import deque
from typing import TYPE_CHECKING, Iterable

from repro.obs.events import (
    PLANNER_CALIBRATED,
    PLANNER_DECISION,
    PLANNER_MEASURED,
    PLANNER_MISPREDICT,
    Event,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.planner.planner import Decision

#: Report envelope schema tag.
ACCURACY_SCHEMA = "repro.obs.accuracy/1"

#: A group misprediced when median(max(r, 1/r)) exceeds this factor.
DEFAULT_THRESHOLD = 4.0

#: Overall drift (geometric-mean ratio) band triggering recalibration.
DEFAULT_DRIFT_BAND = 4.0

#: Rolling ratio window per (kind, backend, route) group.
DEFAULT_WINDOW = 32

#: Observations a group needs before its median is trusted.
DEFAULT_MIN_SAMPLES = 8

#: Predictions below this are timer noise, not evidence (seconds).
MIN_PREDICTED_SECONDS = 1e-9

#: A pinned group's median ratio outside this band updates its bias.
PINNED_ADJUST_BAND = 1.5


def _median(values: Iterable[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _fold(ratio: float) -> float:
    """Symmetric badness: 4x too slow and 4x too fast fold to 4."""
    if ratio <= 0.0:
        return math.inf
    return ratio if ratio >= 1.0 else 1.0 / ratio


class AccuracyMonitor:
    """Online measured-vs-predicted tracker with self-healing triggers.

    Args:
        threshold: per-group folded median ratio past which the group
            is a mispredict (emits ``planner.mispredict`` once per
            excursion — edge-triggered, re-armed when the group returns
            to band or after a recalibration).
        drift_band: folded overall drift past which a recalibration is
            requested (collected by the planner via
            :meth:`poll_recalibration`).
        window: rolling ratio window per group.
        min_samples: observations before a group's median is trusted.
    """

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        drift_band: float = DEFAULT_DRIFT_BAND,
        window: int = DEFAULT_WINDOW,
        min_samples: int = DEFAULT_MIN_SAMPLES,
    ) -> None:
        self.threshold = threshold
        self.drift_band = drift_band
        self.window = window
        self.min_samples = min_samples
        self._ratios: dict[tuple[str, str, str], deque[float]] = {}
        self._flagged: set[tuple[str, str, str]] = set()
        self._pinned_ratios: dict[tuple[str, str, str], deque[float]] = {}
        self._pinned_bias: dict[tuple[str, str, str], float] = {}
        self._observations = 0
        self._quiet_until = 0
        self._recal_reason: str | None = None
        #: Lifetime tallies (survive post-recalibration window resets).
        self.observed = 0
        self.mispredicts = 0
        self.recalibrations = 0
        self.pinned_recalibrations = 0

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def observe(
        self,
        decision: "Decision",
        seconds: float,
        n: int = 1,
        emit=None,
    ) -> float | None:
        """Feed one measurement; returns the ratio (or ``None`` if skipped).

        Args:
            decision: the plan that ran (its ``seconds`` is the
                per-query prediction).
            seconds: measured wall-clock seconds *per query*.
            n: how many queries the measurement averages over (batch).
            emit: optional ``Telemetry.emit`` for ``planner.mispredict``.
        """
        predicted = decision.seconds
        if predicted < MIN_PREDICTED_SECONDS or seconds < 0.0:
            return None
        ratio = max(seconds, 1e-12) / predicted
        key = (decision.kind, decision.backend, decision.route)
        if decision.pinned:
            return self._observe_pinned(key, ratio, emit)
        ring = self._ratios.get(key)
        if ring is None:
            ring = self._ratios[key] = deque(maxlen=self.window)
        ring.append(ratio)
        self.observed += 1
        self._observations += 1
        if len(ring) < self.min_samples:
            return ratio
        median = _median(ring)
        if _fold(median) > self.threshold:
            if key not in self._flagged:
                self._flagged.add(key)
                self.mispredicts += 1
                if emit is not None:
                    emit(
                        PLANNER_MISPREDICT,
                        query=key[0],
                        backend=key[1],
                        route=key[2],
                        median_ratio=median,
                        samples=len(ring),
                        threshold=self.threshold,
                        predicted_seconds=predicted,
                        measured_seconds=seconds,
                    )
            if (
                self._recal_reason is None
                and self._observations >= self._quiet_until
            ):
                drift = self.drift()
                if _fold(drift) > self.drift_band:
                    self._recal_reason = (
                        f"measured/predicted drift {drift:.3g}x across "
                        f"{len(self._flagged)} mispredicting group(s)"
                    )
        else:
            self._flagged.discard(key)
        return ratio

    def _observe_pinned(
        self, key: tuple[str, str, str], ratio: float, emit=None
    ) -> float:
        """Pinned-group path: learn a cost bias, never flag or drift.

        ``ratio`` is measured over the *already biased* prediction, so
        a multiplicative median update converges: once the bias is
        right, medians sit near 1.0 and nothing further happens.
        """
        ring = self._pinned_ratios.get(key)
        if ring is None:
            ring = self._pinned_ratios[key] = deque(maxlen=self.window)
        ring.append(ratio)
        self.observed += 1
        if len(ring) >= self.min_samples:
            median = _median(ring)
            if _fold(median) > PINNED_ADJUST_BAND:
                bias = self._pinned_bias.get(key, 1.0) * median
                self._pinned_bias[key] = bias
                self.pinned_recalibrations += 1
                ring.clear()
                if emit is not None:
                    emit(
                        PLANNER_CALIBRATED,
                        scope="pinned",
                        query=key[0],
                        backend=key[1],
                        route=key[2],
                        median_ratio=median,
                        bias=bias,
                    )
        return ratio

    def pinned_bias(self, kind: str, backend: str, route: str) -> float:
        """Learned cost multiplier for one pinned group (1.0 = none)."""
        return self._pinned_bias.get((kind, backend, route), 1.0)

    def poll_recalibration(self) -> str | None:
        """Collect (and clear) a pending recalibration request.

        Clearing also resets the ratio windows — the old ratios judged
        the *old* calibration — and opens a quiet period one window
        long, so the freshly calibrated predictions get a fair sample
        before the drift check re-arms.
        """
        reason = self._recal_reason
        if reason is not None:
            self._recal_reason = None
            self.recalibrations += 1
            self._quiet_until = self._observations + self.window
            self._ratios.clear()
            self._flagged.clear()
        return reason

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def drift(self) -> float:
        """Geometric mean of trusted group medians (1.0 = calibrated)."""
        logs = [
            math.log(_median(ring))
            for ring in self._ratios.values()
            if len(ring) >= self.min_samples and _median(ring) > 0.0
        ]
        if not logs:
            return 1.0
        return math.exp(sum(logs) / len(logs))

    def report(self) -> dict:
        """Per-group and overall accuracy (JSON-serialisable)."""
        groups = {}
        for (kind, backend, route), ring in sorted(self._ratios.items()):
            median = _median(ring)
            groups["/".join((kind, backend, route))] = {
                "kind": kind,
                "backend": backend,
                "route": route,
                "samples": len(ring),
                "median_ratio": median,
                "folded": _fold(median),
                "mispredict": (kind, backend, route) in self._flagged,
            }
        pinned_groups = {}
        for (kind, backend, route), ring in sorted(self._pinned_ratios.items()):
            median = _median(ring)
            pinned_groups["/".join((kind, backend, route))] = {
                "kind": kind,
                "backend": backend,
                "route": route,
                "samples": len(ring),
                "median_ratio": median,
                "bias": self._pinned_bias.get((kind, backend, route), 1.0),
            }
        drift = self.drift()
        return {
            "schema": ACCURACY_SCHEMA,
            "source": "online",
            "threshold": self.threshold,
            "drift_band": self.drift_band,
            "observed": self.observed,
            "mispredicts": self.mispredicts,
            "recalibrations": self.recalibrations,
            "pinned_recalibrations": self.pinned_recalibrations,
            "drift": drift,
            "drift_folded": _fold(drift),
            "groups": groups,
            "pinned_groups": pinned_groups,
        }

    def reset(self) -> None:
        self._ratios.clear()
        self._flagged.clear()
        self._pinned_ratios.clear()
        self._pinned_bias.clear()
        self._observations = 0
        self._quiet_until = 0
        self._recal_reason = None
        self.observed = 0
        self.mispredicts = 0
        self.recalibrations = 0
        self.pinned_recalibrations = 0


class PlanAccuracyAuditor:
    """Offline decision/measurement join over a recorded event trail.

    Feed it events (from :meth:`EventLog.events` or
    :func:`~repro.obs.events.read_jsonl`); it pairs every
    ``planner.measured`` with the ``planner.decision`` sharing its
    ``qid``.  Measurements carry their prediction inline too, so ratios
    survive trails whose decision events rolled off the ring buffer —
    the join tally (``joined`` vs ``measured``) reports how complete
    the correlation evidence was.
    """

    def __init__(self, threshold: float = DEFAULT_THRESHOLD) -> None:
        self.threshold = threshold
        self._decision_qids: set[str] = set()
        self._groups: dict[tuple[str, str, str], list[float]] = {}
        self.decisions = 0
        self.measured = 0
        self.joined = 0
        self.mispredict_events = 0
        self.calibrations = 0

    def consume(self, events: Iterable[Event]) -> "PlanAccuracyAuditor":
        for event in events:
            kind = event.kind
            if kind == PLANNER_DECISION:
                self.decisions += 1
                qid = event.attrs.get("qid")
                if isinstance(qid, str):
                    self._decision_qids.add(qid)
            elif kind == PLANNER_MEASURED:
                self.measured += 1
                attrs = event.attrs
                qid = attrs.get("qid")
                if isinstance(qid, str) and qid in self._decision_qids:
                    self.joined += 1
                predicted = float(attrs.get("est_seconds") or 0.0)
                seconds = float(attrs.get("seconds") or 0.0)
                if predicted >= MIN_PREDICTED_SECONDS and seconds >= 0.0:
                    key = (
                        str(attrs.get("query")),
                        str(attrs.get("backend")),
                        str(attrs.get("route")),
                    )
                    self._groups.setdefault(key, []).append(
                        max(seconds, 1e-12) / predicted
                    )
            elif kind == PLANNER_MISPREDICT:
                self.mispredict_events += 1
            elif kind == PLANNER_CALIBRATED:
                self.calibrations += 1
        return self

    def report(self) -> dict:
        groups = {}
        all_ratios: list[float] = []
        mispredicting = 0
        for (kind, backend, route), ratios in sorted(self._groups.items()):
            median = _median(ratios)
            bad = _fold(median) > self.threshold
            mispredicting += bad
            all_ratios.extend(ratios)
            groups["/".join((kind, backend, route))] = {
                "kind": kind,
                "backend": backend,
                "route": route,
                "samples": len(ratios),
                "median_ratio": median,
                "folded": _fold(median),
                "mispredict": bad,
            }
        overall = _median(all_ratios) if all_ratios else 1.0
        return {
            "schema": ACCURACY_SCHEMA,
            "source": "events",
            "threshold": self.threshold,
            "decisions": self.decisions,
            "measured": self.measured,
            "joined": self.joined,
            "mispredict_events": self.mispredict_events,
            "calibrations": self.calibrations,
            "median_ratio": overall,
            "median_folded": _fold(overall) if all_ratios else 1.0,
            "mispredicting_groups": mispredicting,
            "groups": groups,
        }
