"""Hot-span profiler: top-N pipeline stages by *self* time.

The tracer's histograms answer "how long does stage X take?", but not
"where does the time actually go?" — a parent span's duration includes
all of its children, so ``system.execute_batch`` always tops the
inclusive chart without saying whether the time went to snapshotting,
kernels, or the merge.  This module aggregates completed spans into
**self-time** (duration minus the time spent in child spans), which is
the flamegraph view: the stages worth optimising are the ones burning
time in their own frame.

Implementation rides the tracer's existing exit path.  Spans record on
``__exit__``, children before parents, so a single ``{depth: child_ms}``
accumulator recovers self-time exactly: when a span at depth *d*
records, everything accumulated at depth *d+1* since the last sibling
is its children's time.  The per-span cost is two dict operations —
cheap enough that the child-time bookkeeping always runs; only the
aggregation can be subsampled (``sample_every``) for very hot loops,
with counts scaled back up in the report.

Usage::

    with telemetry.profiled(top=10) as profiler:
        run_workload()
    print(profiler.render())

or ``python -m repro profile [--json]`` for a canned workload.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

from repro.obs.events import PROFILE_SAMPLED

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Telemetry
    from repro.obs.trace import Tracer

#: Report envelope schema tag.
PROFILE_SCHEMA = "repro.obs.profile/1"


class SpanProfiler:
    """Aggregates completed spans into a self-time profile.

    Install on a tracer (:meth:`install` or ``telemetry.profiled()``);
    every completed span flows through :meth:`on_record`.

    Args:
        top: default row count for :meth:`report` / :meth:`render`.
        sample_every: aggregate every N-th span only (child-time
            bookkeeping still sees all of them, so self-times stay
            exact for the sampled spans); counts and totals in the
            report are scaled by N.
    """

    def __init__(self, top: int = 15, sample_every: int = 1) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.top = top
        self.sample_every = sample_every
        self.spans_seen = 0
        #: path -> [count, total_ms, self_ms]
        self._agg: dict[str, list] = {}
        #: depth -> accumulated child duration awaiting its parent
        self._child_ms: dict[int, float] = {}
        self._tracer: "Tracer | None" = None
        #: Optional ``Telemetry.emit`` bound by :func:`profiled`; report
        #: cuts then land in the event log as ``profile.sampled``.
        self.emit = None

    # ------------------------------------------------------------------
    # Tracer hook
    # ------------------------------------------------------------------

    def install(self, tracer: "Tracer") -> "SpanProfiler":
        """Start receiving this tracer's spans (replaces any profiler)."""
        tracer.profiler = self
        self._tracer = tracer
        return self

    def uninstall(self) -> None:
        """Stop receiving spans; aggregated data is kept."""
        if self._tracer is not None and self._tracer.profiler is self:
            self._tracer.profiler = None
        self._tracer = None

    def on_record(
        self, name: str, path: str, depth: int, duration_ms: float
    ) -> None:
        """Tracer callback for one completed span (hot path)."""
        # Children recorded before this span accumulated at depth+1.
        child_ms = self._child_ms.pop(depth + 1, 0.0)
        if depth > 0:
            self._child_ms[depth] = self._child_ms.get(depth, 0.0) + duration_ms
        self.spans_seen += 1
        if self.spans_seen % self.sample_every:
            return
        row = self._agg.get(path)
        if row is None:
            row = self._agg[path] = [0, 0.0, 0.0]
        row[0] += 1
        row[1] += duration_ms
        row[2] += max(0.0, duration_ms - child_ms)

    def reset(self) -> None:
        self._agg.clear()
        self._child_ms.clear()
        self.spans_seen = 0

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------

    def rows(self, top: int | None = None) -> list[dict]:
        """Aggregated rows sorted by self-time, hottest first."""
        scale = self.sample_every
        rows = [
            {
                "path": path,
                "name": path.rsplit("/", 1)[-1],
                "count": count * scale,
                "total_ms": total * scale,
                "self_ms": self_ms * scale,
                "self_per_call_ms": (self_ms / count) if count else 0.0,
            }
            for path, (count, total, self_ms) in self._agg.items()
        ]
        rows.sort(key=lambda row: (-row["self_ms"], row["path"]))
        return rows[: top if top is not None else self.top]

    def flamegraph(self) -> dict:
        """Nested ``{name, value, children}`` tree (flamegraph JSON).

        ``value`` is the node's *self* time in ms; an ancestor that
        never recorded a span of its own still appears as a zero-value
        frame so the tree mirrors the call structure.
        """
        root: dict = {"name": "all", "value": 0.0, "children": []}
        index: dict[str, dict] = {}
        scale = self.sample_every

        def _node(path: str) -> dict:
            node = index.get(path)
            if node is not None:
                return node
            name = path.rsplit("/", 1)[-1]
            node = index[path] = {"name": name, "value": 0.0, "children": []}
            parent = _node(path.rsplit("/", 1)[0]) if "/" in path else root
            parent["children"].append(node)
            return node

        for path, (_count, _total, self_ms) in sorted(self._agg.items()):
            _node(path)["value"] = self_ms * scale

        def _sort(node: dict) -> None:
            node["children"].sort(key=lambda child: -child["value"])
            for child in node["children"]:
                _sort(child)

        _sort(root)
        return root

    def report(self, top: int | None = None) -> dict:
        """Envelope with the top rows and the flamegraph tree."""
        rows = self.rows(top)
        report = {
            "schema": PROFILE_SCHEMA,
            "spans_seen": self.spans_seen,
            "sample_every": self.sample_every,
            "top": rows,
            "flame": self.flamegraph(),
        }
        if self.emit is not None:
            self.emit(
                PROFILE_SAMPLED,
                spans=self.spans_seen,
                paths=len(self._agg),
                hottest=rows[0]["path"] if rows else None,
            )
        return report

    def render(self, top: int | None = None, width: int = 30) -> str:
        """ASCII top-N table with self-time bars."""
        rows = self.rows(top)
        lines = [
            "== hot spans (self time) ==",
            f"spans seen: {self.spans_seen}   sample_every: {self.sample_every}",
        ]
        if not rows:
            lines.append("  (no spans recorded)")
            return "\n".join(lines)
        max_self = max(row["self_ms"] for row in rows) or 1.0
        path_width = min(48, max(len(row["path"]) for row in rows))
        for row in rows:
            bar = "#" * max(1, round(width * row["self_ms"] / max_self))
            lines.append(
                f"  {row['path']:<{path_width}}  "
                f"self {row['self_ms']:9.2f} ms  "
                f"total {row['total_ms']:9.2f} ms  "
                f"x{row['count']:<6d} {bar}"
            )
        return "\n".join(lines)


@contextmanager
def profiled(
    telemetry: "Telemetry", top: int = 15, sample_every: int = 1
) -> Iterator[SpanProfiler]:
    """Install a :class:`SpanProfiler` on ``telemetry`` for the block."""
    profiler = SpanProfiler(top=top, sample_every=sample_every)
    profiler.emit = telemetry.emit
    profiler.install(telemetry.tracer)
    try:
        yield profiler
    finally:
        profiler.uninstall()
