"""Benchmark history: shared envelope, trajectory file, regression flags.

The repo's benchmarks each write a ``BENCH_*.json`` at the root, but
until now nothing consumed them — a silent 30 % throughput drop would
ship.  This module closes the loop:

* :func:`make_envelope` / :func:`wrap_report` put every bench report
  under one shared envelope (schema version, git sha, UTC timestamp) so
  heterogeneous reports ingest without per-file special cases;
* :func:`ingest_reports` flattens each report's throughput/latency
  leaves into dotted metric names and :func:`append_history` appends
  one record per report to ``BENCH_HISTORY.jsonl``;
* :func:`detect_regressions` compares each metric's latest value
  against the median of its prior history, direction-aware (queries per
  second: higher is better; seconds: lower is better), and flags moves
  beyond the gate (default 25 %, so a 30 % drop flags).

``python -m repro bench-history`` (and ``make bench-history`` / CI)
runs the whole pipeline and exits nonzero on any flagged regression.
"""

from __future__ import annotations

import json
import math
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Mapping

#: One more schema under the house convention (``repro.<area>/<version>``).
HISTORY_SCHEMA = "repro.obs.benchhist/1"

#: Envelope layout version, bumped only on incompatible envelope changes.
ENVELOPE_VERSION = 1

#: Default trajectory file, at the repo root next to the BENCH_*.json files.
HISTORY_FILENAME = "BENCH_HISTORY.jsonl"

#: Relative move beyond which a metric's latest value is flagged.
DEFAULT_GATE = 0.25

#: Prior records considered when computing a metric's baseline median.
BASELINE_WINDOW = 5

#: Metric-name suffixes that identify throughput (higher is better).
_HIGHER_SUFFIXES = ("queries_per_second", "speedup")

#: Metric-name suffixes that identify latency (lower is better).
_LOWER_SUFFIXES = ("seconds", "mean_s", "min_s", "max_s", "p50", "p95", "p99")


# ----------------------------------------------------------------------
# Envelope
# ----------------------------------------------------------------------

def git_sha(cwd: str | Path | None = None) -> str:
    """The current short commit sha, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def make_envelope(schema: str, cwd: str | Path | None = None) -> dict:
    """The shared report envelope every bench writer stamps on its output."""
    import platform

    return {
        "schema": schema,
        "schema_version": ENVELOPE_VERSION,
        "git_sha": git_sha(cwd),
        "created_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
    }


def wrap_report(report: Mapping, schema: str, cwd: str | Path | None = None) -> dict:
    """``{**envelope, **report}`` — the report's own keys win on clash."""
    return {**make_envelope(schema, cwd), **dict(report)}


# ----------------------------------------------------------------------
# Metric extraction
# ----------------------------------------------------------------------

def metric_direction(name: str) -> str | None:
    """``"higher"`` / ``"lower"`` for tracked metrics, ``None`` otherwise.

    Only throughput and latency leaves are tracked; counts, parameters
    and ratios with no better-direction are ignored on purpose.
    """
    leaf = name.rsplit(".", 1)[-1]
    if leaf in _HIGHER_SUFFIXES:
        return "higher"
    # speedup_at_gate_scale.<kind> leaves are throughput ratios.
    if any(part.startswith("speedup") for part in name.split(".")):
        return "higher"
    if leaf in _LOWER_SUFFIXES:
        return "lower"
    return None


def extract_metrics(report: Mapping) -> dict[str, float]:
    """Flatten a report's tracked numeric leaves into dotted metric names.

    ``{"modes": {"batched": {"public_nn": {"10000": {"queries_per_second":
    81234.5}}}}}`` becomes
    ``{"modes.batched.public_nn.10000.queries_per_second": 81234.5}``.
    """
    metrics: dict[str, float] = {}

    def walk(node: object, prefix: str) -> None:
        if isinstance(node, Mapping):
            for key, value in node.items():
                walk(value, f"{prefix}.{key}" if prefix else str(key))
            return
        if isinstance(node, bool) or not isinstance(node, (int, float)):
            return
        if not math.isfinite(node):
            return
        if metric_direction(prefix) is not None:
            metrics[prefix] = float(node)

    walk(dict(report), "")
    return metrics


# ----------------------------------------------------------------------
# History file
# ----------------------------------------------------------------------

def ingest_reports(paths: Iterable[str | Path]) -> list[dict]:
    """One history record per readable ``BENCH_*.json`` report."""
    records = []
    for path in paths:
        path = Path(path)
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(report, dict):
            continue
        records.append(
            {
                "schema": HISTORY_SCHEMA,
                "source": path.name,
                "report_schema": report.get("schema", "unknown"),
                "schema_version": report.get("schema_version", 0),
                "git_sha": report.get("git_sha", git_sha(path.parent)),
                "created_at": report.get(
                    "created_at",
                    datetime.now(timezone.utc).isoformat(timespec="seconds"),
                ),
                "metrics": extract_metrics(report),
            }
        )
    return records


def append_history(records: Iterable[Mapping], path: str | Path) -> None:
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(dict(record), sort_keys=True) + "\n")


def load_history(path: str | Path) -> list[dict]:
    """All history records, oldest-first; missing file reads as empty."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Regression detection
# ----------------------------------------------------------------------

def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def detect_regressions(
    history: Iterable[Mapping], gate: float = DEFAULT_GATE
) -> list[dict]:
    """Flag metrics whose latest value moved beyond ``gate`` the wrong way.

    Per ``(source, metric)`` series: the latest value is compared to the
    median of up to :data:`BASELINE_WINDOW` prior values.  Throughput
    metrics flag when ``latest < baseline * (1 - gate)``; latency metrics
    when ``latest > baseline * (1 + gate)``.  Series with fewer than two
    points never flag (no trajectory yet — the empty-history case).
    """
    series: dict[tuple[str, str], list[float]] = {}
    for record in history:
        source = str(record.get("source", "unknown"))
        for metric, value in (record.get("metrics") or {}).items():
            series.setdefault((source, metric), []).append(float(value))

    flags = []
    for (source, metric), values in sorted(series.items()):
        if len(values) < 2:
            continue
        latest = values[-1]
        baseline = _median(values[-1 - BASELINE_WINDOW : -1])
        if baseline == 0:
            continue
        change = (latest - baseline) / abs(baseline)
        direction = metric_direction(metric) or "higher"
        regressed = (
            change < -gate if direction == "higher" else change > gate
        )
        if regressed:
            flags.append(
                {
                    "source": source,
                    "metric": metric,
                    "direction": direction,
                    "baseline": baseline,
                    "latest": latest,
                    "change": change,
                    "gate": gate,
                }
            )
    return flags


# ----------------------------------------------------------------------
# End-to-end
# ----------------------------------------------------------------------

def run_bench_history(
    root: str | Path = ".",
    history_path: str | Path | None = None,
    gate: float = DEFAULT_GATE,
    append: bool = True,
) -> dict:
    """Ingest ``BENCH_*.json`` under ``root``, extend the trajectory, flag.

    Returns a plain-data summary: the reports ingested, the history
    length, the flagged regressions, and ``ok`` (no flags).  With
    ``append=False`` the check runs against history + fresh records
    without persisting (dry run).
    """
    root = Path(root)
    if history_path is None:
        history_path = root / HISTORY_FILENAME
    reports = sorted(
        p for p in root.glob("BENCH_*.json") if p.name != HISTORY_FILENAME
    )
    records = ingest_reports(reports)
    if append and records:
        append_history(records, history_path)
        history = load_history(history_path)
    else:
        history = load_history(history_path) + records
    flags = detect_regressions(history, gate)
    return {
        "schema": HISTORY_SCHEMA,
        "ingested": [r["source"] for r in records],
        "history_path": str(history_path),
        "history_records": len(history),
        "gate": gate,
        "regressions": flags,
        "ok": not flags,
    }
