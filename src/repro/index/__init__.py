"""From-scratch spatial indexes: R-tree, PR quadtree, uniform grid, pyramid."""

from repro.index.base import IndexCounters, ItemId, SpatialIndex
from repro.index.grid import GridIndex, square_grid_for_density
from repro.index.kdtree import KDTree
from repro.index.pyramid import PyramidGrid
from repro.index.quadtree import QuadTree
from repro.index.rtree import RTree

__all__ = [
    "ItemId",
    "IndexCounters",
    "SpatialIndex",
    "RTree",
    "QuadTree",
    "KDTree",
    "GridIndex",
    "PyramidGrid",
    "square_grid_for_density",
]
