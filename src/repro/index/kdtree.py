"""A k-d tree over points (bulk-loaded, with lazy rebuilding).

The R-tree handles fully dynamic workloads; the k-d tree is the
read-optimised alternative for mostly-static public data (POI catalogues
change rarely).  Bulk loading by median splits yields a balanced tree with
O(log n) point queries and classic branch-and-bound k-NN.  Updates are
absorbed into a small overflow buffer and folded in by a rebuild once the
buffer exceeds a fraction of the tree — the standard logarithmic-method
compromise.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

import numpy as np

from repro.geometry.distances import min_dist
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import ItemId, SpatialIndex


class _KDNode:
    __slots__ = ("item_id", "point", "axis", "left", "right", "bbox")

    def __init__(self, item_id: ItemId, point: Point, axis: int) -> None:
        self.item_id = item_id
        self.point = point
        self.axis = axis
        self.left: "_KDNode | None" = None
        self.right: "_KDNode | None" = None
        self.bbox: Rect = Rect.from_point(point)


class KDTree(SpatialIndex):
    """Point k-d tree with median bulk-build and buffered updates.

    Args:
        rebuild_fraction: rebuild when the overflow buffer exceeds this
            fraction of the total size (smaller = more rebuilds, better
            query balance).
    """

    def __init__(self, rebuild_fraction: float = 0.25) -> None:
        if not 0.0 < rebuild_fraction <= 1.0:
            raise ValueError("rebuild_fraction must be in (0, 1]")
        self._rebuild_fraction = rebuild_fraction
        self._root: _KDNode | None = None
        self._points: dict[ItemId, Point] = {}
        self._buffer: dict[ItemId, Point] = {}
        self._tombstones: set[ItemId] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, items: dict[ItemId, Point], **kwargs) -> "KDTree":
        """Bulk-load a balanced tree from an id -> point mapping."""
        tree = cls(**kwargs)
        tree._points = dict(items)
        tree._root = tree._build(list(items.items()), axis=0)
        return tree

    def _build(self, items: list[tuple[ItemId, Point]], axis: int) -> _KDNode | None:
        if not items:
            return None
        items.sort(key=lambda kv: (kv[1].x if axis == 0 else kv[1].y, repr(kv[0])))
        mid = len(items) // 2
        item_id, point = items[mid]
        node = _KDNode(item_id, point, axis)
        node.left = self._build(items[:mid], axis ^ 1)
        node.right = self._build(items[mid + 1 :], axis ^ 1)
        node.bbox = Rect.from_points(
            [point]
            + ([Point(node.left.bbox.min_x, node.left.bbox.min_y),
                Point(node.left.bbox.max_x, node.left.bbox.max_y)] if node.left else [])
            + ([Point(node.right.bbox.min_x, node.right.bbox.min_y),
                Point(node.right.bbox.max_x, node.right.bbox.max_y)] if node.right else [])
        )
        return node

    def _maybe_rebuild(self) -> None:
        pending = len(self._buffer) + len(self._tombstones)
        if pending > max(8, self._rebuild_fraction * max(1, len(self._points))):
            self.rebuild()

    def rebuild(self) -> None:
        """Fold the buffer and tombstones into a fresh balanced tree."""
        self._buffer.clear()
        self._tombstones.clear()
        self._root = self._build(list(self._points.items()), axis=0)

    # ------------------------------------------------------------------
    # SpatialIndex API
    # ------------------------------------------------------------------

    def insert(self, item_id: ItemId, geom: Rect) -> None:
        if geom.width != 0 or geom.height != 0:
            raise ValueError("KDTree stores points; insert degenerate rectangles")
        self.insert_point(item_id, Point(geom.min_x, geom.min_y))

    def insert_point(self, item_id: ItemId, point: Point) -> None:
        if item_id in self._points:
            raise ValueError(f"duplicate item id: {item_id!r}")
        self._points[item_id] = point
        self._buffer[item_id] = point
        self._tombstones.discard(item_id)
        self._maybe_rebuild()

    def delete(self, item_id: ItemId) -> None:
        if item_id not in self._points:
            raise KeyError(item_id)
        del self._points[item_id]
        if item_id in self._buffer:
            del self._buffer[item_id]
        else:
            self._tombstones.add(item_id)
        self._maybe_rebuild()

    def range_query(self, window: Rect) -> list[ItemId]:
        result = [
            i
            for i, p in self._buffer.items()
            if window.contains_point(p)
        ]
        scans = len(self._buffer)
        stack = [self._root]
        visits = 0
        while stack:
            node = stack.pop()
            if node is None or not node.bbox.intersects(window):
                continue
            visits += 1
            scans += 1
            if (
                node.item_id not in self._tombstones
                and node.item_id not in self._buffer
                and window.contains_point(node.point)
            ):
                result.append(node.item_id)
            stack.append(node.left)
            stack.append(node.right)
        counters = self.counters
        counters.range_queries += 1
        counters.node_visits += visits
        counters.leaf_scans += scans
        return result

    def nearest(self, point: Point, k: int = 1) -> list[ItemId]:
        if k < 1:
            raise ValueError("k must be positive")
        counter = itertools.count()
        heap: list[tuple[float, int, object]] = []
        visits = 0
        distances = len(self._buffer)
        if self._root is not None:
            distances += 1
            heapq.heappush(
                heap, (min_dist(point, self._root.bbox), next(counter), self._root)
            )
        for item_id, p in self._buffer.items():
            heapq.heappush(heap, (point.distance_to(p), next(counter), (item_id,)))
        result: list[ItemId] = []
        while heap and len(result) < k:
            dist, _, element = heapq.heappop(heap)
            if isinstance(element, _KDNode):
                visits += 1
                if (
                    element.item_id not in self._tombstones
                    and element.item_id not in self._buffer
                ):
                    distances += 1
                    heapq.heappush(
                        heap,
                        (point.distance_to(element.point), next(counter), (element.item_id,)),
                    )
                for child in (element.left, element.right):
                    if child is not None:
                        distances += 1
                        heapq.heappush(
                            heap, (min_dist(point, child.bbox), next(counter), child)
                        )
            else:
                result.append(element[0])
        counters = self.counters
        counters.nn_queries += 1
        counters.node_visits += visits
        counters.leaf_scans += visits
        counters.distance_computations += distances
        return result

    def geometry_of(self, item_id: ItemId) -> Rect:
        return Rect.from_point(self._points[item_id])

    def location_of(self, item_id: ItemId) -> Point:
        """The exact stored point for ``item_id``."""
        return self._points[item_id]

    def snapshot_rects(self) -> tuple[list[ItemId], np.ndarray]:
        """Bulk export from the point table — the buffer and tombstones
        are already folded into ``_points``, so no tree walk is needed."""
        ids = list(self._points)
        bounds = np.empty((len(ids), 4))
        for row, item_id in enumerate(ids):
            p = self._points[item_id]
            bounds[row, 0] = bounds[row, 2] = p.x
            bounds[row, 1] = bounds[row, 3] = p.y
        return ids, bounds

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ItemId]:
        return iter(self._points)

    @property
    def buffered(self) -> int:
        """Pending (unindexed) inserts — exposed for tests."""
        return len(self._buffer)
