"""A complete multi-level grid (pyramid) index.

This is the paper's proposed optimisation of fixed-grid cloaking
(Section 5.2, Figure 4b: "Keeping fixed multi-level grids would be an
optimization") and the structure the follow-up Casper system adopted.
Level ``h`` partitions the universe into ``2^h x 2^h`` cells; level 0 is the
whole space.  Every level maintains exact occupancy counts, so bottom-up
cloaking inspects O(height) counters per request and location updates cost
O(height) counter adjustments.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import ItemId, SpatialIndex


class PyramidGrid(SpatialIndex):
    """Complete pyramid of ``height + 1`` grid levels over ``bounds``.

    Args:
        bounds: the universe rectangle.
        height: index of the finest level; level ``h`` has ``2^h``
            cells per side.
    """

    def __init__(self, bounds: Rect, height: int = 8) -> None:
        if height < 0:
            raise ValueError("height must be non-negative")
        if bounds.is_degenerate:
            raise ValueError("bounds must have positive area")
        self.bounds = bounds
        self.height = height
        # counts[h] maps (col, row) -> occupancy; absent keys mean zero.
        self._counts: list[dict[tuple[int, int], int]] = [
            {} for _ in range(height + 1)
        ]
        self._locations: dict[ItemId, Point] = {}
        # Bottom-level bucket contents, for range/NN queries.
        self._buckets: dict[tuple[int, int], dict[ItemId, Point]] = {}

    # ------------------------------------------------------------------
    # Cell arithmetic
    # ------------------------------------------------------------------

    def cells_per_side(self, level: int) -> int:
        self._check_level(level)
        return 1 << level

    def cell_at(self, level: int, p: Point) -> tuple[int, int]:
        """``(col, row)`` of the level-``level`` cell containing ``p``."""
        self._check_level(level)
        if not self.bounds.contains_point(p):
            raise ValueError(f"{p} outside universe {self.bounds}")
        side = 1 << level
        col = min(int((p.x - self.bounds.min_x) / self.bounds.width * side), side - 1)
        row = min(int((p.y - self.bounds.min_y) / self.bounds.height * side), side - 1)
        return col, row

    def cell_rect(self, level: int, col: int, row: int) -> Rect:
        """Rectangle of cell ``(col, row)`` at ``level``."""
        self._check_level(level)
        side = 1 << level
        if not (0 <= col < side and 0 <= row < side):
            raise ValueError(f"cell ({col}, {row}) outside level {level}")
        w = self.bounds.width / side
        h = self.bounds.height / side
        return Rect(
            self.bounds.min_x + col * w,
            self.bounds.min_y + row * h,
            self.bounds.min_x + (col + 1) * w,
            self.bounds.min_y + (row + 1) * h,
        )

    def cell_count(self, level: int, col: int, row: int) -> int:
        """Occupancy of cell ``(col, row)`` at ``level``."""
        self._check_level(level)
        return self._counts[level].get((col, row), 0)

    def path_up(self, p: Point) -> list[tuple[int, Rect, int]]:
        """``(level, cell_rect, count)`` from the finest level up to level 0.

        Bottom-up cloaking walks this list and stops at the first cell whose
        count and area satisfy the privacy profile.
        """
        path = []
        for level in range(self.height, -1, -1):
            col, row = self.cell_at(level, p)
            path.append((level, self.cell_rect(level, col, row), self.cell_count(level, col, row)))
        return path

    # ------------------------------------------------------------------
    # SpatialIndex API
    # ------------------------------------------------------------------

    def insert(self, item_id: ItemId, geom: Rect) -> None:
        if geom.width != 0 or geom.height != 0:
            raise ValueError("PyramidGrid stores points; insert degenerate rectangles")
        self.insert_point(item_id, Point(geom.min_x, geom.min_y))

    def insert_point(self, item_id: ItemId, point: Point) -> None:
        if item_id in self._locations:
            raise ValueError(f"duplicate item id: {item_id!r}")
        if not self.bounds.contains_point(point):
            raise ValueError(f"{point} outside universe {self.bounds}")
        self._locations[item_id] = point
        for level in range(self.height + 1):
            cell = self.cell_at(level, point)
            self._counts[level][cell] = self._counts[level].get(cell, 0) + 1
        self._buckets.setdefault(self.cell_at(self.height, point), {})[item_id] = point

    def delete(self, item_id: ItemId) -> None:
        point = self._locations.pop(item_id, None)
        if point is None:
            raise KeyError(item_id)
        for level in range(self.height + 1):
            cell = self.cell_at(level, point)
            remaining = self._counts[level][cell] - 1
            if remaining:
                self._counts[level][cell] = remaining
            else:
                del self._counts[level][cell]
        bottom = self.cell_at(self.height, point)
        bucket = self._buckets[bottom]
        del bucket[item_id]
        if not bucket:
            del self._buckets[bottom]

    def range_query(self, window: Rect) -> list[ItemId]:
        clipped = window.intersection(self.bounds)
        if clipped is None:
            return []
        side = 1 << self.height
        col_lo, row_lo = self.cell_at(self.height, Point(clipped.min_x, clipped.min_y))
        col_hi, row_hi = self.cell_at(self.height, Point(clipped.max_x, clipped.max_y))
        result: list[ItemId] = []
        visits = 0
        scans = 0
        for row in range(row_lo, min(row_hi, side - 1) + 1):
            for col in range(col_lo, min(col_hi, side - 1) + 1):
                visits += 1
                bucket = self._buckets.get((col, row))
                if bucket:
                    scans += len(bucket)
                    result.extend(
                        i for i, p in bucket.items() if window.contains_point(p)
                    )
        counters = self.counters
        counters.range_queries += 1
        counters.node_visits += visits
        counters.leaf_scans += scans
        return result

    def count_in_window(self, window: Rect) -> int:
        """Count points in ``window`` using pyramid counters for full cells.

        Windows that coincide with a pyramid cell — every cloaked region
        this structure emits — are answered from a single counter in O(1).
        """
        cell = self.cell_for_rect(window)
        if cell is not None:
            self.counters.node_visits += 1
            return self.cell_count(*cell)
        return self._count_recursive(0, 0, 0, window)

    def cell_for_rect(self, rect: Rect, tolerance: float = 1e-9) -> tuple[int, int, int] | None:
        """``(level, col, row)`` when ``rect`` is (numerically) a pyramid cell."""
        if rect.width <= 0 or rect.height <= 0:
            return None
        ratio = self.bounds.width / rect.width
        # A cell is at most 2^height times smaller than the universe; far
        # thinner rectangles (ratio huge or infinite) cannot be cells.
        if not 1.0 <= ratio <= 2.0 ** (self.height + 1):
            return None
        level = round(math.log2(ratio))
        if not 0 <= level <= self.height:
            return None
        col, row = self.cell_at(level, rect.center)
        candidate = self.cell_rect(level, col, row)
        if (
            abs(candidate.min_x - rect.min_x) <= tolerance
            and abs(candidate.min_y - rect.min_y) <= tolerance
            and abs(candidate.max_x - rect.max_x) <= tolerance
            and abs(candidate.max_y - rect.max_y) <= tolerance
        ):
            return level, col, row
        return None

    def nearest(self, point: Point, k: int = 1) -> list[ItemId]:
        """k-NN by brute force over bottom buckets in expanding windows."""
        if k < 1:
            raise ValueError("k must be positive")
        if not self._locations:
            return []
        # Expand a window around the point until it holds >= k candidates,
        # then add a safety margin ring and rank exactly.
        cell_w = self.bounds.width / (1 << self.height)
        cell_h = self.bounds.height / (1 << self.height)
        radius = max(cell_w, cell_h)
        while True:
            window = Rect.from_center(point, 2 * radius, 2 * radius)
            ids = self.range_query(window)
            if len(ids) >= k or window.contains_rect(self.bounds):
                break
            radius *= 2.0
        safe = self.range_query(Rect.from_center(point, 4 * radius, 4 * radius))
        ranked = sorted(safe, key=lambda i: point.distance_to(self._locations[i]))
        counters = self.counters
        counters.nn_queries += 1
        counters.distance_computations += len(safe)
        return ranked[:k]

    def geometry_of(self, item_id: ItemId) -> Rect:
        return Rect.from_point(self._locations[item_id])

    def location_of(self, item_id: ItemId) -> Point:
        """The exact stored point for ``item_id``."""
        return self._locations[item_id]

    def snapshot_rects(self) -> tuple[list[ItemId], np.ndarray]:
        """Bulk export from the location table, bypassing the per-level
        count structures entirely."""
        ids = list(self._locations)
        bounds = np.empty((len(ids), 4))
        for row, item_id in enumerate(ids):
            p = self._locations[item_id]
            bounds[row, 0] = bounds[row, 2] = p.x
            bounds[row, 1] = bounds[row, 3] = p.y
        return ids, bounds

    def __len__(self) -> int:
        return len(self._locations)

    def __iter__(self) -> Iterator[ItemId]:
        return iter(self._locations)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _check_level(self, level: int) -> None:
        if not 0 <= level <= self.height:
            raise ValueError(f"level {level} outside [0, {self.height}]")

    def _count_recursive(self, level: int, col: int, row: int, window: Rect) -> int:
        self.counters.node_visits += 1
        count = self.cell_count(level, col, row)
        if count == 0:
            return 0
        rect = self.cell_rect(level, col, row)
        if not rect.intersects(window):
            return 0
        if window.contains_rect(rect):
            return count
        if level == self.height:
            bucket = self._buckets.get((col, row), {})
            return sum(1 for p in bucket.values() if window.contains_point(p))
        total = 0
        for dc in (0, 1):
            for dr in (0, 1):
                total += self._count_recursive(
                    level + 1, 2 * col + dc, 2 * row + dr, window
                )
        return total
