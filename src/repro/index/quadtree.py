"""A PR (point-region) quadtree with per-subtree counts.

The quadtree is the anonymizer-side index: space-dependent cloaking
(Figure 4a of the paper) descends from the whole space into successively
smaller quadrants while the quadrant still satisfies the user's privacy
profile.  Keeping an exact point count in every node makes that descent a
single O(depth) walk (:meth:`QuadTree.node_path`).

The index stores *points* (degenerate rectangles); the paper's anonymizer
only ever indexes exact user locations.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

import numpy as np

from repro.geometry.distances import min_dist
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import ItemId, SpatialIndex


class _QNode:
    __slots__ = ("rect", "points", "children", "count")

    def __init__(self, rect: Rect) -> None:
        self.rect = rect
        self.points: dict[ItemId, Point] | None = {}
        self.children: list["_QNode"] | None = None
        self.count = 0

    @property
    def is_leaf(self) -> bool:
        return self.children is None


def _quadrant_index(rect: Rect, p: Point) -> int:
    """Index of the quadrant of ``rect`` containing ``p`` (SW/SE/NW/NE).

    Points exactly on a split line go to the higher quadrant, matching the
    half-open convention of :meth:`Rect.quadrants` traversal.
    """
    cx, cy = rect.center.x, rect.center.y
    east = p.x >= cx
    north = p.y >= cy
    return (2 if north else 0) + (1 if east else 0)


class QuadTree(SpatialIndex):
    """PR quadtree over points within a fixed ``bounds`` universe.

    Args:
        bounds: the universe rectangle; every inserted point must lie inside.
        capacity: maximum points in a leaf before it splits.
        max_depth: depth limit; leaves at the limit never split, so
            coincident points cannot recurse forever.
    """

    def __init__(self, bounds: Rect, capacity: int = 8, max_depth: int = 20) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        if bounds.is_degenerate:
            raise ValueError("bounds must have positive area")
        self.bounds = bounds
        self._capacity = capacity
        self._max_depth = max_depth
        self._root = _QNode(bounds)
        self._locations: dict[ItemId, Point] = {}

    # ------------------------------------------------------------------
    # SpatialIndex API
    # ------------------------------------------------------------------

    def insert(self, item_id: ItemId, geom: Rect) -> None:
        if not geom.is_degenerate or geom.width != 0 or geom.height != 0:
            raise ValueError("QuadTree stores points; insert degenerate rectangles")
        self.insert_point(item_id, Point(geom.min_x, geom.min_y))

    def insert_point(self, item_id: ItemId, point: Point) -> None:
        if item_id in self._locations:
            raise ValueError(f"duplicate item id: {item_id!r}")
        if not self.bounds.contains_point(point):
            raise ValueError(f"{point} outside universe {self.bounds}")
        self._locations[item_id] = point
        node = self._root
        depth = 0
        while True:
            node.count += 1
            if node.is_leaf:
                node.points[item_id] = point
                if len(node.points) > self._capacity and depth < self._max_depth:
                    self._split(node)
                return
            node = node.children[_quadrant_index(node.rect, point)]
            depth += 1

    def delete(self, item_id: ItemId) -> None:
        point = self._locations.pop(item_id, None)
        if point is None:
            raise KeyError(item_id)
        node = self._root
        path = [node]
        while not node.is_leaf:
            node = node.children[_quadrant_index(node.rect, point)]
            path.append(node)
        del node.points[item_id]
        for n in path:
            n.count -= 1
        # Collapse sparse internal nodes back into leaves.
        for n in reversed(path[:-1]):
            if not n.is_leaf and n.count <= self._capacity:
                merged: dict[ItemId, Point] = {}
                self._collect_points(n, merged)
                n.children = None
                n.points = merged

    def range_query(self, window: Rect) -> list[ItemId]:
        result: list[ItemId] = []
        stack = [self._root]
        visits = 0
        scans = 0
        while stack:
            node = stack.pop()
            visits += 1
            if node.count == 0 or not node.rect.intersects(window):
                continue
            if node.is_leaf:
                scans += len(node.points)
                result.extend(
                    i for i, p in node.points.items() if window.contains_point(p)
                )
            else:
                stack.extend(node.children)
        counters = self.counters
        counters.range_queries += 1
        counters.node_visits += visits
        counters.leaf_scans += scans
        return result

    def count_in_window(self, window: Rect) -> int:
        """Count points in ``window``; prunes with whole-node containment."""
        total = 0
        stack = [self._root]
        visits = 0
        scans = 0
        while stack:
            node = stack.pop()
            visits += 1
            if node.count == 0 or not node.rect.intersects(window):
                continue
            if window.contains_rect(node.rect):
                total += node.count
            elif node.is_leaf:
                scans += len(node.points)
                total += sum(1 for p in node.points.values() if window.contains_point(p))
            else:
                stack.extend(node.children)
        counters = self.counters
        counters.node_visits += visits
        counters.leaf_scans += scans
        return total

    def nearest(self, point: Point, k: int = 1) -> list[ItemId]:
        if k < 1:
            raise ValueError("k must be positive")
        counter = itertools.count()
        heap: list[tuple[float, int, object]] = [(0.0, next(counter), self._root)]
        result: list[ItemId] = []
        visits = 0
        scans = 0
        distances = 0
        while heap and len(result) < k:
            dist, _, element = heapq.heappop(heap)
            if isinstance(element, _QNode):
                visits += 1
                if element.count == 0:
                    continue
                if element.is_leaf:
                    scans += len(element.points)
                    distances += len(element.points)
                    for item_id, p in element.points.items():
                        heapq.heappush(
                            heap, (point.distance_to(p), next(counter), (item_id,))
                        )
                else:
                    distances += len(element.children)
                    for child in element.children:
                        heapq.heappush(
                            heap,
                            (min_dist(point, child.rect), next(counter), child),
                        )
            else:
                result.append(element[0])
        counters = self.counters
        counters.nn_queries += 1
        counters.node_visits += visits
        counters.leaf_scans += scans
        counters.distance_computations += distances
        return result

    def geometry_of(self, item_id: ItemId) -> Rect:
        return Rect.from_point(self._locations[item_id])

    def location_of(self, item_id: ItemId) -> Point:
        """The exact stored point for ``item_id``."""
        return self._locations[item_id]

    def snapshot_rects(self) -> tuple[list[ItemId], np.ndarray]:
        """Bulk export from the location table — no quadrant descent."""
        ids = list(self._locations)
        bounds = np.empty((len(ids), 4))
        for row, item_id in enumerate(ids):
            p = self._locations[item_id]
            bounds[row, 0] = bounds[row, 2] = p.x
            bounds[row, 1] = bounds[row, 3] = p.y
        return ids, bounds

    def __len__(self) -> int:
        return len(self._locations)

    def __iter__(self) -> Iterator[ItemId]:
        return iter(self._locations)

    # ------------------------------------------------------------------
    # Cloaking support
    # ------------------------------------------------------------------

    def node_path(self, point: Point) -> list[tuple[Rect, int]]:
        """``(node_rect, point_count)`` from the root down to ``point``'s leaf.

        Space-dependent cloaking walks this path top-down and returns the
        deepest rectangle still satisfying the privacy profile.
        """
        if not self.bounds.contains_point(point):
            raise ValueError(f"{point} outside universe {self.bounds}")
        node = self._root
        path = [(node.rect, node.count)]
        while not node.is_leaf:
            node = node.children[_quadrant_index(node.rect, point)]
            path.append((node.rect, node.count))
        return path

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _split(self, node: _QNode) -> None:
        sw, se, nw, ne = node.rect.quadrants()
        node.children = [_QNode(sw), _QNode(se), _QNode(nw), _QNode(ne)]
        for item_id, p in node.points.items():
            child = node.children[_quadrant_index(node.rect, p)]
            child.points[item_id] = p
            child.count += 1
        node.points = None

    def _collect_points(self, node: _QNode, out: dict[ItemId, Point]) -> None:
        if node.is_leaf:
            out.update(node.points)
        else:
            for child in node.children:
                self._collect_points(child, out)
