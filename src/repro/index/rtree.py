"""A from-scratch R-tree with quadratic split (Guttman, SIGMOD 1984).

This is the workhorse index of the location-based database server: the
public data store (POIs, moving public objects) and the private data store
(cloaked rectangles) are both R-trees.  It supports dynamic insert/delete,
window queries, and best-first k-nearest-neighbour search ordered by
``min_dist`` (Roussopoulos et al., SIGMOD 1995 / Hjaltason & Samet's
incremental variant).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator

import numpy as np

from repro.geometry.distances import min_dist
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import ItemId, SpatialIndex


class _Node:
    """An R-tree node; leaves hold ``(item_id, Rect)``, internals hold children."""

    __slots__ = ("leaf", "entries", "mbr", "parent")

    def __init__(self, leaf: bool) -> None:
        self.leaf = leaf
        # Leaf entries: list[tuple[ItemId, Rect]].
        # Internal entries: list[_Node].
        self.entries: list = []
        self.mbr: Rect | None = None
        self.parent: "_Node | None" = None

    def recompute_mbr(self) -> None:
        if not self.entries:
            self.mbr = None
        elif self.leaf:
            self.mbr = Rect.bounding(rect for _, rect in self.entries)
        else:
            self.mbr = Rect.bounding(child.mbr for child in self.entries)


def _entry_mbr(node: _Node, entry) -> Rect:
    return entry[1] if node.leaf else entry.mbr


def _str_tile(entries: list, capacity: int, mbr_of) -> list[list]:
    """Group entries into runs of ``capacity`` by the STR tiling order."""
    import math

    n = len(entries)
    n_groups = math.ceil(n / capacity)
    slab_count = max(1, math.ceil(math.sqrt(n_groups)))
    slab_size = math.ceil(n / slab_count)
    by_x = sorted(entries, key=lambda e: mbr_of(e).center.x)
    groups: list[list] = []
    for s in range(0, n, slab_size):
        slab = sorted(by_x[s : s + slab_size], key=lambda e: mbr_of(e).center.y)
        for g in range(0, len(slab), capacity):
            groups.append(slab[g : g + capacity])
    return groups


def _enlargement(mbr: Rect, rect: Rect) -> float:
    return mbr.union_mbr(rect).area - mbr.area


class RTree(SpatialIndex):
    """Dynamic R-tree over ``(item_id, Rect)`` entries.

    Args:
        max_entries: node capacity M (split when exceeded).
        min_entries: minimum fill m (condense when underfull); defaults to
            ``max_entries // 2``.
    """

    def __init__(self, max_entries: int = 8, min_entries: int | None = None) -> None:
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        self._max = max_entries
        self._min = min_entries if min_entries is not None else max_entries // 2
        if not 1 <= self._min <= self._max // 2:
            raise ValueError("min_entries must be in [1, max_entries // 2]")
        self._root = _Node(leaf=True)
        self._geoms: dict[ItemId, Rect] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def insert(self, item_id: ItemId, geom: Rect) -> None:
        if item_id in self._geoms:
            raise ValueError(f"duplicate item id: {item_id!r}")
        self._geoms[item_id] = geom
        leaf = self._choose_leaf(self._root, geom)
        leaf.entries.append((item_id, geom))
        self._adjust_upward(leaf, geom)

    def delete(self, item_id: ItemId) -> None:
        geom = self._geoms.pop(item_id, None)
        if geom is None:
            raise KeyError(item_id)
        leaf = self._find_leaf(self._root, item_id, geom)
        if leaf is None:  # pragma: no cover - structural invariant
            raise KeyError(item_id)
        leaf.entries = [(i, r) for i, r in leaf.entries if i != item_id]
        self._condense(leaf)
        # Shrink the tree when the root has a single internal child.
        while not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0]
            self._root.parent = None

    def range_query(self, window: Rect) -> list[ItemId]:
        result: list[ItemId] = []
        stack = [self._root]
        visits = 0
        scans = 0
        while stack:
            node = stack.pop()
            visits += 1
            if node.mbr is None or not node.mbr.intersects(window):
                continue
            if node.leaf:
                scans += len(node.entries)
                result.extend(i for i, r in node.entries if r.intersects(window))
            else:
                stack.extend(node.entries)
        counters = self.counters
        counters.range_queries += 1
        counters.node_visits += visits
        counters.leaf_scans += scans
        return result

    def nearest(self, point: Point, k: int = 1) -> list[ItemId]:
        if k < 1:
            raise ValueError("k must be positive")
        return [item_id for item_id, _ in itertools.islice(self.nearest_iter(point), k)]

    def nearest_iter(self, point: Point) -> Iterator[tuple[ItemId, float]]:
        """Incremental best-first NN: yields ``(item_id, min_dist)`` in order.

        The incremental form lets the private-NN query processor consume
        neighbours until its region-dependent stopping radius is reached
        without committing to a k up front.
        """
        counters = self.counters
        counters.nn_queries += 1
        counter = itertools.count()  # tie-breaker: heap never compares nodes
        heap: list[tuple[float, int, object]] = []
        if self._root.mbr is not None:
            counters.distance_computations += 1
            heapq.heappush(heap, (min_dist(point, self._root.mbr), next(counter), self._root))
        while heap:
            dist, _, element = heapq.heappop(heap)
            if isinstance(element, _Node):
                counters.node_visits += 1
                if element.leaf:
                    counters.leaf_scans += len(element.entries)
                    counters.distance_computations += len(element.entries)
                    for item_id, rect in element.entries:
                        heapq.heappush(
                            heap, (min_dist(point, rect), next(counter), (item_id,))
                        )
                else:
                    for child in element.entries:
                        if child.mbr is not None:
                            counters.distance_computations += 1
                            heapq.heappush(
                                heap, (min_dist(point, child.mbr), next(counter), child)
                            )
            else:
                yield element[0], dist

    def geometry_of(self, item_id: ItemId) -> Rect:
        return self._geoms[item_id]

    def snapshot_rects(self) -> tuple[list[ItemId], np.ndarray]:
        """Bulk export from the geometry table — one pass over ``_geoms``
        instead of a tree traversal, so the batch engine's snapshot cost
        is independent of tree shape."""
        ids = list(self._geoms)
        bounds = np.empty((len(ids), 4))
        for row, item_id in enumerate(ids):
            geom = self._geoms[item_id]
            bounds[row, 0] = geom.min_x
            bounds[row, 1] = geom.min_y
            bounds[row, 2] = geom.max_x
            bounds[row, 3] = geom.max_y
        return ids, bounds

    def __len__(self) -> int:
        return len(self._geoms)

    def __iter__(self) -> Iterator[ItemId]:
        return iter(self._geoms)

    @property
    def height(self) -> int:
        """Tree height (1 for a lone leaf root); exposed for tests."""
        h = 1
        node = self._root
        while not node.leaf:
            h += 1
            node = node.entries[0]
        return h

    # ------------------------------------------------------------------
    # Bulk loading (Sort-Tile-Recursive)
    # ------------------------------------------------------------------

    @classmethod
    def bulk_load(
        cls,
        items: dict[ItemId, Rect],
        max_entries: int = 8,
        min_entries: int | None = None,
    ) -> "RTree":
        """Build a packed R-tree with the STR algorithm.

        Sort-Tile-Recursive (Leutenegger et al., ICDE 1997): sort by
        centre x, cut into vertical slabs of ~sqrt(n/M) leaves each, sort
        every slab by centre y, pack runs of M entries into leaves, then
        recurse on the leaf MBRs.  Produces near-100 % fill and tight
        node MBRs, the right trade for static POI catalogues; the tree
        remains fully dynamic afterwards.
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        if not items:
            return tree
        tree._geoms = dict(items)
        leaf_entries = list(items.items())
        leaves = []
        for group in _str_tile(leaf_entries, max_entries, lambda kv: kv[1]):
            leaf = _Node(leaf=True)
            leaf.entries = group
            leaf.recompute_mbr()
            leaves.append(leaf)
        level = leaves
        while len(level) > 1:
            parents = []
            for group in _str_tile(level, max_entries, lambda child: child.mbr):
                parent = _Node(leaf=False)
                parent.entries = group
                for child in group:
                    child.parent = parent
                parent.recompute_mbr()
                parents.append(parent)
            level = parents
        tree._root = level[0]
        return tree

    # ------------------------------------------------------------------
    # Insertion internals
    # ------------------------------------------------------------------

    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        while not node.leaf:
            best = min(
                node.entries,
                key=lambda child: (
                    _enlargement(child.mbr, rect),
                    child.mbr.area,
                ),
            )
            node = best
        return node

    def _adjust_upward(self, node: _Node, rect: Rect) -> None:
        """Grow MBRs up the path; split overflowing nodes as we go."""
        while node is not None:
            node.mbr = rect if node.mbr is None else node.mbr.union_mbr(rect)
            if len(node.entries) > self._max:
                self._split(node)
            node = node.parent

    def _split(self, node: _Node) -> None:
        """Quadratic split of an overflowing node."""
        entries = node.entries
        mbr_of = lambda e: _entry_mbr(node, e)  # noqa: E731 - local shorthand

        # Pick the two seeds wasting the most area if grouped together.
        worst = -1.0
        seeds = (0, 1)
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                ri, rj = mbr_of(entries[i]), mbr_of(entries[j])
                waste = ri.union_mbr(rj).area - ri.area - rj.area
                if waste > worst:
                    worst = waste
                    seeds = (i, j)

        group_a = [entries[seeds[0]]]
        group_b = [entries[seeds[1]]]
        mbr_a = mbr_of(entries[seeds[0]])
        mbr_b = mbr_of(entries[seeds[1]])
        remaining = [e for idx, e in enumerate(entries) if idx not in seeds]

        while remaining:
            # Force assignment when one group must absorb all leftovers to
            # reach minimum fill.
            if len(group_a) + len(remaining) == self._min:
                group_a.extend(remaining)
                mbr_a = Rect.bounding([mbr_a] + [mbr_of(e) for e in remaining])
                remaining = []
                break
            if len(group_b) + len(remaining) == self._min:
                group_b.extend(remaining)
                mbr_b = Rect.bounding([mbr_b] + [mbr_of(e) for e in remaining])
                remaining = []
                break
            # Pick the entry with the strongest group preference.
            best_idx = max(
                range(len(remaining)),
                key=lambda idx: abs(
                    _enlargement(mbr_a, mbr_of(remaining[idx]))
                    - _enlargement(mbr_b, mbr_of(remaining[idx]))
                ),
            )
            entry = remaining.pop(best_idx)
            rect = mbr_of(entry)
            grow_a = _enlargement(mbr_a, rect)
            grow_b = _enlargement(mbr_b, rect)
            if (grow_a, mbr_a.area, len(group_a)) <= (grow_b, mbr_b.area, len(group_b)):
                group_a.append(entry)
                mbr_a = mbr_a.union_mbr(rect)
            else:
                group_b.append(entry)
                mbr_b = mbr_b.union_mbr(rect)

        sibling = _Node(leaf=node.leaf)
        node.entries = group_a
        sibling.entries = group_b
        node.mbr = mbr_a
        sibling.mbr = mbr_b
        if not node.leaf:
            for child in sibling.entries:
                child.parent = sibling

        if node.parent is None:
            new_root = _Node(leaf=False)
            new_root.entries = [node, sibling]
            node.parent = new_root
            sibling.parent = new_root
            new_root.recompute_mbr()
            self._root = new_root
        else:
            parent = node.parent
            sibling.parent = parent
            parent.entries.append(sibling)
            parent.recompute_mbr()

    # ------------------------------------------------------------------
    # Deletion internals
    # ------------------------------------------------------------------

    def _find_leaf(self, node: _Node, item_id: ItemId, geom: Rect) -> _Node | None:
        if node.mbr is None or not node.mbr.intersects(geom):
            return None
        if node.leaf:
            if any(i == item_id for i, _ in node.entries):
                return node
            return None
        for child in node.entries:
            found = self._find_leaf(child, item_id, geom)
            if found is not None:
                return found
        return None

    def _condense(self, node: _Node) -> None:
        """Remove underfull nodes up the path and reinsert their entries."""
        orphans: list[tuple[ItemId, Rect]] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self._min:
                parent.entries.remove(node)
                orphans.extend(self._collect_leaf_entries(node))
            else:
                node.recompute_mbr()
            node = parent
        node.recompute_mbr()
        for item_id, rect in orphans:
            # Entries stay registered in _geoms; reinsert structurally only.
            leaf = self._choose_leaf(self._root, rect)
            leaf.entries.append((item_id, rect))
            self._adjust_upward(leaf, rect)

    def _collect_leaf_entries(self, node: _Node) -> list[tuple[ItemId, Rect]]:
        if node.leaf:
            return list(node.entries)
        collected: list[tuple[ItemId, Rect]] = []
        for child in node.entries:
            collected.extend(self._collect_leaf_entries(child))
        return collected
