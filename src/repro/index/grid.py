"""A uniform grid index over points.

The grid backs the fixed-partitioning cloaking of Figure 4b: locate the
user's cell, return it if it already satisfies the privacy profile, else
merge neighbouring cells until it does.  Cell occupancy counts are
maintained eagerly so cloaking never scans points.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.base import ItemId, SpatialIndex


class GridIndex(SpatialIndex):
    """Uniform ``cols x rows`` grid of buckets over a fixed universe.

    Args:
        bounds: the universe rectangle.
        cols: number of columns (> 0).
        rows: number of rows (> 0); defaults to ``cols``.
    """

    def __init__(self, bounds: Rect, cols: int, rows: int | None = None) -> None:
        if cols < 1 or (rows is not None and rows < 1):
            raise ValueError("grid must have at least one column and row")
        if bounds.is_degenerate:
            raise ValueError("bounds must have positive area")
        self.bounds = bounds
        self.cols = cols
        self.rows = rows if rows is not None else cols
        self._cell_w = bounds.width / self.cols
        self._cell_h = bounds.height / self.rows
        self._cells: list[dict[ItemId, Point]] = [
            {} for _ in range(self.cols * self.rows)
        ]
        self._locations: dict[ItemId, Point] = {}

    # ------------------------------------------------------------------
    # Cell arithmetic
    # ------------------------------------------------------------------

    def cell_of(self, p: Point) -> tuple[int, int]:
        """``(col, row)`` of the cell containing ``p``.

        Points on the far boundary belong to the last cell.
        """
        if not self.bounds.contains_point(p):
            raise ValueError(f"{p} outside universe {self.bounds}")
        col = min(int((p.x - self.bounds.min_x) / self._cell_w), self.cols - 1)
        row = min(int((p.y - self.bounds.min_y) / self._cell_h), self.rows - 1)
        return col, row

    def cell_rect(self, col: int, row: int) -> Rect:
        """The rectangle of cell ``(col, row)``."""
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise ValueError(f"cell ({col}, {row}) outside {self.cols}x{self.rows} grid")
        return Rect(
            self.bounds.min_x + col * self._cell_w,
            self.bounds.min_y + row * self._cell_h,
            self.bounds.min_x + (col + 1) * self._cell_w,
            self.bounds.min_y + (row + 1) * self._cell_h,
        )

    def block_rect(self, col_lo: int, row_lo: int, col_hi: int, row_hi: int) -> Rect:
        """Rectangle covering the inclusive cell block."""
        lo = self.cell_rect(col_lo, row_lo)
        hi = self.cell_rect(col_hi, row_hi)
        return Rect(lo.min_x, lo.min_y, hi.max_x, hi.max_y)

    def cell_count(self, col: int, row: int) -> int:
        """Number of points currently in cell ``(col, row)``."""
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise ValueError(f"cell ({col}, {row}) outside {self.cols}x{self.rows} grid")
        return len(self._cells[row * self.cols + col])

    def block_count(self, col_lo: int, row_lo: int, col_hi: int, row_hi: int) -> int:
        """Total points in the inclusive cell block."""
        total = 0
        for row in range(row_lo, row_hi + 1):
            for col in range(col_lo, col_hi + 1):
                total += len(self._cells[row * self.cols + col])
        return total

    # ------------------------------------------------------------------
    # SpatialIndex API
    # ------------------------------------------------------------------

    def insert(self, item_id: ItemId, geom: Rect) -> None:
        if geom.width != 0 or geom.height != 0:
            raise ValueError("GridIndex stores points; insert degenerate rectangles")
        self.insert_point(item_id, Point(geom.min_x, geom.min_y))

    def insert_point(self, item_id: ItemId, point: Point) -> None:
        if item_id in self._locations:
            raise ValueError(f"duplicate item id: {item_id!r}")
        col, row = self.cell_of(point)
        self._cells[row * self.cols + col][item_id] = point
        self._locations[item_id] = point

    def delete(self, item_id: ItemId) -> None:
        point = self._locations.pop(item_id, None)
        if point is None:
            raise KeyError(item_id)
        col, row = self.cell_of(point)
        del self._cells[row * self.cols + col][item_id]

    def range_query(self, window: Rect) -> list[ItemId]:
        clipped = window.intersection(self.bounds)
        if clipped is None:
            return []
        col_lo = min(int((clipped.min_x - self.bounds.min_x) / self._cell_w), self.cols - 1)
        col_hi = min(int((clipped.max_x - self.bounds.min_x) / self._cell_w), self.cols - 1)
        row_lo = min(int((clipped.min_y - self.bounds.min_y) / self._cell_h), self.rows - 1)
        row_hi = min(int((clipped.max_y - self.bounds.min_y) / self._cell_h), self.rows - 1)
        result: list[ItemId] = []
        visits = 0
        scans = 0
        for row in range(row_lo, row_hi + 1):
            for col in range(col_lo, col_hi + 1):
                cell = self._cells[row * self.cols + col]
                visits += 1
                scans += len(cell)
                result.extend(i for i, p in cell.items() if window.contains_point(p))
        counters = self.counters
        counters.range_queries += 1
        counters.node_visits += visits
        counters.leaf_scans += scans
        return result

    def nearest(self, point: Point, k: int = 1) -> list[ItemId]:
        """k-NN by expanding ring search over grid cells."""
        if k < 1:
            raise ValueError("k must be positive")
        if not self._locations:
            return []
        col, row = self.cell_of(point)
        best: list[tuple[float, ItemId]] = []
        visits = 0
        max_radius = max(self.cols, self.rows)
        for radius in range(max_radius + 1):
            for c, r in self._ring(col, row, radius):
                visits += 1
                for item_id, p in self._cells[r * self.cols + c].items():
                    best.append((point.distance_to(p), item_id))
            if len(best) >= k:
                # One more ring guards against a closer point just across a
                # cell border.
                for c, r in self._ring(col, row, radius + 1):
                    visits += 1
                    for item_id, p in self._cells[r * self.cols + c].items():
                        best.append((point.distance_to(p), item_id))
                break
        best.sort(key=lambda pair: pair[0])
        counters = self.counters
        counters.nn_queries += 1
        counters.node_visits += visits
        counters.leaf_scans += len(best)
        counters.distance_computations += len(best)
        return [item_id for _, item_id in best[:k]]

    def geometry_of(self, item_id: ItemId) -> Rect:
        return Rect.from_point(self._locations[item_id])

    def location_of(self, item_id: ItemId) -> Point:
        """The exact stored point for ``item_id``."""
        return self._locations[item_id]

    def snapshot_rects(self) -> tuple[list[ItemId], np.ndarray]:
        """Bulk export straight from the location table (points are
        degenerate rectangles), skipping per-entry ``Rect`` construction."""
        ids = list(self._locations)
        bounds = np.empty((len(ids), 4))
        for row, item_id in enumerate(ids):
            p = self._locations[item_id]
            bounds[row, 0] = bounds[row, 2] = p.x
            bounds[row, 1] = bounds[row, 3] = p.y
        return ids, bounds

    def __len__(self) -> int:
        return len(self._locations)

    def __iter__(self) -> Iterator[ItemId]:
        return iter(self._locations)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _ring(self, col: int, row: int, radius: int) -> Iterator[tuple[int, int]]:
        """Cells at Chebyshev distance ``radius`` from ``(col, row)``."""
        if radius == 0:
            yield col, row
            return
        for c in range(col - radius, col + radius + 1):
            for r in (row - radius, row + radius):
                if 0 <= c < self.cols and 0 <= r < self.rows:
                    yield c, r
        for r in range(row - radius + 1, row + radius):
            for c in (col - radius, col + radius):
                if 0 <= c < self.cols and 0 <= r < self.rows:
                    yield c, r


def square_grid_for_density(bounds: Rect, n_points: int, points_per_cell: float) -> GridIndex:
    """A square grid sized so the average cell holds ``points_per_cell``."""
    if n_points < 0 or points_per_cell <= 0:
        raise ValueError("n_points must be >= 0 and points_per_cell > 0")
    cells_needed = max(1, n_points / points_per_cell)
    side = max(1, int(math.sqrt(cells_needed)))
    return GridIndex(bounds, cols=side, rows=side)
