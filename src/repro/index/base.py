"""Common interface for the spatial indexes.

Every index stores ``(item_id, geometry)`` entries where the geometry is a
:class:`~repro.geometry.rect.Rect` (points are stored as degenerate
rectangles).  Storing rectangles uniformly lets the same index back both the
public data store (exact POI points) and the private data store (cloaked
regions) of the location-based database server.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import asdict, dataclass
from typing import Hashable, Iterator

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect

ItemId = Hashable


@dataclass
class IndexCounters:
    """Cumulative per-index work accounting (observability layer).

    Implementations accumulate into local variables during a query and
    flush once on return, so the cost is a handful of integer adds per
    query, not per node.

    Attributes:
        range_queries / nn_queries: number of queries answered.
        node_visits: internal structure elements examined (tree nodes,
            grid cells, pyramid buckets).
        leaf_scans: stored entries tested against the query predicate.
        distance_computations: exact point/rect distance evaluations.
    """

    range_queries: int = 0
    nn_queries: int = 0
    node_visits: int = 0
    leaf_scans: int = 0
    distance_computations: int = 0

    def snapshot(self) -> dict[str, int]:
        return asdict(self)

    def reset(self) -> None:
        self.range_queries = 0
        self.nn_queries = 0
        self.node_visits = 0
        self.leaf_scans = 0
        self.distance_computations = 0


class SpatialIndex(ABC):
    """Abstract dynamic spatial index over ``(item_id, Rect)`` entries."""

    @property
    def counters(self) -> IndexCounters:
        """Work counters, created lazily so subclasses need no super().__init__."""
        counters = getattr(self, "_obs_counters", None)
        if counters is None:
            counters = IndexCounters()
            self._obs_counters = counters
        return counters

    @abstractmethod
    def insert(self, item_id: ItemId, geom: Rect) -> None:
        """Add an entry.  ``item_id`` must not already be present."""

    @abstractmethod
    def delete(self, item_id: ItemId) -> None:
        """Remove an entry.  Raises ``KeyError`` if absent."""

    @abstractmethod
    def range_query(self, window: Rect) -> list[ItemId]:
        """Ids of all entries whose geometry intersects ``window``."""

    @abstractmethod
    def nearest(self, point: Point, k: int = 1) -> list[ItemId]:
        """Ids of the ``k`` entries with smallest min-distance to ``point``.

        Returned nearest-first.  Fewer than ``k`` ids are returned when the
        index holds fewer entries.
        """

    @abstractmethod
    def geometry_of(self, item_id: ItemId) -> Rect:
        """The stored geometry for ``item_id``.  Raises ``KeyError`` if absent."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of entries."""

    @abstractmethod
    def __iter__(self) -> Iterator[ItemId]:
        """Iterate over all stored ids (no particular order)."""

    def update(self, item_id: ItemId, geom: Rect) -> None:
        """Move an existing entry to a new geometry (delete + insert)."""
        self.delete(item_id)
        self.insert(item_id, geom)

    def snapshot_rects(self) -> tuple[list[ItemId], np.ndarray]:
        """Bulk-export every entry as ``(ids, bounds)`` numpy arrays.

        ``bounds`` is a ``(n, 4)`` float64 array of ``(min_x, min_y,
        max_x, max_y)`` rows aligned with ``ids``.  This is the batch
        query engine's snapshot primitive: one O(n) pass here replaces n
        ``geometry_of`` calls (and n ``Rect`` allocations) per batch.
        Subclasses override with a direct walk of their storage.
        """
        ids = list(self)
        bounds = np.empty((len(ids), 4))
        for row, item_id in enumerate(ids):
            geom = self.geometry_of(item_id)
            bounds[row, 0] = geom.min_x
            bounds[row, 1] = geom.min_y
            bounds[row, 2] = geom.max_x
            bounds[row, 3] = geom.max_y
        return ids, bounds

    def insert_point(self, item_id: ItemId, point: Point) -> None:
        """Convenience: insert a point as a degenerate rectangle."""
        self.insert(item_id, Rect.from_point(point))

    def __contains__(self, item_id: ItemId) -> bool:
        try:
            self.geometry_of(item_id)
        except KeyError:
            return False
        return True
