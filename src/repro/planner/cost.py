"""The planner's cost model: measured seconds in, ranked choices out.

Every estimate starts from :class:`~repro.planner.stats.PlannerStats`
calibration probes — real wall-clock seconds and counter deltas on a
sample of the live data — and scales them to the live store size and
the query's estimated selectivity.  The model is deliberately simple
(linear size scaling for range/count work, square-root for k-NN
descent, window-area fraction as the selectivity estimate) because its
job is *ranking* backends and routes measured under identical
conditions, not absolute latency prediction.  Amortisable one-off costs
are charged explicitly: a cold replica's build is spread over the batch
that would use it, as is the vectorized route's snapshot/grid
preparation when the cached snapshot is stale.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.planner.replicas import BACKEND_NAMES, BOUNDED_BACKENDS
from repro.planner.stats import PROBE_K, RANGE_BUCKETS, PlannerStats

#: Execution routes the planner chooses between.
ROUTES = ("scalar", "vectorized")


@dataclass(frozen=True)
class CostEstimate:
    """One candidate execution: a (backend, route) pair with its price.

    ``seconds`` is the estimated per-query cost including amortised
    preparation; ``detail`` carries the additive terms for EXPLAIN and
    the CLI decision table.
    """

    backend: str
    route: str
    seconds: float
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "route": self.route,
            "seconds": self.seconds,
            **self.detail,
        }


def _interp_bucket(values: tuple[float, ...], fraction: float) -> float:
    """Probe-bucket interpolation (clamped linear over area fractions)."""
    return float(
        np.interp(fraction, np.asarray(RANGE_BUCKETS), np.asarray(values))
    )


class CostModel:
    """Prices (backend, route) candidates against one stats snapshot."""

    def __init__(self, stats: PlannerStats) -> None:
        self.stats = stats

    # ------------------------------------------------------------------
    # Scale factors
    # ------------------------------------------------------------------

    def _scale(self, side: str) -> float:
        """Live-size / sample-size ratio (>= 1) for linear-cost work."""
        n = self.stats.n_public if side == "public" else self.stats.n_private
        sample = max(1, self.stats.calibration_sample)
        return max(1.0, n / sample)

    def selectivity(self, window_area: float) -> float:
        """Window area as a fraction of the universe (clamped to [0, 1])."""
        universe = self.stats.universe
        if universe is None or universe.area <= 0.0:
            return 1.0
        return float(min(1.0, max(0.0, window_area / universe.area)))

    # ------------------------------------------------------------------
    # Candidate pricing
    # ------------------------------------------------------------------

    def scalar_range(
        self, backend: str, fraction: float, side: str, fresh: bool, batch: int
    ) -> CostEstimate | None:
        cal = self.stats.backends.get(backend)
        if cal is None:
            return None
        scale = self._scale(side)
        query_s = _interp_bucket(cal.range_seconds, fraction) * scale
        build_s = 0.0
        if backend != "rtree" and not fresh:
            build_s = cal.build_seconds * scale / max(1, batch)
        return CostEstimate(
            backend,
            "scalar",
            query_s + build_s,
            {
                "query_seconds": query_s,
                "replica_build_seconds": build_s,
                "est_node_visits": _interp_bucket(
                    cal.range_node_visits, fraction
                )
                * scale,
                "est_leaf_scans": _interp_bucket(cal.range_leaf_scans, fraction)
                * scale,
                "selectivity": fraction,
            },
        )

    def scalar_knn(
        self, backend: str, k: int, fresh: bool, batch: int
    ) -> CostEstimate | None:
        cal = self.stats.backends.get(backend)
        if cal is None:
            return None
        scale = self._scale("public")
        query_s = (
            cal.knn_seconds * float(np.sqrt(scale)) * max(1.0, k / PROBE_K)
        )
        build_s = 0.0
        if backend != "rtree" and not fresh:
            build_s = cal.build_seconds * scale / max(1, batch)
        return CostEstimate(
            backend,
            "scalar",
            query_s + build_s,
            {
                "query_seconds": query_s,
                "replica_build_seconds": build_s,
                "est_distance_computations": cal.knn_distance_computations
                * float(np.sqrt(scale))
                * max(1.0, k / PROBE_K),
                "k": k,
            },
        )

    def vectorized(self, kind: str, side: str, batch: int) -> CostEstimate | None:
        """The kernel route: per-query kernel sweep plus amortised prep.

        ``kind`` is one of ``range`` / ``count`` / ``knn``; the sweep is
        O(n) per query, so the sample timing scales linearly.  Snapshot
        capture and the uniform-grid build are charged only while cold.
        """
        cal = self.stats.kernels
        if cal is None:
            return None
        scale = self._scale(side)
        per_query = {
            "range": cal.range_seconds,
            "count": cal.count_seconds,
            "knn": cal.knn_seconds,
        }[kind]
        query_s = per_query * scale
        prep_s = 0.0
        if not self.stats.snapshot_fresh or not self.stats.grid_ready:
            prep_s = cal.grid_build_seconds * scale / max(1, batch)
        return CostEstimate(
            "rtree",  # the snapshot freezes the native store
            "vectorized",
            query_s + prep_s,
            {"query_seconds": query_s, "prep_seconds": prep_s},
        )

    # ------------------------------------------------------------------
    # Ranking
    # ------------------------------------------------------------------

    @staticmethod
    def rank(candidates: list[CostEstimate]) -> list[CostEstimate]:
        """Cheapest first; deterministic tie-break (scalar, backend order)."""
        return sorted(
            candidates,
            key=lambda c: (
                c.seconds,
                ROUTES.index(c.route),
                BACKEND_NAMES.index(c.backend),
            ),
        )

    # ------------------------------------------------------------------
    # Eligibility
    # ------------------------------------------------------------------

    def eligible_backends(
        self, side: str, point=None, require_degenerate: bool = False
    ) -> list[str]:
        """Backends that can *prove* result-identity for this query.

        - the native ``rtree`` store always qualifies;
        - an empty store makes replicas pointless (rtree only);
        - bounded backends need a positive-area universe, and for k-NN
          probes the query point must lie inside it;
        - point-oriented replicas of the private store exist only while
          every cloaked region is degenerate (``require_degenerate``).
        """
        n = self.stats.n_public if side == "public" else self.stats.n_private
        if n == 0:
            return ["rtree"]
        if require_degenerate and not self.stats.private_degenerate:
            return ["rtree"]
        universe = self.stats.universe
        out = []
        for name in BACKEND_NAMES:
            if name in BOUNDED_BACKENDS:
                if universe is None or universe.area <= 0.0:
                    continue
                if point is not None and not universe.contains_point(point):
                    continue
            out.append(name)
        return out
