"""Cost-based query planning over the declarative QuerySpec API.

The package turns the repo's descriptive layers prescriptive: PR 4's
EXPLAIN showed what each execution *did cost*; the planner uses the
same measured signals — :class:`~repro.index.base.IndexCounters`
deltas, calibration probe timings, snapshot freshness — to choose,
per query, an index backend among the five in :mod:`repro.index` and
the vectorized-kernel vs scalar route, without ever changing answers.

Layout:

* :mod:`repro.planner.replicas` — alternate-backend copies of the
  server's stores, built lazily per store version;
* :mod:`repro.planner.stats` — the statistics collector and its
  calibration probes;
* :mod:`repro.planner.cost` — the cost model pricing (backend, route)
  candidates;
* :mod:`repro.planner.planner` — :class:`QueryPlanner`: decisions,
  canonical executors, batch routing, ``planner.decision`` events.

See ``docs/planner.md`` for the cost model and decision examples.
"""

from repro.planner.cost import CostEstimate, CostModel
from repro.planner.planner import Decision, QueryPlanner
from repro.planner.replicas import BACKEND_NAMES, ReplicaSet
from repro.planner.stats import (
    BackendCalibration,
    KernelCalibration,
    PlannerStats,
    StatisticsCollector,
)

__all__ = [
    "BACKEND_NAMES",
    "BackendCalibration",
    "CostEstimate",
    "CostModel",
    "Decision",
    "KernelCalibration",
    "PlannerStats",
    "QueryPlanner",
    "ReplicaSet",
    "StatisticsCollector",
]
