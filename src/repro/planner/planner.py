"""The cost-based query planner.

:class:`QueryPlanner` turns a declarative
:class:`~repro.queries.spec.QuerySpec` into an *execution decision*:
which index backend answers it (the native R-tree store or one of the
four replica backends) and which route runs it (per-query scalar
processors or the vectorized snapshot kernels).  Decisions are driven
entirely by measured statistics (:mod:`repro.planner.stats`) through
the cost model (:mod:`repro.planner.cost`), recorded as
``planner.decision`` events, and renderable as
:class:`~repro.obs.explain.PlanNode` trees so EXPLAIN shows *chosen*
plans next to executed ones.

The planner's contract is that planning never changes answers:

* every execution path normalises results to the engine's canonical
  order (snapshot rank for ranges/counts, ``(distance, rank)`` for
  k-NN), so any backend x route produces the same value;
* backends are only *eligible* when result-identity is provable —
  bounded structures need the universe, point-oriented replicas of the
  private store need degenerate regions, and the private NN / k-NN /
  Monte-Carlo paths are pinned to the native store whose incremental
  and sampling machinery they require;
* ``tests/conformance/test_planner_differential.py`` re-proves the
  contract against every forced static choice and the brute-force
  oracle.

Telemetry parity: a planned single query emits exactly the spans,
counters and events of the native ``LocationServer`` entry point it
replaces (plus the ``planner.decision`` event), whatever backend or
route actually ran — observability is a property of the question, not
of the chosen plan.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

import numpy as np

from repro.core.errors import QueryError
from repro.engine.queries import (
    PrivateNNQuery,
    PrivateRangeQuery,
    PublicCountQuery,
    PublicNNQuery,
    PublicRangeQuery,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs.accuracy import AccuracyMonitor
from repro.obs.events import (
    CANDIDATES_GENERATED,
    PLANNER_DECISION,
    PLANNER_MEASURED,
)
from repro.obs.explain import PlanNode
from repro.planner.cost import CostEstimate, CostModel
from repro.planner.replicas import ReplicaSet
from repro.planner.stats import PlannerStats, StatisticsCollector
from repro.queries.private_knn import PrivateKNNResult, private_knn_query
from repro.queries.private_nn import PrivateNNResult, private_nn_query
from repro.queries.private_range import PrivateRangeResult, private_range_query
from repro.queries.probabilistic import CountAnswer
from repro.queries.public_nn import PublicNNResult, public_nn_query
from repro.queries.public_range import membership_probability
from repro.queries.spec import (
    CountSpec,
    KNNSpec,
    NNSpec,
    QuerySpec,
    RangeSpec,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import LocationServer


@dataclass(frozen=True)
class Decision:
    """One planning outcome for one spec.

    Attributes:
        kind: the native server query kind the spec maps to (the name
            it is counted under in :meth:`LocationServer.stats`).
        backend: chosen index backend (``rtree`` for the native store
            and for the vectorized route, whose snapshot freezes it).
        route: ``scalar`` or ``vectorized``.
        seconds: the chosen candidate's estimated per-query cost.
        reason: one-line human rationale (pin reason or "cheapest").
        ranked: every eligible candidate, cheapest first.
        pinned: True when only one execution can prove result-identity.
        forced: True when the caller overrode the cost-based choice.
    """

    kind: str
    backend: str
    route: str
    seconds: float
    reason: str
    ranked: tuple[CostEstimate, ...] = ()
    pinned: bool = False
    forced: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "backend": self.backend,
            "route": self.route,
            "seconds": self.seconds,
            "reason": self.reason,
            "pinned": self.pinned,
            "forced": self.forced,
            "candidates": [c.to_dict() for c in self.ranked],
        }

    def to_plan_node(self) -> PlanNode:
        """The decision as an EXPLAIN subtree (chosen + rejected)."""
        root = PlanNode(
            "planner.decision",
            {
                "query": self.kind,
                "backend": self.backend,
                "route": self.route,
                "est_seconds": self.seconds,
                "reason": self.reason,
                "pinned": self.pinned,
                "forced": self.forced,
            },
        )
        for candidate in self.ranked:
            chosen = (
                candidate.backend == self.backend
                and candidate.route == self.route
            )
            root.add(
                "planner.chosen" if chosen else "planner.rejected",
                backend=candidate.backend,
                route=candidate.route,
                est_seconds=candidate.seconds,
            )
        return root


#: Engine query kinds whose *sequential* handlers are already canonical
#: (safe to batch through the engine on the scalar/rtree route).
_ENGINE_CANONICAL_SEQ = frozenset(
    {"public_range", "public_count", "private_range", "private_nn"}
)


class QueryPlanner:
    """Cost-based backend/route chooser and executor for one server.

    Args:
        server: the :class:`~repro.core.server.LocationServer` whose
            stores (and telemetry) the planner works against.
        universe: world bounds for bounded replica backends; a
            :class:`~repro.core.system.PrivacySystem` injects its own
            via :meth:`set_universe`.
    """

    def __init__(
        self, server: "LocationServer", universe: Rect | None = None
    ) -> None:
        self.server = server
        self.replicas = ReplicaSet(server, universe)
        self.collector = StatisticsCollector(server, self.replicas)
        self.accuracy = AccuracyMonitor()
        self.last_decision: Decision | None = None
        self._rank_cache: tuple[int, dict] | None = None

    # ------------------------------------------------------------------
    # Configuration / statistics
    # ------------------------------------------------------------------

    def set_universe(self, universe: Rect | None) -> None:
        """Install world bounds; invalidates replicas and calibration."""
        self.replicas.universe = universe
        self.replicas.invalidate()
        self.collector.reset()

    def stats(self) -> PlannerStats:
        """The live statistics snapshot the next decision would use."""
        return self.collector.stats(snapshot=self._engine_snapshot())

    def _engine_snapshot(self):
        engine = self.server._engine
        return None if engine is None else engine._cached

    def _public_rank(self) -> dict:
        """Snapshot-order rank of every public id (cached per version)."""
        version = self.server.public.version
        if self._rank_cache is not None and self._rank_cache[0] == version:
            return self._rank_cache[1]
        ids, _, _ = self.server.public.snapshot_arrays()
        rank = {item: row for row, item in enumerate(ids)}
        self._rank_cache = (version, rank)
        return rank

    def _private_rank(self) -> dict:
        ids, _ = self.server.private.snapshot_arrays()
        return {item: row for row, item in enumerate(ids)}

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def decide(
        self,
        spec: QuerySpec,
        batch_size: int = 1,
        backend: str | None = None,
        route: str | None = None,
    ) -> Decision:
        """Choose (backend, route) for ``spec``; emits ``planner.decision``.

        ``backend`` / ``route`` force the choice among the *eligible*
        candidates (conformance tests use this to pit every static
        choice against the planner); forcing an ineligible combination
        raises :class:`QueryError`.
        """
        stats = self.stats()
        model = CostModel(stats)
        kind, candidates, pin_reason = self._candidates(spec, model, batch_size)
        if pin_reason is not None:
            # Pinned groups cannot be fixed by route choice, so the
            # accuracy monitor corrects their cost constants directly
            # (see AccuracyMonitor.pinned_bias).
            candidates = [
                replace(est, seconds=est.seconds * bias)
                if (
                    bias := self.accuracy.pinned_bias(
                        kind, est.backend, est.route
                    )
                )
                != 1.0
                else est
                for est in candidates
            ]
        ranked = tuple(model.rank(candidates))
        chosen = ranked[0]
        reason = pin_reason or "cheapest estimated cost"
        forced = False
        if backend is not None or route is not None:
            matches = [
                c
                for c in ranked
                if (backend is None or c.backend == backend)
                and (route is None or c.route == route)
            ]
            if not matches:
                raise QueryError(
                    f"forced backend={backend!r} route={route!r} is not an "
                    f"eligible execution for {kind}; eligible: "
                    f"{[(c.backend, c.route) for c in ranked]}"
                )
            chosen = matches[0]
            forced = True
            reason = "forced by caller"
        decision = Decision(
            kind=kind,
            backend=chosen.backend,
            route=chosen.route,
            seconds=chosen.seconds,
            reason=reason,
            ranked=ranked,
            pinned=pin_reason is not None,
            forced=forced,
        )
        self.last_decision = decision
        self.server.telemetry.emit(
            PLANNER_DECISION,
            query=kind,
            backend=decision.backend,
            route=decision.route,
            est_seconds=decision.seconds,
            reason=reason,
            pinned=decision.pinned,
            forced=forced,
            batch=batch_size,
            candidates=[
                {"backend": c.backend, "route": c.route, "seconds": c.seconds}
                for c in ranked
            ],
        )
        return decision

    def _candidates(
        self, spec: QuerySpec, model: CostModel, batch: int
    ) -> tuple[str, list[CostEstimate], str | None]:
        """(native kind, eligible cost estimates, pin reason or None)."""
        stats = model.stats
        if isinstance(spec, RangeSpec):
            if spec.flavor == "public":
                fraction = model.selectivity(spec.window.area)
                out = [
                    est
                    for name in model.eligible_backends("public")
                    if (
                        est := model.scalar_range(
                            name,
                            fraction,
                            "public",
                            self.replicas.fresh_public(name),
                            batch,
                        )
                    )
                ]
                vec = model.vectorized("range", "public", batch)
                if vec is not None:
                    out.append(vec)
                return "public_over_public_range", out, None
            # Private range: the expanded cloak window drives selectivity.
            area = (
                spec.region.expanded(spec.radius).area
                if spec.region is not None
                else (2.0 * spec.radius) ** 2
            )
            fraction = model.selectivity(area)
            out = [
                est
                for name in model.eligible_backends("public")
                if (
                    est := model.scalar_range(
                        name,
                        fraction,
                        "public",
                        self.replicas.fresh_public(name),
                        batch,
                    )
                )
            ]
            vec = model.vectorized("range", "public", batch)
            if vec is not None:
                out.append(vec)
            return "private_range", out, None
        if isinstance(spec, CountSpec):
            fraction = model.selectivity(spec.window.area)
            out = [
                est
                for name in model.eligible_backends(
                    "private", require_degenerate=True
                )
                if (
                    est := model.scalar_range(
                        name,
                        fraction,
                        "private",
                        self.replicas.fresh_private(name),
                        batch,
                    )
                )
            ]
            vec = model.vectorized("count", "private", batch)
            if vec is not None:
                out.append(vec)
            return "public_count", out, None
        if isinstance(spec, KNNSpec) or (
            isinstance(spec, NNSpec) and spec.dataset == "public"
        ):
            k = spec.k if isinstance(spec, KNNSpec) else 1
            if spec.flavor == "private":
                if isinstance(spec, KNNSpec):
                    pin = (
                        "k-NN candidate generation needs the native store's "
                        "pruning-radius machinery"
                    )
                    kind = "private_knn"
                else:
                    pin = (
                        "incremental nearest_iter + dominance/Voronoi "
                        "filters need the native store"
                    )
                    kind = "private_nn"
                est = model.scalar_knn(
                    "rtree", k, True, batch
                ) or CostEstimate("rtree", "scalar", 0.0)
                return kind, [est], pin
            out = [
                est
                for name in model.eligible_backends("public", point=spec.point)
                if (
                    est := model.scalar_knn(
                        name, k, self.replicas.fresh_public(name), batch
                    )
                )
            ]
            vec = model.vectorized("knn", "public", batch)
            if vec is not None:
                out.append(vec)
            return "public_over_public_nn", out, None
        if isinstance(spec, NNSpec):  # dataset == "private": Figure 6b
            est = model.scalar_knn("rtree", 1, True, batch) or CostEstimate(
                "rtree", "scalar", 0.0
            )
            return (
                "public_nn",
                [est],
                "Monte-Carlo sampling over cloaked regions has no kernel "
                "or replica execution",
            )
        raise QueryError(f"unplannable spec: {spec!r}")

    # ------------------------------------------------------------------
    # Execution — single spec, native-entry-point telemetry parity
    # ------------------------------------------------------------------

    def execute(
        self,
        spec: QuerySpec,
        decision: Decision | None = None,
        backend: str | None = None,
        route: str | None = None,
    ):
        """Answer one spec under a (possibly forced) decision.

        Results are canonical and decision-independent:

        * public range / NN / k-NN -> tuple of ids,
        * count -> :class:`CountAnswer`,
        * private range / NN / k-NN (region-bound) -> the native
          ``Private*Result`` with rank-sorted candidate tuples,
        * public NN over private data -> :class:`PublicNNResult`.

        User-bound private specs are resolved by
        :meth:`repro.core.system.PrivacySystem.query`, which cloaks the
        user and re-enters here with the region-bound form.
        """
        if getattr(spec, "user", None) is not None:
            raise QueryError(
                "user-bound specs need the anonymizer pipeline; submit "
                "them through PrivacySystem.query()"
            )
        telemetry = self.server.telemetry
        # Share the ambient query scope (system.query opened one) so the
        # decision and the measurement below join on the same qid; mint
        # a fresh one for direct planner callers.
        with telemetry.correlate("q", reuse=True):
            if decision is None:
                decision = self.decide(spec, backend=backend, route=route)
            self.server.record_query(decision.kind)
            counters = self._work_counters(decision)
            before = counters.snapshot() if counters is not None else None
            start = perf_counter()
            result = self._dispatch(spec, decision)
            self._observe_execution(
                decision, perf_counter() - start, counters, before
            )
        return result

    def _dispatch(self, spec: QuerySpec, decision: Decision):
        if isinstance(spec, RangeSpec):
            if spec.flavor == "public":
                return self._run_public_range(spec, decision)
            return self._run_private_range(spec, decision)
        if isinstance(spec, CountSpec):
            return self._run_count(spec, decision)
        if isinstance(spec, KNNSpec):
            if spec.flavor == "private":
                return self._run_private_knn(spec, decision)
            return self._run_public_knn(spec.point, spec.k, decision)
        if isinstance(spec, NNSpec):
            if spec.flavor == "private":
                return self._run_private_nn(spec, decision)
            if spec.dataset == "private":
                return self._run_probabilistic_nn(spec, decision)
            return self._run_public_knn(spec.point, 1, decision)
        raise QueryError(f"unexecutable spec: {spec!r}")

    # ------------------------------------------------------------------
    # Execution feedback (see repro.obs.accuracy)
    # ------------------------------------------------------------------

    def _work_counters(self, decision: Decision):
        """The native :class:`IndexCounters` the chosen execution hits.

        ``None`` for the vectorized and replica paths — their work does
        not land in the native stores' counters, and forcing a replica
        build just to snapshot its counters would distort the very cost
        being measured.
        """
        if decision.route != "scalar" or decision.backend != "rtree":
            return None
        if decision.kind in ("public_count", "public_nn"):
            return self.server.private.index_counters
        return self.server.public.index_counters

    def _observe_execution(
        self,
        decision: Decision,
        seconds: float,
        counters=None,
        before: dict | None = None,
        n: int = 1,
    ) -> None:
        """Emit ``planner.measured`` and feed the accuracy monitor.

        ``seconds`` is wall-clock *per query* (a batch passes its mean
        and ``n``).  A drift verdict from the monitor is forwarded to
        the statistics collector; recalibration then happens on the
        next :meth:`decide`'s statistics refresh.
        """
        telemetry = self.server.telemetry
        # "query" not "kind": attrs flatten into the JSONL record, where
        # "kind" is the event's own identity (see Event.to_dict).
        attrs: dict = {
            "query": decision.kind,
            "backend": decision.backend,
            "route": decision.route,
            "seconds": seconds,
            "est_seconds": decision.seconds,
            "n": n,
        }
        if counters is not None and before is not None:
            after = counters.snapshot()
            for field_name in (
                "node_visits",
                "leaf_scans",
                "distance_computations",
            ):
                attrs[field_name] = after[field_name] - before[field_name]
        telemetry.emit(PLANNER_MEASURED, **attrs)
        self.accuracy.observe(decision, seconds, n=n, emit=telemetry.emit)
        reason = self.accuracy.poll_recalibration()
        if reason is not None:
            self.collector.request_recalibration(reason)

    # -- public over public ---------------------------------------------

    def _run_public_range(self, spec: RangeSpec, decision: Decision) -> tuple:
        with self.server.telemetry.span(
            "server.public_range",
            backend=decision.backend,
            route=decision.route,
        ):
            if decision.route == "vectorized":
                return self.server.engine.execute(
                    [PublicRangeQuery(spec.window)]
                )[0]
            index = (
                self.server.public
                if decision.backend == "rtree"
                else self.replicas.public_replica(decision.backend)
            )
            rank = self._public_rank()
            fallback = len(rank)
            return tuple(
                sorted(
                    index.range_query(spec.window),
                    key=lambda item: rank.get(item, fallback),
                )
            )

    def _run_public_knn(self, point: Point, k: int, decision: Decision) -> tuple:
        with self.server.telemetry.span(
            "server.public_nn_exact",
            k=k,
            backend=decision.backend,
            route=decision.route,
        ):
            if decision.route == "vectorized":
                return self.server.engine.execute([PublicNNQuery(point, k)])[0]
            index = (
                self.server.public
                if decision.backend == "rtree"
                else self.replicas.public_replica(decision.backend)
            )
            return self._canonical_knn(index, point, k)

    def _canonical_knn(self, index, point: Point, k: int) -> tuple:
        """k-NN on any backend, identical to the vectorized kernels.

        The kernels rank by ``(squared distance, snapshot rank)``.  Any
        *valid* k-NN answer from the backend yields a sound threshold:
        its max squared distance is >= the true k-th smallest (if the
        backend's tie choices differ, it includes a farther point), so
        the window plus ``d2 <= threshold`` filter is a superset of the
        canonical answer, and the final sort/truncate is exact.
        """
        rank = self._public_rank()
        kk = min(k, len(rank))
        if kk <= 0:
            return ()
        point_of = self.server.public.point_of
        raw = index.nearest(point, kk)
        threshold = max(point_of(i).squared_distance_to(point) for i in raw)
        # Pad the sqrt against rounding: a too-wide window is harmless,
        # the d2 filter below keeps exactness.
        half = math.sqrt(threshold) * (1.0 + 1e-12) + 1e-300
        window = Rect(
            point.x - half, point.y - half, point.x + half, point.y + half
        )
        kept = [
            (d2, rank[item], item)
            for item in index.range_query(window)
            if (d2 := point_of(item).squared_distance_to(point)) <= threshold
        ]
        kept.sort(key=lambda row: (row[0], row[1]))
        return tuple(item for _, _, item in kept[:kk])

    # -- public count over private ---------------------------------------

    def _run_count(self, spec: CountSpec, decision: Decision) -> CountAnswer:
        with self.server.telemetry.span(
            "server.public_count",
            backend=decision.backend,
            route=decision.route,
        ):
            if decision.route == "vectorized":
                return self.server.engine.execute(
                    [PublicCountQuery(spec.window)]
                )[0]
            if decision.backend == "rtree":
                overlapping = self.server.private.overlapping(spec.window)
            else:
                overlapping = self.replicas.private_replica(
                    decision.backend
                ).range_query(spec.window)
            rank = self._private_rank()
            fallback = len(rank)
            region_of = self.server.private.region_of
            return CountAnswer(
                {
                    item: membership_probability(region_of(item), spec.window)
                    for item in sorted(
                        overlapping, key=lambda i: rank.get(i, fallback)
                    )
                }
            )

    # -- private over public ---------------------------------------------

    def _run_private_range(
        self, spec: RangeSpec, decision: Decision
    ) -> PrivateRangeResult:
        region, radius, method = spec.region, spec.radius, spec.method
        with self.server.telemetry.span(
            "server.private_range",
            method=method,
            backend=decision.backend,
            route=decision.route,
        ):
            if decision.route == "vectorized":
                result = self.server.engine.execute(
                    [PrivateRangeQuery(region, radius, method)]
                )[0]
            elif decision.backend == "rtree":
                result = self._canonical_candidates(
                    private_range_query(
                        self.server.public, region, radius, method
                    )
                )
            else:
                result = self._replica_private_range(
                    decision.backend, region, radius, method
                )
        self.server.telemetry.observe(
            "candidates", len(result.candidates), query="private_range"
        )
        self.server.telemetry.emit(
            CANDIDATES_GENERATED,
            query="private_range",
            method=method,
            candidates=len(result.candidates),
            region_area=region.area,
            radius=radius,
        )
        return result

    def _replica_private_range(
        self, backend: str, region: Rect, radius: float, method: str
    ) -> PrivateRangeResult:
        """The exact predicate of ``private_range_query`` on a replica."""
        from repro.geometry.distances import min_dist

        index = self.replicas.public_replica(backend)
        ids = index.range_query(region.expanded(radius))
        if method == "exact":
            point_of = self.server.public.point_of
            ids = [
                i for i in ids if min_dist(point_of(i), region) <= radius
            ]
        return self._canonical_candidates(
            PrivateRangeResult(
                region=region,
                radius=radius,
                candidates=tuple(ids),
                method=method,
            )
        )

    def _run_private_nn(
        self, spec: NNSpec, decision: Decision
    ) -> PrivateNNResult:
        with self.server.telemetry.span(
            "server.private_nn",
            method=spec.method,
            backend=decision.backend,
            route=decision.route,
        ):
            result = self._canonical_candidates(
                private_nn_query(self.server.public, spec.region, spec.method)
            )
        self.server.telemetry.observe(
            "candidates", len(result.candidates), query="private_nn"
        )
        self.server.telemetry.emit(
            CANDIDATES_GENERATED,
            query="private_nn",
            method=spec.method,
            candidates=len(result.candidates),
            region_area=spec.region.area,
        )
        return result

    def _run_private_knn(
        self, spec: KNNSpec, decision: Decision
    ) -> PrivateKNNResult:
        with self.server.telemetry.span(
            "server.private_knn",
            method=spec.method,
            backend=decision.backend,
            route=decision.route,
        ):
            result = self._canonical_candidates(
                private_knn_query(
                    self.server.public, spec.region, spec.k, spec.method
                )
            )
        self.server.telemetry.observe(
            "candidates", len(result.candidates), query="private_knn"
        )
        self.server.telemetry.emit(
            CANDIDATES_GENERATED,
            query="private_knn",
            method=spec.method,
            candidates=len(result.candidates),
            region_area=spec.region.area,
        )
        return result

    def _run_probabilistic_nn(
        self, spec: NNSpec, decision: Decision
    ) -> PublicNNResult:
        with self.server.telemetry.span(
            "server.public_nn", samples=spec.samples
        ):
            return public_nn_query(
                self.server.private,
                spec.point,
                spec.samples,
                np.random.default_rng(spec.seed),
            )

    def _canonical_candidates(self, result):
        """Rank-sort a scalar result's candidates (engine-identical)."""
        import dataclasses

        rank = self._public_rank()
        fallback = len(rank)
        return dataclasses.replace(
            result,
            candidates=tuple(
                sorted(
                    result.candidates,
                    key=lambda item: rank.get(item, fallback),
                )
            ),
        )

    # ------------------------------------------------------------------
    # Execution — batches
    # ------------------------------------------------------------------

    def _engine_query(self, spec: QuerySpec):
        """The engine form of a spec, or ``None`` when it has none."""
        if isinstance(spec, RangeSpec):
            if spec.flavor == "public":
                return PublicRangeQuery(spec.window)
            if spec.region is not None:
                return PrivateRangeQuery(spec.region, spec.radius, spec.method)
        elif isinstance(spec, CountSpec):
            return PublicCountQuery(spec.window)
        elif isinstance(spec, KNNSpec) and spec.flavor == "public":
            return PublicNNQuery(spec.point, spec.k)
        elif (
            isinstance(spec, NNSpec)
            and spec.flavor == "public"
            and spec.dataset == "public"
        ):
            return PublicNNQuery(spec.point, 1)
        elif (
            isinstance(spec, NNSpec)
            and spec.flavor == "private"
            and spec.region is not None
        ):
            return PrivateNNQuery(spec.region, spec.method)
        return None

    def execute_batch(
        self,
        specs: Iterable[QuerySpec],
        backend: str | None = None,
        route: str | None = None,
    ) -> list:
        """Plan and answer a whole spec batch, results in input order.

        Specs whose decision lands on an engine-executable path (the
        vectorized route, or the scalar/rtree route of a kind whose
        sequential handler is canonical) are batched through one
        ``LocationServer.execute_batch`` call with a per-query route
        vector; the rest run through :meth:`execute` with full native
        telemetry.  Like the engine, the batch path counts queries by
        their batch kind and emits no per-query candidate events.
        """
        batch = list(specs)
        with self.server.telemetry.correlate("b", reuse=True):
            decisions = [
                self.decide(
                    spec, batch_size=len(batch), backend=backend, route=route
                )
                for spec in batch
            ]
            results: list = [None] * len(batch)
            engine_positions: list[int] = []
            engine_queries = []
            engine_routes: list[bool] = []
            for position, (spec, decision) in enumerate(zip(batch, decisions)):
                if getattr(spec, "user", None) is not None:
                    raise QueryError(
                        "user-bound specs need the anonymizer pipeline; "
                        "submit them through PrivacySystem.execute_batch()"
                    )
                query = self._engine_query(spec)
                if query is None or decision.backend != "rtree":
                    continue
                vectorized = decision.route == "vectorized"
                if not vectorized and query.kind not in _ENGINE_CANONICAL_SEQ:
                    continue
                engine_positions.append(position)
                engine_queries.append(query)
                engine_routes.append(vectorized)
            if engine_queries:
                start = perf_counter()
                answers = self.server.execute_batch(
                    engine_queries, routes=engine_routes
                )
                per_query = (perf_counter() - start) / len(engine_queries)
                for position, answer in zip(engine_positions, answers):
                    results[position] = answer
                self._observe_engine_batch(
                    [decisions[p] for p in engine_positions], per_query
                )
            covered = set(engine_positions)
            for position, (spec, decision) in enumerate(zip(batch, decisions)):
                if position in covered:
                    continue
                results[position] = self.execute(spec, decision=decision)
        return results

    def _observe_engine_batch(
        self, engine_decisions: list[Decision], per_query_seconds: float
    ) -> None:
        """Measurement feedback for the engine-batched positions.

        The engine answers the whole group in one call, so individual
        durations do not exist; the mean per-query elapsed is attributed
        to each (kind, backend, route) group against its mean predicted
        cost — coarse, but unbiased in aggregate, which is all the drift
        detector needs.
        """
        groups: dict[tuple[str, str, str], list[Decision]] = {}
        for decision in engine_decisions:
            key = (decision.kind, decision.backend, decision.route)
            groups.setdefault(key, []).append(decision)
        for members in groups.values():
            mean_est = sum(d.seconds for d in members) / len(members)
            self._observe_execution(
                replace(members[0], seconds=mean_est),
                per_query_seconds,
                n=len(members),
            )

    # ------------------------------------------------------------------
    # Conformance
    # ------------------------------------------------------------------

    def conformance_backends(self, spec: QuerySpec) -> list[tuple[str, str]]:
        """Every eligible (backend, route) pair for ``spec`` right now."""
        stats = self.stats()
        model = CostModel(stats)
        _, candidates, _ = self._candidates(spec, model, 1)
        return [(c.backend, c.route) for c in model.rank(candidates)]
