"""Measured statistics feeding the cost-based planner.

The planner does not guess backend costs from asymptotic formulas; it
*measures* them.  The :class:`StatisticsCollector` builds each backend
over a deterministic strided sample of the live public store, probes it
with range windows at three selectivity buckets and with k-NN queries,
and records wall-clock seconds *and* :class:`~repro.index.base.
IndexCounters` deltas (node visits, leaf scans, distance computations)
per probe.  The vectorized kernels are timed the same way on the sample
arrays.  A :class:`PlannerStats` snapshot bundles those calibrations
with live state — store sizes and versions, snapshot staleness, grid
availability, cumulative live counters — and is what the cost model
consumes and what ``python -m repro plan`` prints.

Calibration is cached per store size and rerun only when the store
grows or shrinks past 2x, keeping planning overhead bounded; every
(re)calibration emits a ``planner.calibrated`` event.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.engine import kernels
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs.events import PLANNER_CALIBRATED
from repro.planner.replicas import BACKEND_NAMES, ReplicaSet, build_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import LocationServer

#: Range-probe selectivity buckets, as fractions of the universe area.
RANGE_BUCKETS: tuple[float, ...] = (0.002, 0.02, 0.2)

#: Calibration sample cap — probes run over at most this many points.
SAMPLE_CAP = 256

#: Probe query centres per bucket.
PROBES_PER_BUCKET = 6

#: k used by the k-NN calibration probes.
PROBE_K = 8


@dataclass(frozen=True)
class BackendCalibration:
    """Measured per-query costs for one backend over the sample.

    All ``*_seconds`` values are per single query over the *sample*;
    the cost model scales them to the live store size.  Counter fields
    are mean per-probe :class:`IndexCounters` deltas — the measured
    "selectivity" evidence the decision table reports.
    """

    backend: str
    sample_size: int
    build_seconds: float
    range_seconds: tuple[float, ...]  # aligned with RANGE_BUCKETS
    range_node_visits: tuple[float, ...]
    range_leaf_scans: tuple[float, ...]
    knn_seconds: float
    knn_node_visits: float
    knn_distance_computations: float

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "sample_size": self.sample_size,
            "build_seconds": self.build_seconds,
            "range_seconds": list(self.range_seconds),
            "range_node_visits": list(self.range_node_visits),
            "range_leaf_scans": list(self.range_leaf_scans),
            "knn_seconds": self.knn_seconds,
            "knn_node_visits": self.knn_node_visits,
            "knn_distance_computations": self.knn_distance_computations,
        }


@dataclass(frozen=True)
class KernelCalibration:
    """Measured vectorized-route costs over the same sample.

    ``range_seconds`` / ``knn_seconds`` are per query when the batch
    amortises the numpy dispatch over ``PROBES_PER_BUCKET`` queries;
    ``grid_build_seconds`` is the one-off uniform-grid construction the
    grid kernels need (charged only while the snapshot's grid is cold).
    """

    sample_size: int
    range_seconds: float
    count_seconds: float
    knn_seconds: float
    grid_build_seconds: float

    def to_dict(self) -> dict:
        return {
            "sample_size": self.sample_size,
            "range_seconds": self.range_seconds,
            "count_seconds": self.count_seconds,
            "knn_seconds": self.knn_seconds,
            "grid_build_seconds": self.grid_build_seconds,
        }


@dataclass
class PlannerStats:
    """One coherent statistics snapshot handed to the cost model."""

    n_public: int
    n_private: int
    public_version: int
    private_version: int
    private_degenerate: bool
    snapshot_fresh: bool
    grid_ready: bool
    universe: Rect | None
    live_counters: dict[str, dict[str, int]]
    backends: dict[str, BackendCalibration] = field(default_factory=dict)
    kernels: KernelCalibration | None = None
    calibration_sample: int = 0

    def to_dict(self) -> dict:
        return {
            "n_public": self.n_public,
            "n_private": self.n_private,
            "public_version": self.public_version,
            "private_version": self.private_version,
            "private_degenerate": self.private_degenerate,
            "snapshot_fresh": self.snapshot_fresh,
            "grid_ready": self.grid_ready,
            "universe": None
            if self.universe is None
            else list(self.universe.as_tuple()),
            "live_counters": self.live_counters,
            "backends": {
                name: cal.to_dict() for name, cal in self.backends.items()
            },
            "kernels": None if self.kernels is None else self.kernels.to_dict(),
            "calibration_sample": self.calibration_sample,
        }


def _strided_sample(
    ids: tuple, xs: np.ndarray, ys: np.ndarray, cap: int = SAMPLE_CAP
) -> tuple[list, np.ndarray, np.ndarray]:
    """A deterministic, order-preserving sample of at most ``cap`` points."""
    n = len(ids)
    if n <= cap:
        return list(ids), np.asarray(xs, dtype=float), np.asarray(ys, dtype=float)
    rows = np.linspace(0, n - 1, cap).astype(np.intp)
    rows = np.unique(rows)
    return (
        [ids[int(r)] for r in rows],
        np.asarray(xs, dtype=float)[rows],
        np.asarray(ys, dtype=float)[rows],
    )


def _probe_windows(universe: Rect, fraction: float, count: int) -> list[Rect]:
    """Deterministic square probe windows covering ``fraction`` of the
    universe area, centres on a fixed diagonal lattice."""
    side = float(np.sqrt(max(universe.area, 1e-12) * fraction))
    out: list[Rect] = []
    for i in range(count):
        t = (i + 0.5) / count
        cx = universe.min_x + t * universe.width
        cy = universe.min_y + ((i * 2 + 1) % (count * 2)) / (count * 2.0) * (
            universe.height
        )
        out.append(Rect.from_center(Point(cx, cy), side, side).clipped(universe))
    return out


class StatisticsCollector:
    """Refreshes planner statistics from the live server.

    Args:
        server: the server whose stores and counters are observed.
        replicas: the planner's :class:`ReplicaSet` (shares its notion
            of the universe).
    """

    def __init__(self, server: "LocationServer", replicas: ReplicaSet) -> None:
        self.server = server
        self.replicas = replicas
        self._backend_cals: dict[str, BackendCalibration] = {}
        self._kernel_cal: KernelCalibration | None = None
        self._calibrated_n: int | None = None
        self._recalibration_reason: str | None = None
        self.calibrations = 0

    def reset(self) -> None:
        """Drop cached calibrations (forced on the next :meth:`stats`)."""
        self._backend_cals = {}
        self._kernel_cal = None
        self._calibrated_n = None
        self._recalibration_reason = None

    def request_recalibration(self, reason: str = "requested") -> None:
        """Schedule a recalibration on the next :meth:`stats` refresh.

        The planner's accuracy monitor calls this when measured costs
        drift from predictions (see :mod:`repro.obs.accuracy`); the
        reason lands in the resulting ``planner.calibrated`` event, so
        the trail shows *why* the planner re-measured.
        """
        self._recalibration_reason = reason

    # ------------------------------------------------------------------

    def stats(self, snapshot=None) -> PlannerStats:
        """A fresh :class:`PlannerStats`, recalibrating when stale.

        Args:
            snapshot: the engine's current ``ServerSnapshot`` (or
                ``None``); used for the freshness / grid-readiness bits.
        """
        self._ensure_calibrated()
        public = self.server.public
        private = self.server.private
        snapshot_fresh = bool(
            snapshot is not None and snapshot.matches(self.server)
        )
        grid_ready = bool(
            snapshot is not None and "public_grid" in snapshot.__dict__
        )
        return PlannerStats(
            n_public=len(public),
            n_private=len(private),
            public_version=public.version,
            private_version=private.version,
            private_degenerate=self.replicas.private_degenerate(),
            snapshot_fresh=snapshot_fresh,
            grid_ready=grid_ready,
            universe=self.replicas.universe or self.replicas.public_bounds(),
            live_counters={
                "server.public": public.index_counters.snapshot(),
                "server.private": private.index_counters.snapshot(),
            },
            backends=dict(self._backend_cals),
            kernels=self._kernel_cal,
            calibration_sample=0
            if self._calibrated_n is None
            else min(self._calibrated_n, SAMPLE_CAP),
        )

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    def _ensure_calibrated(self) -> None:
        if self._recalibration_reason is not None:
            self.calibrate()
            return
        n = len(self.server.public)
        if self._calibrated_n is not None:
            lo, hi = self._calibrated_n / 2.0, max(self._calibrated_n * 2.0, 8.0)
            if lo <= n <= hi:
                return
        self.calibrate()

    def calibrate(self) -> None:
        """Measure every backend and the kernels over a fresh sample."""
        started = time.perf_counter()
        reason = self._recalibration_reason or (
            "initial calibration"
            if self._calibrated_n is None
            else "store size left calibration band"
        )
        self._recalibration_reason = None
        ids, xs, ys = self.server.public.snapshot_arrays()
        sample_ids, sx, sy = _strided_sample(ids, xs, ys)
        universe = self.replicas.universe or self.replicas.public_bounds()
        if universe is None or universe.area <= 0.0:
            universe = Rect(0.0, 0.0, 1.0, 1.0)

        self._backend_cals = {
            name: self._calibrate_backend(name, sample_ids, sx, sy, universe)
            for name in BACKEND_NAMES
        }
        self._kernel_cal = self._calibrate_kernels(sx, sy, universe)
        self._calibrated_n = len(ids)
        self.calibrations += 1
        telemetry = getattr(self.server, "telemetry", None)
        if telemetry is not None:
            telemetry.emit(
                PLANNER_CALIBRATED,
                n_public=len(ids),
                sample=len(sample_ids),
                backends=list(BACKEND_NAMES),
                seconds=time.perf_counter() - started,
                reason=reason,
            )

    def _calibrate_backend(
        self,
        name: str,
        sample_ids: list,
        sx: np.ndarray,
        sy: np.ndarray,
        universe: Rect,
    ) -> BackendCalibration:
        start = time.perf_counter()
        index = build_backend(name, universe, len(sample_ids))
        for item, x, y in zip(sample_ids, sx, sy):
            index.insert_point(item, Point(float(x), float(y)))
        build_seconds = time.perf_counter() - start

        range_seconds: list[float] = []
        range_visits: list[float] = []
        range_scans: list[float] = []
        for fraction in RANGE_BUCKETS:
            windows = _probe_windows(universe, fraction, PROBES_PER_BUCKET)
            before = index.counters.snapshot()
            start = time.perf_counter()
            for window in windows:
                index.range_query(window)
            elapsed = time.perf_counter() - start
            after = index.counters.snapshot()
            denom = max(1, len(windows))
            range_seconds.append(elapsed / denom)
            range_visits.append(
                (after["node_visits"] - before["node_visits"]) / denom
            )
            range_scans.append(
                (after["leaf_scans"] - before["leaf_scans"]) / denom
            )

        centres = _probe_windows(universe, RANGE_BUCKETS[0], PROBES_PER_BUCKET)
        before = index.counters.snapshot()
        start = time.perf_counter()
        for window in centres:
            index.nearest(window.center, min(PROBE_K, max(1, len(index))))
        knn_elapsed = time.perf_counter() - start
        after = index.counters.snapshot()
        denom = max(1, len(centres))
        return BackendCalibration(
            backend=name,
            sample_size=len(sample_ids),
            build_seconds=build_seconds,
            range_seconds=tuple(range_seconds),
            range_node_visits=tuple(range_visits),
            range_leaf_scans=tuple(range_scans),
            knn_seconds=knn_elapsed / denom,
            knn_node_visits=(after["node_visits"] - before["node_visits"])
            / denom,
            knn_distance_computations=(
                after["distance_computations"]
                - before["distance_computations"]
            )
            / denom,
        )

    def _calibrate_kernels(
        self, sx: np.ndarray, sy: np.ndarray, universe: Rect
    ) -> KernelCalibration:
        windows = kernels.windows_array(
            _probe_windows(universe, RANGE_BUCKETS[1], PROBES_PER_BUCKET)
        )
        denom = max(1, len(windows))

        start = time.perf_counter()
        kernels.points_in_windows(sx, sy, windows)
        range_seconds = (time.perf_counter() - start) / denom

        start = time.perf_counter()
        kernels.count_points_in_windows(sx, sy, windows)
        count_seconds = (time.perf_counter() - start) / denom

        qx = windows[:, 0::2].mean(axis=1)
        qy = windows[:, 1::2].mean(axis=1)
        ks = [min(PROBE_K, max(1, sx.size))] * len(windows)
        start = time.perf_counter()
        kernels.knn_points(sx, sy, qx, qy, ks)
        knn_seconds = (time.perf_counter() - start) / denom

        start = time.perf_counter()
        if sx.size:
            kernels.PointGrid(sx, sy)
        grid_build_seconds = time.perf_counter() - start

        return KernelCalibration(
            sample_size=int(sx.size),
            range_seconds=range_seconds,
            count_seconds=count_seconds,
            knn_seconds=knn_seconds,
            grid_build_seconds=grid_build_seconds,
        )
