"""Alternate-backend replicas of the server's stores.

The server's native stores are R-tree-backed.  To let the cost-based
planner route a query to a cheaper structure (uniform grid for dense
uniform data, k-d tree for point-only NN, ...), the :class:`ReplicaSet`
maintains read-only copies of the store contents in the other four
backends of :mod:`repro.index`, built lazily per store version and
rebuilt only after mutations.  Replicas are an *execution* alternative,
never an answer alternative: every backend is conformance-tested to
return the same result sets (``tests/conformance/``), and replica build
time is charged by the cost model so a cold replica is only chosen when
the batch is large enough to amortise it.

Bounded backends (grid, quadtree, pyramid) need a universe rectangle;
the planner uses the system's world bounds when attached to a
:class:`~repro.core.system.PrivacySystem`, else a padded bounding box of
the data.  Backends that cannot represent the current contents (true
rectangles outside the R-tree, out-of-universe data) are simply not
offered to the cost model.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index import GridIndex, KDTree, PyramidGrid, QuadTree, RTree
from repro.index.base import SpatialIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.server import LocationServer

#: Every index backend the planner can route to, in display order.  The
#: native store backend is ``rtree``; the others are replicas.
BACKEND_NAMES: tuple[str, ...] = (
    "rtree",
    "quadtree",
    "grid",
    "kdtree",
    "pyramid",
)

#: Backends that require a bounded universe at construction time.
BOUNDED_BACKENDS: frozenset[str] = frozenset({"quadtree", "grid", "pyramid"})


def build_backend(name: str, bounds: Rect | None, n: int) -> SpatialIndex:
    """A fresh, empty index of backend ``name`` sized for ``n`` entries."""
    if name == "rtree":
        return RTree(max_entries=8)
    if name == "kdtree":
        return KDTree()
    if bounds is None or bounds.area <= 0.0:
        raise ValueError(f"backend {name!r} needs a positive-area universe")
    if name == "quadtree":
        return QuadTree(bounds, capacity=8)
    if name == "grid":
        # ~4 entries per cell on uniform data.
        cols = max(2, int(np.ceil(np.sqrt(max(1, n) / 4.0))))
        return GridIndex(bounds, cols=cols)
    if name == "pyramid":
        height = int(np.clip(np.ceil(np.log(max(4, n)) / np.log(4.0)), 2, 8))
        return PyramidGrid(bounds, height=height)
    raise ValueError(f"unknown backend {name!r}")


def padded_extent(
    xs: np.ndarray, ys: np.ndarray, pad_fraction: float = 0.01
) -> Rect | None:
    """A slightly enlarged bounding box of the data (``None`` when empty).

    The pad keeps boundary points strictly inside the universe of
    bounded backends and gives degenerate extents a positive area.
    """
    if len(xs) == 0:
        return None
    min_x, max_x = float(xs.min()), float(xs.max())
    min_y, max_y = float(ys.min()), float(ys.max())
    pad = pad_fraction * max(max_x - min_x, max_y - min_y, 1.0)
    return Rect(min_x - pad, min_y - pad, max_x + pad, max_y + pad)


class ReplicaSet:
    """Lazily maintained per-backend copies of one server's stores.

    Args:
        server: the server whose stores are replicated.
        universe: world bounds for the bounded backends; when ``None``,
            a padded data extent is used (and recomputed per version).
    """

    def __init__(
        self, server: "LocationServer", universe: Rect | None = None
    ) -> None:
        self.server = server
        self.universe = universe
        #: Seconds spent building each replica, keyed by ``(side, name)``
        #: — the cost model's measured build-amortisation input.
        self.build_seconds: dict[tuple[str, str], float] = {}
        self._public: dict[str, tuple[int, SpatialIndex]] = {}
        self._private: dict[str, tuple[int, SpatialIndex]] = {}

    # ------------------------------------------------------------------
    # Universe / representability
    # ------------------------------------------------------------------

    def public_bounds(self) -> Rect | None:
        """Universe for bounded public replicas (``None``: unbuildable)."""
        if self.universe is not None:
            return self.universe
        _, xs, ys = self.server.public.snapshot_arrays()
        return padded_extent(xs, ys)

    def private_bounds(self) -> Rect | None:
        """Universe for bounded private replicas."""
        if self.universe is not None:
            return self.universe
        _, bounds = self.server.private.snapshot_arrays()
        if len(bounds) == 0:
            return None
        return padded_extent(
            np.concatenate([bounds[:, 0], bounds[:, 2]]),
            np.concatenate([bounds[:, 1], bounds[:, 3]]),
        )

    def private_degenerate(self) -> bool:
        """True when every cloaked region is a point (replicable in the
        point-oriented backends)."""
        _, bounds = self.server.private.snapshot_arrays()
        if len(bounds) == 0:
            return True
        return bool(
            np.all(bounds[:, 0] == bounds[:, 2])
            and np.all(bounds[:, 1] == bounds[:, 3])
        )

    # ------------------------------------------------------------------
    # Replica access
    # ------------------------------------------------------------------

    def fresh_public(self, name: str) -> bool:
        """True when ``name``'s public replica matches the store version."""
        cached = self._public.get(name)
        return cached is not None and cached[0] == self.server.public.version

    def fresh_private(self, name: str) -> bool:
        cached = self._private.get(name)
        return cached is not None and cached[0] == self.server.private.version

    def public_replica(self, name: str) -> SpatialIndex:
        """The up-to-date public replica for ``name`` (built on demand).

        ``rtree`` has no replica — callers use the native store.
        """
        if name == "rtree":
            raise ValueError("the native public store is the rtree backend")
        version = self.server.public.version
        cached = self._public.get(name)
        if cached is not None and cached[0] == version:
            return cached[1]
        ids, xs, ys = self.server.public.snapshot_arrays()
        bounds = self.public_bounds()
        start = time.perf_counter()
        index = build_backend(name, bounds, len(ids))
        for item, x, y in zip(ids, xs, ys):
            index.insert_point(item, Point(float(x), float(y)))
        self.build_seconds[("public", name)] = time.perf_counter() - start
        self._public[name] = (version, index)
        return index

    def private_replica(self, name: str) -> SpatialIndex:
        """The up-to-date private replica (degenerate regions only)."""
        if name == "rtree":
            raise ValueError("the native private store is the rtree backend")
        version = self.server.private.version
        cached = self._private.get(name)
        if cached is not None and cached[0] == version:
            return cached[1]
        if not self.private_degenerate():
            raise ValueError(
                f"backend {name!r} stores points; the private store holds "
                "true rectangles"
            )
        ids, bounds_array = self.server.private.snapshot_arrays()
        bounds = self.private_bounds()
        start = time.perf_counter()
        index = build_backend(name, bounds, len(ids))
        for item, row in zip(ids, bounds_array):
            index.insert_point(item, Point(float(row[0]), float(row[1])))
        self.build_seconds[("private", name)] = time.perf_counter() - start
        self._private[name] = (version, index)
        return index

    def invalidate(self) -> None:
        """Drop every replica (tests / explicit refresh)."""
        self._public.clear()
        self._private.clear()
