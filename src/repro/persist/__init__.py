"""Durable anonymizer state: checkpoints + WAL replay (docs/durability.md).

The typed JSONL event trail (:mod:`repro.obs.events`) doubles as a
write-ahead log; this package adds the other half of durability —
versioned atomic checkpoints of the whole pipeline and a recovery engine
that restores the newest checkpoint and replays the log tail.  Proven by
the crash-injection suite under ``tests/crash/``.
"""

from repro.persist.checkpoint import (
    CHECKPOINT_PATTERN,
    META_NAME,
    SCHEMA,
    WAL_NAME,
    CheckpointError,
    checkpoint_state,
    cloaker_config,
    cloaker_from_config,
    list_checkpoints,
    load_checkpoint,
    snapshot_from_state,
    snapshot_state,
    write_checkpoint,
    write_wal_meta,
)
from repro.persist.digest import system_digest
from repro.persist.indexes import index_from_state, index_state, rect_sides
from repro.persist.recovery import Recovery, RecoveryError

__all__ = [
    "CHECKPOINT_PATTERN",
    "META_NAME",
    "SCHEMA",
    "WAL_NAME",
    "CheckpointError",
    "Recovery",
    "RecoveryError",
    "checkpoint_state",
    "cloaker_config",
    "cloaker_from_config",
    "index_from_state",
    "index_state",
    "list_checkpoints",
    "load_checkpoint",
    "rect_sides",
    "snapshot_from_state",
    "snapshot_state",
    "system_digest",
    "write_checkpoint",
    "write_wal_meta",
]
