"""Canonical state digest: the recovery-equivalence yardstick.

:func:`system_digest` reduces a :class:`~repro.core.system.PrivacySystem`
to one JSON-serialisable dict covering every durable fact: the user and
registration tables (profiles included), the pseudonym counter, both
server stores' contents and versions, the server's operational counters,
and the QoS ledger summary.  Two systems with equal digests answer every
query identically (stores and profiles determine answers; counters and
ledger determine reports).

Ids are canonicalised through ``str()`` and collections are sorted, so a
live system and its recovered twin — whose ids round-tripped through
JSON as strings and whose indexes were rebuilt in sorted order — compare
equal exactly when they are semantically equivalent.  The crash-injection
suite (``tests/crash/``) asserts digest equality between an uncrashed
reference run and recover-after-crash across generated workloads.

Deliberately excluded (documented ephemeral state, docs/durability.md):
telemetry metrics/spans, planner calibration, the incremental cloaker's
reuse cache, index work counters, and standing monitors' accumulated
results (monitors are re-registered and re-seeded on restore).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.profiles import profile_rows
from repro.persist.indexes import rect_sides

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import PrivacySystem


def system_digest(system: "PrivacySystem") -> dict:
    """Canonical digest of every durable fact in ``system``."""
    anonymizer = system.anonymizer
    server = system.server
    ledger = system.ledger
    return {
        "clock": system.clock,
        "bounds": rect_sides(system.bounds),
        "rotate_pseudonyms": anonymizer.rotate_pseudonyms,
        "pseudonym_seq": anonymizer._pseudonym_seq,
        "users": {
            str(user_id): [
                user.location.x,
                user.location.y,
                user.mode.value,
                user.speed,
                profile_rows(user.profile),
            ]
            for user_id in sorted(system.users, key=str)
            for user in (system.users[user_id],)
        },
        "registrations": {
            str(user_id): [
                registration.pseudonym,
                registration.published,
                profile_rows(registration.profile),
            ]
            for user_id in sorted(anonymizer._registrations, key=str)
            for registration in (anonymizer._registrations[user_id],)
        },
        "public": {
            str(object_id): [point.x, point.y]
            for object_id, point in sorted(
                server.public._points.items(), key=lambda kv: str(kv[0])
            )
        },
        "private": {
            str(pseudonym): rect_sides(region)
            for pseudonym, region in sorted(
                server.private._regions.items(), key=lambda kv: str(kv[0])
            )
        },
        "store_versions": [server.public.version, server.private.version],
        "monitors": sorted(str(monitor_id) for monitor_id in server._monitors),
        "server": server.stats().as_dict(),
        "qos": ledger.summary(),
    }
