"""Crash recovery: newest checkpoint + WAL-tail replay.

``Recovery`` rebuilds a :class:`~repro.core.system.PrivacySystem`
equivalent to the one that crashed:

1. scan the durability directory for the newest *readable* checkpoint
   (unparsable or foreign-schema files are skipped — a crash mid-write
   leaves a ``.tmp`` orphan and, at worst, a corrupt newest file whose
   predecessor is still good);
2. restore the checkpoint state wholesale (object tables, profiles,
   store index states, engine snapshot arrays, counters, ledger); with
   no checkpoint at all, cold-start an empty system from the
   ``wal-meta.json`` sidecar;
3. replay every WAL event with a sequence number past the checkpoint's
   ``wal_seq``, mutating state directly with emission disabled (replay
   must not write new history).

The WAL is trusted-tier (anonymizer-side) state: it carries exact
locations and identities, exactly what the anonymizer itself holds.  It
is never pruned here — checkpoints bound replay *time*, not log size;
compaction is future work (docs/durability.md).

Gap discipline: a ``log.truncated`` marker or a hole in the monotonic
sequence numbers means events are gone for good.  Recovery refuses to
rebuild from such a trail unless ``allow_gaps=True``, because a silently
incomplete replay would *look* like a consistent system while missing
admissions or publications.

Rotation discipline: markers carrying ``rotated_to`` are *deliberate*
(``PrivacySystem.rotate_wal`` sealed the prefix into a segment file).
They are fine exactly when a checkpoint covers the rotated-away prefix
(``checkpoint_seq >= rotation point``) — replay never needed those
events.  A rotation *past* the newest checkpoint is a real gap and is
refused like any truncation.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.core.anonymizer import _Registration
from repro.core.profiles import profile_from_rows
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.users import MobileUser, UserMode
from repro.obs import Telemetry
from repro.obs.events import (
    CLOCK_ADVANCED,
    LOG_TRUNCATED,
    MONITOR_DROPPED,
    MONITOR_REGISTERED,
    PERSIST_REPLAYED,
    POI_ADDED,
    POI_MOVED,
    POI_REMOVED,
    PROFILE_UPDATED,
    QUERY_COMPLETED,
    REGION_PUBLISHED,
    REGIONS_PUBLISHED_BULK,
    SERVER_QUERY,
    USER_ADDED,
    USER_ADMITTED,
    USER_MODE_CHANGED,
    USER_MOVED,
    USER_RETIRED,
    Event,
    read_jsonl,
)
from repro.persist.checkpoint import (
    META_NAME,
    WAL_NAME,
    CheckpointError,
    cloaker_from_config,
    list_checkpoints,
    load_checkpoint,
    snapshot_from_state,
)
from repro.persist.indexes import index_from_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import PrivacySystem


class RecoveryError(RuntimeError):
    """The durability directory cannot support a faithful recovery."""


class Recovery:
    """Restore-and-replay engine over one durability directory.

    Args:
        directory: the directory :meth:`PrivacySystem.attach_wal` and
            :meth:`PrivacySystem.checkpoint` wrote into.
        cloaker: override for the recorded cloaker configuration
            (mandatory when the configuration was not serialisable).
        telemetry: observability sink for the recovered system.
        allow_gaps: replay best-effort across declared truncations and
            sequence holes instead of raising :class:`RecoveryError`.
        attach: re-attach the recovered system's event log to the same
            WAL before the final ``persist.replayed`` emission, so a
            resumed session appends a seq-contiguous trail.

    After :meth:`recover`, :attr:`report` describes what happened
    (checkpoint used, events replayed/skipped, corrupt files passed
    over).
    """

    def __init__(
        self,
        directory,
        *,
        cloaker=None,
        telemetry: Telemetry | None = None,
        allow_gaps: bool = False,
        attach: bool = False,
    ) -> None:
        self.directory = os.fspath(directory)
        self._cloaker = cloaker
        self._telemetry = telemetry
        self.allow_gaps = allow_gaps
        self.attach = attach
        self.report: dict = {}
        self._rotation_seq = 0

    # ------------------------------------------------------------------
    # The entry point
    # ------------------------------------------------------------------

    def recover(self) -> "PrivacySystem":
        """Rebuild the system; see the module docstring for semantics."""
        events = self._read_wal()
        self._surface_gaps(events)
        state, skipped_files = self._load_latest_checkpoint()
        checkpoint_seq = state["wal_seq"] if state is not None else 0
        if self._rotation_seq > checkpoint_seq and not self.allow_gaps:
            raise RecoveryError(
                f"WAL was rotated at seq {self._rotation_seq} but the "
                f"newest checkpoint only covers up to {checkpoint_seq}; "
                f"events {checkpoint_seq + 1}..{self._rotation_seq} live "
                "only in rotated-away segments (pass allow_gaps=True for "
                "best-effort recovery)"
            )
        replay_events = [
            e for e in events if e.seq > checkpoint_seq and e.kind != LOG_TRUNCATED
        ]
        self._check_tail_coverage(checkpoint_seq, events, replay_events)

        system = self._build_system(state)
        log = system.obs.events
        log.disable()
        try:
            if state is not None:
                _restore_checkpoint(system, state)
            replayed = skipped = 0
            for event in replay_events:
                try:
                    applied = _replay_event(system, event)
                except Exception:
                    # Best-effort mode: an event referencing state that
                    # was lost with the gap (e.g. a publication for a
                    # rotated-away admission) cannot apply — skip it.
                    if not self.allow_gaps:
                        raise
                    applied = False
                if applied:
                    replayed += 1
                else:
                    skipped += 1
        finally:
            final_seq = max(
                checkpoint_seq, replay_events[-1].seq if replay_events else 0
            )
            log._seq = max(log._seq, final_seq)
            log.enable()
        system.obs.set_gauge(
            "anonymizer.registered_users",
            len(system.anonymizer._registrations),
        )
        if self.attach:
            system.attach_wal(self.directory)
        self.report = {
            "directory": self.directory,
            "checkpoint": None
            if state is None
            else f"checkpoint-{checkpoint_seq:012d}.json",
            "checkpoint_seq": checkpoint_seq,
            "wal_events": len(events),
            "replayed": replayed,
            "skipped": skipped,
            "final_seq": final_seq,
            "unreadable_checkpoints": skipped_files,
        }
        system.obs.emit(
            PERSIST_REPLAYED,
            checkpoint=self.report["checkpoint"],
            from_seq=checkpoint_seq,
            to_seq=final_seq,
            replayed=replayed,
            skipped=skipped,
        )
        return system

    def audit_report(self) -> dict:
        """Privacy-attainment report folded from the full WAL trail."""
        from repro.obs.audit import PrivacyAuditor

        wal = os.path.join(self.directory, WAL_NAME)
        if not os.path.exists(wal):
            return PrivacyAuditor().report()
        return PrivacyAuditor.from_jsonl(wal).report()

    # ------------------------------------------------------------------
    # Ingestion and validation
    # ------------------------------------------------------------------

    def _read_wal(self) -> list[Event]:
        wal = os.path.join(self.directory, WAL_NAME)
        if not os.path.exists(wal):
            return []
        # Non-strict: a torn final line is an interrupted append, the
        # exact crash recovery exists for.  Declared-gap markers come
        # back as events and are surfaced below.
        return read_jsonl(wal)

    def _surface_gaps(self, events: list[Event]) -> None:
        problems: list[str] = []
        previous: int | None = None
        for event in events:
            if event.kind == LOG_TRUNCATED:
                lost = event.attrs.get("lost")
                first = event.attrs.get("first_seq")
                last = event.attrs.get("last_seq")
                if event.attrs.get("rotated_to") is not None:
                    # Deliberate rotation: the prefix lives in a sealed
                    # segment.  Legal iff a checkpoint covers it — that
                    # is checked against the newest checkpoint seq in
                    # recover(), not here.
                    if last is not None:
                        self._rotation_seq = max(
                            self._rotation_seq, int(last)
                        )
                        previous = int(last)
                    continue
                problems.append(
                    f"declared truncation: {lost} events ({first}..{last}) "
                    "evicted before reaching the sink"
                )
                previous = int(last) if last is not None else previous
                continue
            if previous is not None and event.seq != previous + 1:
                problems.append(
                    f"sequence hole: {previous} -> {event.seq}"
                )
            previous = event.seq
        if problems and not self.allow_gaps:
            raise RecoveryError(
                "WAL is incomplete (pass allow_gaps=True for best-effort "
                "recovery): " + "; ".join(problems)
            )

    def _check_tail_coverage(
        self,
        checkpoint_seq: int,
        events: list[Event],
        replay_events: list[Event],
    ) -> None:
        """The WAL must reach back to the checkpoint's sequence number."""
        if self.allow_gaps:
            return
        if replay_events:
            first = replay_events[0].seq
            if first != checkpoint_seq + 1:
                raise RecoveryError(
                    f"WAL tail starts at seq {first} but the checkpoint "
                    f"covers up to {checkpoint_seq}; events "
                    f"{checkpoint_seq + 1}..{first - 1} are missing "
                    "(pass allow_gaps=True for best-effort recovery)"
                )
        elif checkpoint_seq == 0 and events:
            # Cold start: the trail must begin at the very first event.
            raise RecoveryError(  # pragma: no cover - caught as seq hole
                "cold-start WAL does not begin at seq 1"
            )

    def _load_latest_checkpoint(self) -> tuple[dict | None, list[str]]:
        skipped: list[str] = []
        for path in reversed(list_checkpoints(self.directory)):
            try:
                return load_checkpoint(path), skipped
            except (OSError, ValueError) as exc:
                # CheckpointError is a ValueError; json decode errors too.
                skipped.append(f"{path.name}: {exc}")
        return None, skipped

    def _build_system(self, state: dict | None) -> "PrivacySystem":
        from repro.core.system import PrivacySystem

        meta = self._read_meta()
        source = state if state is not None else meta
        if source is None:
            raise RecoveryError(
                f"nothing to recover from in {self.directory!r}: no "
                "checkpoint and no wal-meta.json sidecar"
            )
        cloaker = self._cloaker
        if cloaker is None:
            config = source.get("cloaker")
            if config is None:
                raise RecoveryError(
                    "the recorded cloaker configuration is not "
                    "serialisable; pass an explicit cloaker= to recover()"
                )
            cloaker = cloaker_from_config(config)
        return PrivacySystem(
            Rect(*source["bounds"]),
            cloaker,
            rotate_pseudonyms=bool(source.get("rotate_pseudonyms", False)),
            telemetry=self._telemetry,
        )

    def _read_meta(self) -> dict | None:
        path = os.path.join(self.directory, META_NAME)
        if not os.path.exists(path):
            return None
        import json

        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None


# ----------------------------------------------------------------------
# Checkpoint restoration
# ----------------------------------------------------------------------


def _restore_checkpoint(system: "PrivacySystem", state: dict) -> None:
    """Load a ``repro.persist/1`` document into a fresh system."""
    anonymizer = system.anonymizer
    server = system.server
    system.clock = state["clock"]
    for user_id, x, y, mode, speed, rows in state["users"]:
        system.users[user_id] = MobileUser(
            user_id,
            Point(x, y),
            profile_from_rows(rows),
            UserMode(mode),
            speed,
        )
    for user_id, pseudonym, published, rows in state["registrations"]:
        anonymizer.cloaker.add_user(user_id, system.users[user_id].location)
        anonymizer._registrations[user_id] = _Registration(
            profile=profile_from_rows(rows),
            pseudonym=pseudonym,
            published=bool(published),
        )
    anonymizer._pseudonym_seq = int(state["pseudonym_seq"])

    _restore_store(server.public, state["stores"]["public"], points=True)
    _restore_store(server.private, state["stores"]["private"], points=False)

    server_state = state["server"]
    server.region_updates_received = int(server_state["region_updates"])
    server.queries_served = int(server_state["queries_served"])
    server.queries_by_kind = {
        kind: int(n) for kind, n in server_state["queries_by_kind"].items()
    }
    for monitor_id, sides in server_state["monitors"]:
        server.register_count_monitor(monitor_id, Rect(*sides))

    if state["engine_snapshot"] is not None:
        server.engine._cached = snapshot_from_state(state["engine_snapshot"])

    ledger = system.ledger
    from repro.core.system import (
        KNNQueryOutcome,
        NNQueryOutcome,
        RangeQueryOutcome,
    )

    for user_id, area, candidates, answer_size, correct in state["ledger"]["range"]:
        ledger.range_outcomes.append(
            RangeQueryOutcome(user_id, area, candidates, answer_size, correct)
        )
    for user_id, area, candidates, correct in state["ledger"]["nn"]:
        ledger.nn_outcomes.append(
            NNQueryOutcome(user_id, area, candidates, correct)
        )
    for user_id, area, k, candidates, answer_size, correct in state["ledger"]["knn"]:
        ledger.knn_outcomes.append(
            KNNQueryOutcome(user_id, area, k, candidates, answer_size, correct)
        )


def _restore_store(store, store_state: dict, *, points: bool) -> None:
    """Rebuild one server store from its serialised index state.

    The mutation counter is restored verbatim so replayed tail updates
    advance it exactly as the uncrashed run did (keeping a restored
    engine snapshot's version match semantics intact); the bounded
    changelog starts empty, which simply forces the next incremental
    snapshot request to re-capture.
    """
    index = index_from_state(store_state["index"])
    entries = {
        item: Rect(min_x, min_y, max_x, max_y)
        for item, min_x, min_y, max_x, max_y in store_state["index"]["entries"]
    }
    store._rtree = index
    if points:
        store._points = {
            item: Point(rect.min_x, rect.min_y) for item, rect in entries.items()
        }
    else:
        store._regions = entries
    store._version = int(store_state["version"])
    store._snapshot = None
    store._changelog.clear()


# ----------------------------------------------------------------------
# WAL replay
# ----------------------------------------------------------------------


def _bump_pseudonym_seq(anonymizer, pseudonym: str) -> None:
    """Keep the pseudonym counter ahead of every pseudonym seen."""
    try:
        number = int(str(pseudonym).rsplit("-", 1)[1])
    except (IndexError, ValueError):
        return
    anonymizer._pseudonym_seq = max(anonymizer._pseudonym_seq, number)


def _replay_event(system: "PrivacySystem", event: Event) -> bool:
    """Apply one WAL event to ``system``; returns False for no-op kinds.

    State is mutated directly (events disabled by the caller): replay
    reconstructs effects, it must not re-run algorithms — the cloaked
    regions, candidates and decisions in the trail are already the
    outcome of the original execution.
    """
    kind = event.kind
    attrs = event.attrs
    anonymizer = system.anonymizer
    server = system.server

    if kind == USER_ADDED:
        system.users[attrs["user"]] = MobileUser(
            attrs["user"],
            Point(attrs["x"], attrs["y"]),
            profile_from_rows(attrs["profile"]),
            UserMode(attrs["mode"]),
            attrs["speed"],
        )
        return True
    if kind == USER_ADMITTED:
        user_id = attrs["user"]
        anonymizer.cloaker.add_user(user_id, Point(attrs["x"], attrs["y"]))
        anonymizer._registrations[user_id] = _Registration(
            profile=profile_from_rows(attrs["profile"]),
            pseudonym=attrs["pseudonym"],
        )
        _bump_pseudonym_seq(anonymizer, attrs["pseudonym"])
        return True
    if kind == USER_RETIRED:
        registration = anonymizer._registrations.pop(attrs["user"])
        anonymizer.cloaker.remove_user(attrs["user"])
        if registration.published:
            server.forget_region(registration.pseudonym)
        return True
    if kind == USER_MOVED:
        user_id = attrs["user"]
        point = Point(attrs["x"], attrs["y"])
        user = system.users.get(user_id)
        if user is not None:
            user.location = point
        if user_id in anonymizer._registrations:
            anonymizer.cloaker.move_user(user_id, point)
        return True
    if kind == USER_MODE_CHANGED:
        system.users[attrs["user"]].mode = UserMode(attrs["mode"])
        return True
    if kind == PROFILE_UPDATED:
        anonymizer._registrations[attrs["user"]].profile = profile_from_rows(
            attrs["profile"]
        )
        return True
    if kind == POI_ADDED:
        server.add_public_object(attrs["object"], Point(attrs["x"], attrs["y"]))
        return True
    if kind == POI_MOVED:
        server.move_public_object(attrs["object"], Point(attrs["x"], attrs["y"]))
        return True
    if kind == POI_REMOVED:
        server.remove_public_object(attrs["object"])
        return True
    if kind == CLOCK_ADVANCED:
        system.clock = attrs["t"]
        return True
    if kind == MONITOR_REGISTERED:
        server.register_count_monitor(
            attrs["monitor"],
            Rect(attrs["min_x"], attrs["min_y"], attrs["max_x"], attrs["max_y"]),
        )
        return True
    if kind == MONITOR_DROPPED:
        server.drop_count_monitor(attrs["monitor"])
        return True
    if kind == REGION_PUBLISHED:
        registration = anonymizer._registrations[attrs["user"]]
        pseudonym = attrs["pseudonym"]
        if pseudonym != registration.pseudonym:
            if registration.published:
                server.forget_region(registration.pseudonym)
            registration.pseudonym = pseudonym
            _bump_pseudonym_seq(anonymizer, pseudonym)
        server.receive_region(
            pseudonym,
            Rect(attrs["min_x"], attrs["min_y"], attrs["max_x"], attrs["max_y"]),
        )
        registration.published = True
        return True
    if kind == REGIONS_PUBLISHED_BULK:
        regions: dict = {}
        for user_id, pseudonym, min_x, min_y, max_x, max_y in attrs["regions"]:
            registration = anonymizer._registrations[user_id]
            if pseudonym != registration.pseudonym:
                if registration.published:
                    server.forget_region(registration.pseudonym)
                registration.pseudonym = pseudonym
                _bump_pseudonym_seq(anonymizer, pseudonym)
            regions[pseudonym] = Rect(min_x, min_y, max_x, max_y)
            registration.published = True
        server.receive_regions(regions)
        return True
    if kind == QUERY_COMPLETED:
        _replay_query_completed(system, attrs)
        return True
    if kind == SERVER_QUERY:
        n = int(attrs.get("n", 1))
        server.queries_served += n
        query = attrs["query"]
        server.queries_by_kind[query] = server.queries_by_kind.get(query, 0) + n
        return True
    return False


def _replay_query_completed(system: "PrivacySystem", attrs: dict) -> None:
    """Reconstruct the QoS ledger entry (and the asker's mode flip)."""
    from repro.core.system import (
        KNNQueryOutcome,
        NNQueryOutcome,
        RangeQueryOutcome,
    )

    user_id = attrs["user"]
    user = system.users.get(user_id)
    if user is not None and user.mode is not UserMode.QUERY:
        user.mode = UserMode.QUERY
    query = attrs["query"]
    ledger = system.ledger
    if query == "private_range":
        ledger.range_outcomes.append(
            RangeQueryOutcome(
                user_id,
                attrs["cloak_area"],
                attrs["candidates"],
                attrs["answer_size"],
                attrs["correct"],
            )
        )
    elif query == "private_nn":
        ledger.nn_outcomes.append(
            NNQueryOutcome(
                user_id,
                attrs["cloak_area"],
                attrs["candidates"],
                attrs["correct"],
            )
        )
    elif query == "private_knn":
        ledger.knn_outcomes.append(
            KNNQueryOutcome(
                user_id,
                attrs["cloak_area"],
                attrs["k"],
                attrs["candidates"],
                attrs["answer_size"],
                attrs["correct"],
            )
        )
