"""Versioned atomic checkpoints of a whole ``PrivacySystem`` (schema
``repro.persist/1``).

A checkpoint is one JSON document capturing everything a crashed
process cannot rebuild from code: the anonymizer's object tables
(registrations, pseudonym counter, privacy profiles), the mobile-user
table, both server store index states, the cloaker's spatial index
state, the batch engine's cached :class:`~repro.engine.snapshot.ServerSnapshot`
arrays, the server's durable counters and standing monitors, and the
QoS ledger.  Each checkpoint records the WAL sequence number it covers
(``wal_seq``); recovery restores the newest readable checkpoint and
replays only the event-log tail past that sequence.

Write protocol: serialise to ``<name>.json.tmp`` in the same directory,
``fsync``, then ``os.replace`` onto the final ``checkpoint-<seq>.json``
name.  A crash mid-write leaves a ``.tmp`` orphan that recovery ignores;
a crash before the rename leaves the previous checkpoint intact.  The
model is the snapshot-plus-streamed-deltas design of PrivateStorageio's
token authorizer backup, with the typed JSONL event log as the delta
stream.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING

from repro.cloaking.grid_cloak import GridCloaker
from repro.cloaking.hilbert import HilbertCloaker
from repro.cloaking.incremental import IncrementalCloaker
from repro.cloaking.mbr import MBRCloaker
from repro.cloaking.naive import NaiveCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.cloaking.quadtree_cloak import QuadtreeCloaker
from repro.core.profiles import profile_rows
from repro.engine.snapshot import ServerSnapshot
from repro.geometry.rect import Rect
from repro.obs.events import PERSIST_CHECKPOINT
from repro.persist.indexes import index_state, rect_sides

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import PrivacySystem

#: Checkpoint document schema, pinned by the golden fixtures.
SCHEMA = "repro.persist/1"

#: File names inside a durability directory.
WAL_NAME = "wal.jsonl"
META_NAME = "wal-meta.json"
CHECKPOINT_PATTERN = "checkpoint-*.json"


class CheckpointError(ValueError):
    """A checkpoint document is unreadable or carries a foreign schema."""


# ----------------------------------------------------------------------
# Cloaker configuration (rebuild the algorithm, not its population)
# ----------------------------------------------------------------------


def cloaker_config(cloaker) -> dict | None:
    """Serialise a cloaker's construction parameters, or ``None``.

    Only the algorithm configuration is captured — the population is
    restored from the registration table.  ``None`` means the type is
    not registered here and :func:`~repro.core.system.PrivacySystem.recover`
    needs an explicit ``cloaker=`` argument.
    """
    if isinstance(cloaker, IncrementalCloaker):
        inner = cloaker_config(cloaker.inner)
        if inner is None:
            return None
        return {
            "class": "IncrementalCloaker",
            "max_reuses": cloaker._max_reuses,
            "inner": inner,
        }
    if isinstance(cloaker, PyramidCloaker):
        return {
            "class": "PyramidCloaker",
            "bounds": rect_sides(cloaker.bounds),
            "height": cloaker._pyramid.height,
            "bottom_up": cloaker._bottom_up,
            "neighbor_merge": cloaker._neighbor_merge,
        }
    if isinstance(cloaker, GridCloaker):
        return {
            "class": "GridCloaker",
            "bounds": rect_sides(cloaker.bounds),
            "cols": cloaker._grid.cols,
            "rows": cloaker._grid.rows,
        }
    if isinstance(cloaker, QuadtreeCloaker):
        return {
            "class": "QuadtreeCloaker",
            "bounds": rect_sides(cloaker.bounds),
            "capacity": cloaker._tree._capacity,
            "max_depth": cloaker._tree._max_depth,
        }
    if isinstance(cloaker, HilbertCloaker):
        return {
            "class": "HilbertCloaker",
            "bounds": rect_sides(cloaker.bounds),
            "order": cloaker._order,
        }
    if isinstance(cloaker, NaiveCloaker):
        return {
            "class": "NaiveCloaker",
            "bounds": rect_sides(cloaker.bounds),
            "precision": cloaker._precision,
        }
    if isinstance(cloaker, MBRCloaker):
        return {
            "class": "MBRCloaker",
            "bounds": rect_sides(cloaker.bounds),
            "pad_fraction": cloaker._pad,
        }
    return None


def cloaker_from_config(config: dict):
    """Rebuild an (empty) cloaker from :func:`cloaker_config` output."""
    name = config["class"]
    if name == "IncrementalCloaker":
        return IncrementalCloaker(
            cloaker_from_config(config["inner"]), max_reuses=config["max_reuses"]
        )
    if "bounds" not in config:
        raise CheckpointError(f"unknown cloaker class in checkpoint: {name!r}")
    bounds = Rect(*config["bounds"])
    if name == "PyramidCloaker":
        return PyramidCloaker(
            bounds,
            height=config["height"],
            bottom_up=config["bottom_up"],
            neighbor_merge=config["neighbor_merge"],
        )
    if name == "GridCloaker":
        return GridCloaker(bounds, cols=config["cols"], rows=config["rows"])
    if name == "QuadtreeCloaker":
        return QuadtreeCloaker(
            bounds, capacity=config["capacity"], max_depth=config["max_depth"]
        )
    if name == "HilbertCloaker":
        return HilbertCloaker(bounds, order=config["order"])
    if name == "NaiveCloaker":
        return NaiveCloaker(bounds, precision=config["precision"])
    if name == "MBRCloaker":
        return MBRCloaker(bounds, pad_fraction=config["pad_fraction"])
    raise CheckpointError(f"unknown cloaker class in checkpoint: {name!r}")


# ----------------------------------------------------------------------
# Engine snapshot arrays
# ----------------------------------------------------------------------


def snapshot_state(snapshot: ServerSnapshot) -> dict:
    """JSON-ready form of the batch engine's cached snapshot arrays."""
    return {
        "public_version": snapshot.public_version,
        "private_version": snapshot.private_version,
        "public_ids": [str(item) for item in snapshot.public_ids],
        "public_xs": snapshot.public_xs.tolist(),
        "public_ys": snapshot.public_ys.tolist(),
        "private_ids": [str(item) for item in snapshot.private_ids],
        "private_bounds": snapshot.private_bounds.tolist(),
    }


def snapshot_from_state(state: dict) -> ServerSnapshot:
    """Rebuild a frozen :class:`ServerSnapshot` (ranks recomputed)."""
    import numpy as np

    public_ids = tuple(state["public_ids"])
    private_ids = tuple(state["private_ids"])
    xs = np.asarray(state["public_xs"], dtype=float)
    ys = np.asarray(state["public_ys"], dtype=float)
    bounds = np.asarray(state["private_bounds"], dtype=float).reshape(
        len(private_ids), 4
    )
    for array in (xs, ys, bounds):
        array.flags.writeable = False
    return ServerSnapshot(
        public_version=state["public_version"],
        private_version=state["private_version"],
        public_ids=public_ids,
        public_xs=xs,
        public_ys=ys,
        private_ids=private_ids,
        private_bounds=bounds,
        public_rank={item: row for row, item in enumerate(public_ids)},
        private_rank={item: row for row, item in enumerate(private_ids)},
    )


# ----------------------------------------------------------------------
# Checkpoint document
# ----------------------------------------------------------------------


def checkpoint_state(system: "PrivacySystem") -> dict:
    """Serialise ``system`` to the ``repro.persist/1`` document.

    Dict order is deliberate (users and registrations keep insertion
    order, which data-dependent cloakers are sensitive to), so the
    document is written without key sorting.
    """
    anonymizer = system.anonymizer
    server = system.server
    cloak_index = anonymizer.cloaker.spatial_index()
    cached = server._engine._cached if server._engine is not None else None
    ledger = system.ledger
    return {
        "schema": SCHEMA,
        "wal_seq": system.obs.events._seq,
        "clock": system.clock,
        "bounds": rect_sides(system.bounds),
        "rotate_pseudonyms": anonymizer.rotate_pseudonyms,
        "pseudonym_seq": anonymizer._pseudonym_seq,
        "cloaker": cloaker_config(anonymizer.cloaker),
        "users": [
            [
                str(user_id),
                user.location.x,
                user.location.y,
                user.mode.value,
                user.speed,
                profile_rows(user.profile),
            ]
            for user_id, user in system.users.items()
        ],
        "registrations": [
            [
                str(user_id),
                registration.pseudonym,
                registration.published,
                profile_rows(registration.profile),
            ]
            for user_id, registration in anonymizer._registrations.items()
        ],
        "server": {
            "region_updates": server.region_updates_received,
            "queries_served": server.queries_served,
            "queries_by_kind": dict(server.queries_by_kind),
            "monitors": [
                [str(monitor_id), rect_sides(monitor.window)]
                for monitor_id, monitor in server._monitors.items()
            ],
        },
        "stores": {
            "public": {
                "version": server.public.version,
                "index": index_state(server.public._rtree),
            },
            "private": {
                "version": server.private.version,
                "index": index_state(server.private._rtree),
            },
        },
        "cloaker_index": None if cloak_index is None else index_state(cloak_index),
        "engine_snapshot": None if cached is None else snapshot_state(cached),
        "ledger": {
            "range": [
                [o.user_id, o.cloak_area, o.candidates, o.answer_size, o.correct]
                for o in ledger.range_outcomes
            ],
            "nn": [
                [o.user_id, o.cloak_area, o.candidates, o.correct]
                for o in ledger.nn_outcomes
            ],
            "knn": [
                [o.user_id, o.cloak_area, o.k, o.candidates, o.answer_size, o.correct]
                for o in ledger.knn_outcomes
            ],
        },
    }


def _atomic_write(path: Path, payload: str) -> None:
    """tmp-write, fsync, rename — a crash leaves old state or an orphan."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def write_checkpoint(system: "PrivacySystem", directory) -> str:
    """Write one versioned checkpoint; returns its path.

    The file name carries the covered WAL sequence number
    (``checkpoint-<seq 0-padded>.json``) so a lexical sort is a recency
    sort.  Emits ``persist.checkpoint`` on success.
    """
    started = time.perf_counter()
    state = checkpoint_state(system)
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"checkpoint-{state['wal_seq']:012d}.json"
    payload = json.dumps(state, default=str)
    _atomic_write(path, payload)
    system.obs.emit(
        PERSIST_CHECKPOINT,
        file=path.name,
        wal_seq=state["wal_seq"],
        bytes=len(payload),
        seconds=time.perf_counter() - started,
    )
    return str(path)


def write_wal_meta(system: "PrivacySystem", directory) -> str:
    """Write the ``wal-meta.json`` sidecar enabling cold starts.

    Records the system construction parameters (bounds, pseudonym
    policy, cloaker configuration) that no event carries, so recovery
    can rebuild a system from the WAL alone when no checkpoint exists.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    meta = {
        "schema": SCHEMA,
        "bounds": rect_sides(system.bounds),
        "rotate_pseudonyms": system.anonymizer.rotate_pseudonyms,
        "cloaker": cloaker_config(system.anonymizer.cloaker),
    }
    path = target / META_NAME
    _atomic_write(path, json.dumps(meta))
    return str(path)


def load_checkpoint(path) -> dict:
    """Parse and schema-validate one checkpoint document."""
    with open(path, "r", encoding="utf-8") as handle:
        state = json.load(handle)
    if not isinstance(state, dict) or state.get("schema") != SCHEMA:
        raise CheckpointError(
            f"not a {SCHEMA} checkpoint: {os.fspath(path)!r}"
        )
    return state


def list_checkpoints(directory) -> list[Path]:
    """Checkpoint files oldest-first; ``.tmp`` orphans are ignored."""
    return sorted(Path(directory).glob(CHECKPOINT_PATTERN))
