"""Logical-state serialisation for all five spatial index backends.

An index's durable form is its *logical* state — construction parameters
plus the ``(id, geometry)`` entry set — not its physical node layout.
Physical shapes are history-dependent (a tree grown by inserts differs
from one bulk-loaded with the same entries) and every backend rebuilds a
valid structure from the entry set, so persisting the logical state is
both smaller and guaranteed restorable across refactors of the node
internals.  Query results over a rebuilt index are therefore
*set*-equivalent, not traversal-order-identical; all recovery
equivalence checks compare accordingly.

Entry ids are canonicalised through ``str()`` — the same convention as
:mod:`repro.core.persistence` and the event trail — and entries are
sorted by id so the serialised form is deterministic regardless of
insertion history (this is what pins the ``repro.persist/1`` golden
fixtures under ``tests/fixtures/``).
"""

from __future__ import annotations

from repro.geometry.rect import Rect
from repro.index.base import SpatialIndex
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.pyramid import PyramidGrid
from repro.index.quadtree import QuadTree
from repro.index.rtree import RTree


def rect_sides(rect: Rect) -> list[float]:
    """JSON-ready ``[min_x, min_y, max_x, max_y]`` form of a rectangle."""
    return [rect.min_x, rect.min_y, rect.max_x, rect.max_y]


def index_state(index: SpatialIndex) -> dict:
    """Serialise any of the five backends to a JSON-ready state dict.

    The state carries the backend name, its construction parameters, and
    the sorted entry list; :func:`index_from_state` is the inverse.
    """
    if isinstance(index, RTree):
        backend = "rtree"
        params = {"max_entries": index._max, "min_entries": index._min}
    elif isinstance(index, GridIndex):
        backend = "grid"
        params = {
            "bounds": rect_sides(index.bounds),
            "cols": index.cols,
            "rows": index.rows,
        }
    elif isinstance(index, KDTree):
        backend = "kdtree"
        params = {"rebuild_fraction": index._rebuild_fraction}
    elif isinstance(index, PyramidGrid):
        backend = "pyramid"
        params = {"bounds": rect_sides(index.bounds), "height": index.height}
    elif isinstance(index, QuadTree):
        backend = "quadtree"
        params = {
            "bounds": rect_sides(index.bounds),
            "capacity": index._capacity,
            "max_depth": index._max_depth,
        }
    else:
        raise TypeError(f"unserialisable index type: {type(index).__name__}")
    entries = sorted(
        [str(item), *rect_sides(index.geometry_of(item))] for item in index
    )
    return {"backend": backend, "params": params, "entries": entries}


def index_from_state(state: dict) -> SpatialIndex:
    """Rebuild a backend from :func:`index_state` output.

    The R-tree is rebuilt by STR bulk loading (packed, deterministic for
    a given entry set); the point backends re-insert in the serialised
    (sorted) order, which is likewise deterministic.
    """
    backend = state["backend"]
    params = state["params"]
    entries = {
        item: Rect(min_x, min_y, max_x, max_y)
        for item, min_x, min_y, max_x, max_y in state["entries"]
    }
    if backend == "rtree":
        if not entries:
            return RTree(
                max_entries=params["max_entries"],
                min_entries=params["min_entries"],
            )
        return RTree.bulk_load(
            entries,
            max_entries=params["max_entries"],
            min_entries=params["min_entries"],
        )
    if backend == "grid":
        index: SpatialIndex = GridIndex(
            Rect(*params["bounds"]), cols=params["cols"], rows=params["rows"]
        )
    elif backend == "kdtree":
        index = KDTree(rebuild_fraction=params["rebuild_fraction"])
    elif backend == "pyramid":
        index = PyramidGrid(Rect(*params["bounds"]), height=params["height"])
    elif backend == "quadtree":
        index = QuadTree(
            Rect(*params["bounds"]),
            capacity=params["capacity"],
            max_depth=params["max_depth"],
        )
    else:
        raise ValueError(f"unknown index backend: {backend!r}")
    for item, geom in entries.items():
        index.insert(item, geom)
    return index
