#!/usr/bin/env python3
"""Continuous queries over a moving, cloaked population (Section 5.3 + 6).

Two standing queries run while 1500 users move through the city:

* a city operator's *public* count monitor over the downtown district —
  maintained incrementally, one O(1) adjustment per region update;
* one driver's *private* continuous range query ("coffee within 8 units
  of me") — answered with candidate-set deltas so re-transmission cost
  tracks change, not answer size.

Run with:  python examples/continuous_monitoring.py [steps]
"""

import sys

import numpy as np

from repro import MobileUser, PrivacyProfile, PrivacySystem, PyramidCloaker
from repro.geometry import Point, Rect
from repro.mobility import RandomWaypointModel, clustered_population
from repro.queries import ContinuousPrivateRange


def main() -> None:
    steps = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    rng = np.random.default_rng(21)
    bounds = Rect(0, 0, 100, 100)
    system = PrivacySystem(bounds, PyramidCloaker(bounds, height=6))

    for j in range(120):
        x, y = rng.uniform(0, 100, 2)
        system.add_poi(f"coffee-{j}", Point(float(x), float(y)))

    users = clustered_population(bounds, 1500, rng)
    model = RandomWaypointModel(bounds, rng, speed_range=(0.5, 2.5))
    for i, p in enumerate(users):
        system.add_user(MobileUser(i, p, PrivacyProfile.always(k=12)))
        model.add_user(i, p)
    system.publish_all()

    downtown = Rect(35, 35, 65, 65)
    monitor = system.server.register_count_monitor("operator", downtown)
    coffee_watch = ContinuousPrivateRange(system.server.public, radius=8.0)

    print("step  downtown E[count]  truth  driver's candidates  delta shipped")
    print("----  -----------------  -----  -------------------  -------------")
    for step in range(steps):
        system.apply_movement(model.step(1.0))
        truth = sum(
            1 for u in system.users.values() if downtown.contains_point(u.location)
        )
        driver_region = system.server.private.region_of(
            system.anonymizer.pseudonym_of(0)
        )
        delta = coffee_watch.on_region_update(driver_region)
        print(
            f"{step:4d}  {monitor.expected_count:17.2f}  {truth:5d}  "
            f"{len(coffee_watch.candidates):19d}  {delta.transmission_size:13d}"
        )

    print(
        f"\nMonitor processed {monitor.updates_processed} region updates "
        f"incrementally (O(1) each)."
    )
    total = coffee_watch.objects_shipped
    naive = coffee_watch.full_answer_cost * steps
    print(
        f"Driver's continuous query shipped {total} objects in deltas; "
        f"re-shipping the full candidate set each step would have cost "
        f"~{naive}."
    )


if __name__ == "__main__":
    main()
