#!/usr/bin/env python3
"""Which cloaking algorithm actually protects you? (Section 5, req. 2)

Loads the same city population into all six cloaking algorithms and runs
the full adversary suite against each: the centre attack that breaks naive
cloaking, the boundary statistics that expose MBR cloaking, and the
omniscient posterior-anonymity replay that measures how many users could
really have issued each region.

Run with:  python examples/adversary_analysis.py [n_users] [k]
"""

import sys

import numpy as np

from repro.attacks import evaluate_attacks
from repro.core.profiles import PrivacyRequirement
from repro.evalx import build_workload, standard_cloakers
from repro.evalx.tables import Table


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    workload = build_workload(n_users=n_users, distribution="clustered", seed=5)
    rng = np.random.default_rng(5)
    victims = list(range(0, n_users, max(1, n_users // 40)))

    table = Table(
        f"Attack resistance, {n_users} users, k = {k} "
        "(center/random errors: higher is safer; posterior: >= k is safe)",
        ["algorithm", "center_err", "random_err", "boundary%", "posterior_k", "reciprocal%"],
    )
    for cloaker in standard_cloakers(workload):
        report = evaluate_attacks(
            cloaker,
            PrivacyRequirement(k=k),
            victims,
            rng,
            posterior_sample=15,
        )
        table.add_row(
            report.algorithm,
            report.center_norm_error,
            report.random_norm_error,
            100.0 * report.boundary_rate,
            report.mean_posterior_anonymity,
            100.0 * report.reciprocity_rate,
        )
    print(table.to_text())
    print(
        "\nReading the table:\n"
        "  * naive    - centre error ~0: the adversary reads the location "
        "off the region centre (the paper's Figure 3a warning).\n"
        "  * mbr      - victims sit on the region boundary far more often "
        "than chance (Figure 3b's information leak).\n"
        "  * space-dependent algorithms score near the random baseline on "
        "location attacks.\n"
        "  * hilbert  - the only algorithm whose posterior anonymity always "
        "reaches the promised k (reciprocity)."
    )


if __name__ == "__main__":
    main()
