#!/usr/bin/env python3
"""Cloaking under road-network movement.

Real populations do not fill the plane — they pile up on streets.  This
example moves 1000 users along a Manhattan street grid (via networkx
shortest paths) and compares how the cloaking algorithms cope with the
corridor-shaped density: data-dependent MBRs collapse onto street segments
(tiny areas, heavy leakage) while space partitions stay honest.

Run with:  python examples/road_network_city.py
"""

import numpy as np

from repro.attacks import on_boundary_fraction
from repro.core.profiles import PrivacyRequirement
from repro.evalx.tables import Table
from repro.cloaking import (
    GridCloaker,
    HilbertCloaker,
    MBRCloaker,
    NaiveCloaker,
    PyramidCloaker,
    QuadtreeCloaker,
)
from repro.geometry import Rect
from repro.mobility import NetworkMobilityModel, manhattan_network


def main() -> None:
    rng = np.random.default_rng(3)
    bounds = Rect(0, 0, 100, 100)
    # 7 blocks: street spacing 100/7 deliberately does NOT align with the
    # power-of-two cell boundaries of the space partitions, so boundary
    # statistics measure leakage, not grid coincidence.
    graph = manhattan_network(bounds, blocks=7)
    model = NetworkMobilityModel(graph, rng, speed_range=(1.0, 4.0))

    positions = {i: model.add_user(i) for i in range(1000)}
    # Let traffic spread out along the streets.
    for _ in range(30):
        positions = model.step(1.0)

    requirement = PrivacyRequirement(k=15)
    table = Table(
        "Cloaking 1000 street-bound users (k = 15)",
        ["algorithm", "mean_area", "p95_area", "victim_on_boundary%"],
    )
    for cls, kwargs in [
        (NaiveCloaker, {}),
        (MBRCloaker, {}),
        (QuadtreeCloaker, {"capacity": 4, "max_depth": 8}),
        (GridCloaker, {"cols": 32}),
        (PyramidCloaker, {"height": 6}),
        (HilbertCloaker, {"order": 8}),
    ]:
        cloaker = cls(bounds, **kwargs)
        for i, p in positions.items():
            cloaker.add_user(i, p)
        cloaks = []
        for victim in range(0, 1000, 20):
            region = cloaker.cloak(victim, requirement).region
            cloaks.append((region, positions[victim]))
        areas = [region.area for region, _ in cloaks]
        table.add_row(
            cloaker.name,
            float(np.mean(areas)),
            float(np.percentile(areas, 95)),
            100.0 * on_boundary_fraction(cloaks),
        )
    print(table.to_text())
    print(
        "\nOn corridor-shaped populations the MBR regions degenerate toward "
        "street segments: small areas look like good QoS, but the boundary "
        "statistic shows the victim is frequently pinned to the region "
        "edge - an easy target.  Space partitions trade a larger area for "
        "boundary-independence."
    )


if __name__ == "__main__":
    main()
