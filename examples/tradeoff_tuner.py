#!/usr/bin/env python3
"""The personal privacy dial (Section 1's central promise).

"Users would have the ability to tune a set of parameters to achieve a
personal trade-off between the amount of information they would like to
reveal about their locations and the quality of service."

This example is that tuner: for one user in a clustered city it prints the
what-if table (`anonymizer.preview`) — what each k costs in region area
and query candidates *right now, right here* — and then answers the
inverse question (`suggest_k_for_area`): "how much anonymity can I afford
if I never want my region bigger than X?"  The same user in a dense spot
and a sparse spot gets very different answers, which is exactly why the
paper makes the dial per-user and per-time.

Run with:  python examples/tradeoff_tuner.py
"""

import numpy as np

from repro import MobileUser, PrivacyProfile, PrivacySystem, PyramidCloaker
from repro.geometry import Point, Rect
from repro.mobility import clustered_population
from repro.queries import private_range_query


def tune(system: PrivacySystem, user_id: str, label: str) -> None:
    anonymizer = system.anonymizer
    store = system.server.public
    print(f"\n{label}")
    print("   k    region area   range candidates (r=8)")
    print("  ---   -----------   ----------------------")
    for k, area, _ in anonymizer.preview(user_id, [1, 5, 20, 50, 200]):
        if k == 1:
            candidates = "exact point - no overhead"
        else:
            from repro.core.profiles import PrivacyRequirement

            region = anonymizer.cloaker.cloak(
                user_id, PrivacyRequirement(k=k)
            ).region
            candidates = str(
                len(private_range_query(store, region, 8.0).candidates)
            )
        print(f"  {k:4d}   {area:11.2f}   {candidates}")
    for budget in (50.0, 500.0, 5000.0):
        k = anonymizer.suggest_k_for_area(user_id, budget)
        print(f"  area budget {budget:7.0f}  ->  affordable k = {k}")


def main() -> None:
    rng = np.random.default_rng(13)
    bounds = Rect(0, 0, 100, 100)
    system = PrivacySystem(bounds, PyramidCloaker(bounds, height=7))
    population = clustered_population(bounds, 4000, rng, n_clusters=3)
    for i, p in enumerate(population):
        system.add_user(MobileUser(i, p, PrivacyProfile.always(k=5)))
    for j in range(150):
        x, y = rng.uniform(0, 100, 2)
        system.add_poi(f"poi-{j}", Point(float(x), float(y)))

    # Same profile, two locations: downtown vs the outskirts.  (Candidate
    # scan is subsampled — this is a demo, not a benchmark.)
    densest = max(
        range(len(population)),
        key=lambda i: sum(
            1 for p in population if p.distance_to(population[i]) < 5
        )
        if i % 40 == 0
        else -1,
    )
    sparsest = max(
        range(len(population)),
        key=lambda i: min(
            p.distance_to(population[i])
            for j, p in enumerate(population)
            if j != i
        )
        if i % 40 == 0
        else -1,
    )
    tune(system, densest, f"User downtown (dense cluster, id {densest}):")
    tune(system, sparsest, f"User on the outskirts (sparse area, id {sparsest}):")
    print(
        "\nThe dial is location-dependent: downtown, high k is nearly free;"
        "\nin the outskirts the same k costs a district-sized region."
    )


if __name__ == "__main__":
    main()
