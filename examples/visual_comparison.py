#!/usr/bin/env python3
"""See the cloaking algorithms (ASCII art, no plotting stack needed).

Renders the same victim's cloaked region under four algorithms over the
population density map.  The naive square is visibly centred on the victim
(X); the pyramid cell is not.  Also demonstrates the persistence layer:
the server state survives a save/load round-trip.

Run with:  python examples/visual_comparison.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.cloaking import MBRCloaker, NaiveCloaker, PyramidCloaker, QuadtreeCloaker
from repro.core.persistence import (
    load_private_store,
    load_public_store,
    save_private_store,
    save_public_store,
)
from repro.core.profiles import PrivacyRequirement
from repro.core.stores import PrivateStore, PublicStore
from repro.evalx.ascii_viz import render_cloak_comparison
from repro.geometry import Point, Rect
from repro.mobility import clustered_population


def main() -> None:
    rng = np.random.default_rng(4)
    bounds = Rect(0, 0, 100, 100)
    points = clustered_population(bounds, 1200, rng)
    requirement = PrivacyRequirement(k=25)

    regions = []
    victim_point = None
    for cls in (NaiveCloaker, MBRCloaker, QuadtreeCloaker, PyramidCloaker):
        cloaker = cls(bounds) if cls is not PyramidCloaker else cls(bounds, height=6)
        for i, p in enumerate(points):
            cloaker.add_user(i, p)
        victim = 10
        victim_point = points[victim]
        result = cloaker.cloak(victim, requirement)
        regions.append((f"--- {cloaker.name} (area {result.area:.0f}) ---", result.region))

    print("Population density; X = victim, box = her cloaked region (k=25)\n")
    print(render_cloak_comparison(points, victim_point, regions, bounds))

    # ------------------------------------------------------------------
    # Persistence round-trip
    # ------------------------------------------------------------------
    public = PublicStore()
    for j in range(20):
        x, y = rng.uniform(0, 100, 2)
        public.add(f"poi-{j}", Point(float(x), float(y)))
    private = PrivateStore()
    for label, region in regions:
        private.set_region(label.split()[1], region)

    with tempfile.TemporaryDirectory() as tmp:
        public_path = Path(tmp) / "public.tsv"
        private_path = Path(tmp) / "private.tsv"
        save_public_store(public, public_path)
        save_private_store(private, private_path)
        restored_public = load_public_store(public_path)
        restored_private = load_private_store(private_path)
    print(
        f"\npersistence: {len(restored_public)} public objects and "
        f"{len(restored_private)} regions survived a save/load round-trip"
    )
    assert len(restored_public) == len(public)
    assert len(restored_private) == len(private)


if __name__ == "__main__":
    main()
