#!/usr/bin/env python3
"""Quickstart: the full privacy-aware LBS pipeline in ~60 lines.

Builds the paper's Figure 1 architecture — mobile users, the Location
Anonymizer, and the privacy-aware database server — then runs one of each
novel query type:

* a private query over public data ("what's near me?", Figure 5), and
* a public query over private data ("how many users are downtown?",
  Figure 6).

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CountSpec,
    MobileUser,
    NNSpec,
    PrivacyProfile,
    PrivacySystem,
    PyramidCloaker,
    RangeSpec,
)
from repro.geometry import Point, Rect


def main() -> None:
    rng = np.random.default_rng(7)
    bounds = Rect(0, 0, 100, 100)  # a 100x100 city

    # The system wires anonymizer + server; the pyramid cloaker is the
    # paper's proposed multi-level-grid optimisation.
    system = PrivacySystem(bounds, PyramidCloaker(bounds, height=6))

    # Public data: 40 gas stations at known, unprotected locations.
    for j in range(40):
        x, y = rng.uniform(0, 100, 2)
        system.add_poi(f"gas-{j}", Point(float(x), float(y)))

    # Private data: 500 mobile users, each demanding 10-anonymity.
    for i in range(500):
        x, y = rng.uniform(0, 100, 2)
        system.add_user(
            MobileUser(f"user-{i}", Point(float(x), float(y)),
                       PrivacyProfile.always(k=10))
        )
    system.publish_all()  # anonymizer pushes cloaked regions to the server

    # --- Private range query over public data (Figure 5a) -------------
    # Queries are declarative specs; the cost-based planner picks the
    # index backend and execution route for each one.
    outcome, stations = system.query(
        RangeSpec(flavor="private", user="user-42", radius=15.0)
    )
    print("Private range query (gas stations within 15 units):")
    print(f"  cloaked region area : {outcome.cloak_area:8.2f}")
    print(f"  candidates shipped  : {outcome.candidates}")
    print(f"  true answer size    : {outcome.answer_size}")
    print(f"  refined == truth    : {outcome.correct}")
    print(f"  stations            : {sorted(stations)[:5]} ...")

    # --- Private NN query over public data (Figure 5b) ----------------
    nn_outcome, nearest = system.query(NNSpec(flavor="private", user="user-42"))
    print("\nPrivate nearest-neighbour query:")
    print(f"  candidates shipped  : {nn_outcome.candidates}")
    print(f"  nearest station     : {nearest}")
    print(f"  refined == truth    : {nn_outcome.correct}")

    # --- Public count query over private data (Figure 6a) -------------
    downtown = Rect(30, 30, 70, 70)
    answer = system.query(CountSpec(window=downtown))
    truth = sum(
        1 for u in system.users.values() if downtown.contains_point(u.location)
    )
    print("\nPublic count query (users downtown), all three answer formats:")
    print(f"  absolute value      : {answer.expected:.2f}   (truth: {truth})")
    print(f"  interval            : {answer.interval}")
    print(f"  P(count == truth)   : {answer.probability_of_count(truth):.4f}")
    print(f"  naive overlap count : {system.server.public_count_naive(downtown)}")

    # --- Public NN query over private data (Figure 6b) ----------------
    result = system.query(
        NNSpec(dataset="private", point=Point(50, 50), samples=4096, seed=7)
    )
    top, prob = result.answer.ranked()[0]
    print("\nPublic NN query (nearest user to the mall at (50, 50)):")
    print(f"  candidate users     : {len(result.candidates)}")
    print(f"  most probable       : {top}  (P = {prob:.2f})")
    print(f"  answer entropy      : {result.answer.entropy():.2f} bits")


if __name__ == "__main__":
    main()
