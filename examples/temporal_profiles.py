#!/usr/bin/env python3
"""A day in the life of a privacy profile (Figure 2 of the paper).

One commuter uses the paper's example profile — open during work hours,
100-anonymous in the evening, 1000-anonymous at night — while moving
through a clustered city.  The script prints, hour by hour, what the
location-based database server actually sees: an exact point by day, a
small evening region, a huge night region.

Run with:  python examples/temporal_profiles.py
"""

import numpy as np

from repro import MobileUser, PrivacySystem, PyramidCloaker, example_profile
from repro.core.profiles import SECONDS_PER_DAY, PrivacyProfile
from repro.geometry import Point, Rect
from repro.mobility import RandomWaypointModel, clustered_population


def main() -> None:
    rng = np.random.default_rng(11)
    bounds = Rect(0, 0, 100, 100)
    system = PrivacySystem(bounds, PyramidCloaker(bounds, height=7))

    # A realistic city backdrop: 3000 background users (they lend the
    # commuter her anonymity) with modest privacy needs of their own.
    background = clustered_population(bounds, 3000, rng)
    for i, p in enumerate(background):
        system.add_user(MobileUser(i, p, PrivacyProfile.always(k=5)))

    commuter = MobileUser("commuter", Point(50, 50), example_profile())
    system.add_user(commuter)

    model = RandomWaypointModel(bounds, rng, speed_range=(1.0, 1.0))
    model.add_user("commuter", commuter.location)

    print("hour   k-required   region area   what the server learns")
    print("-----  ----------  ------------  --------------------------------")
    for hour in range(0, 24, 2):
        t = hour * 3600.0
        system.clock = t % SECONDS_PER_DAY
        position = model.step(3600.0)["commuter"]
        system.apply_movement({"commuter": position}, dt=0.0)
        requirement = system.anonymizer.requirement_for("commuter", t)
        cloak = system.anonymizer.cloak_user("commuter", t)
        if cloak.region.area == 0.0:
            seen = f"exact point ({position.x:.1f}, {position.y:.1f})"
        elif cloak.region.area < 100:
            seen = "a neighbourhood-sized region"
        else:
            seen = "a district-sized region"
        print(
            f"{hour:02d}:00  {requirement.k:10d}  {cloak.region.area:12.2f}  {seen}"
        )

    print("\nThe same user, the same movements - but the server's knowledge")
    print("follows the profile: everything by day, almost nothing by night.")


if __name__ == "__main__":
    main()
