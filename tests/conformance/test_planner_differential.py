"""Differential conformance of the cost-based planner.

The planner's contract is that planning never changes answers.  This
suite re-proves it from the outside: for every query type, the planned
execution must be bit-identical to EVERY forced static (backend, route)
choice — all five index backends and both execution routes — and to the
brute-force oracle.  Failures dump their generating scenario to
``tests/conformance/artifacts/`` via the shared ``scenario`` fixture.

The private store is populated with *degenerate* (zero-area) regions so
the point replicas of all five backends are eligible for the count
quadrant; the region-shaped variant pins counts to the native store and
is covered by the eligibility test at the bottom.
"""

from __future__ import annotations

import random

import pytest

from repro.core.server import LocationServer
from repro.engine import BruteForceOracle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import Telemetry
from repro.planner import BACKEND_NAMES, QueryPlanner
from repro.queries.spec import CountSpec, KNNSpec, NNSpec, RangeSpec

SEEDS = [3, 47]
UNIVERSE = Rect(0.0, 0.0, 50.0, 50.0)


def build_server(rng: random.Random, n_public: int = 140, n_private: int = 70):
    """A server whose private regions are degenerate points (see module
    docstring) so every backend is conformance-testable for counts."""
    server = LocationServer(telemetry=Telemetry(enabled=False))
    for i in range(n_public):
        server.add_public_object(
            f"o{i}", Point(float(rng.randint(0, 50)), float(rng.randint(0, 50)))
        )
    for i in range(n_private):
        x = float(rng.randint(0, 50))
        y = float(rng.randint(0, 50))
        server.receive_region(f"u{i}", Rect(x, y, x, y))
    return server


def spec_workload(rng: random.Random, n: int = 40):
    specs = []
    for _ in range(n):
        x = float(rng.randint(0, 50))
        y = float(rng.randint(0, 50))
        side = float(rng.choice([0, rng.randint(1, 15)]))
        window = Rect(x - side / 2, y - side / 2, x + side / 2, y + side / 2)
        region = Rect(x, y, x + side / 3, y + side / 3)
        specs.append(
            rng.choice(
                [
                    lambda: RangeSpec(window=window),
                    lambda: KNNSpec(point=Point(x, y), k=rng.randint(1, 9)),
                    lambda: CountSpec(window=window),
                    lambda: RangeSpec(
                        flavor="private",
                        region=region,
                        radius=float(rng.randint(0, 10)),
                        method=rng.choice(["exact", "mbr"]),
                    ),
                    lambda: NNSpec(
                        flavor="private",
                        region=region,
                        method=rng.choice(["range", "filter", "exact"]),
                    ),
                    lambda: KNNSpec(
                        flavor="private",
                        region=region,
                        k=rng.randint(1, 5),
                        method=rng.choice(["range", "filter"]),
                    ),
                ]
            )()
        )
    return specs


def canonical(result):
    """A comparable canonical form per result type."""
    if hasattr(result, "probabilities"):
        return dict(result.probabilities)
    if hasattr(result, "candidates"):
        return tuple(result.candidates)
    return tuple(result)


@pytest.mark.parametrize("seed", SEEDS)
def test_every_forced_choice_matches_the_planned_answer(seed, scenario):
    """5 backends x 2 routes, all four query types: result identity."""
    rng = random.Random(seed)
    server = build_server(rng)
    planner = QueryPlanner(server, universe=UNIVERSE)
    seen_backends: set[str] = set()
    for position, spec in enumerate(spec_workload(rng)):
        planned = canonical(planner.execute(spec))
        for backend, route in planner.conformance_backends(spec):
            seen_backends.add(backend)
            scenario.record(
                seed=seed,
                position=position,
                spec=repr(spec),
                backend=backend,
                route=route,
                planned=repr(planned),
            )
            forced = canonical(
                planner.execute(spec, backend=backend, route=route)
            )
            assert forced == planned, (
                f"{backend}/{route} diverged from the planned answer "
                f"for {spec!r}"
            )
    # The workload must actually have exercised every backend.
    assert seen_backends == set(BACKEND_NAMES)


@pytest.mark.parametrize("seed", SEEDS)
def test_planned_answers_match_the_oracle(seed, scenario):
    rng = random.Random(seed)
    server = build_server(rng)
    planner = QueryPlanner(server, universe=UNIVERSE)
    oracle = BruteForceOracle.from_server(server)
    for position, spec in enumerate(spec_workload(rng)):
        scenario.record(seed=seed, position=position, spec=repr(spec))
        answer = planner.execute(spec)
        if isinstance(spec, RangeSpec) and spec.flavor == "public":
            assert tuple(answer) == tuple(oracle.public_range(spec.window))
        elif isinstance(spec, KNNSpec) and spec.flavor == "public":
            assert tuple(answer) == tuple(
                oracle.public_knn(spec.point, spec.k)
            )
        elif isinstance(spec, CountSpec):
            want = oracle.public_count(spec.window)
            assert answer.probabilities == want.probabilities
        elif isinstance(spec, RangeSpec):
            want = tuple(
                oracle.private_range(spec.region, spec.radius, spec.method)
            )
            assert answer.candidates == want
        elif isinstance(spec, NNSpec):
            witnesses = oracle.private_nn_witnesses(spec.region)
            assert witnesses <= set(answer.candidates)
        else:  # private k-NN: the candidate set must cover the true k list
            truth = {
                item
                for corner in (
                    Point(spec.region.min_x, spec.region.min_y),
                    Point(spec.region.max_x, spec.region.max_y),
                )
                for item in oracle.public_knn(corner, spec.k)
            }
            assert truth <= set(answer.candidates) or len(
                answer.candidates
            ) >= spec.k


@pytest.mark.parametrize("seed", SEEDS)
def test_batch_execution_equals_per_spec_execution(seed, scenario):
    rng = random.Random(seed)
    server = build_server(rng)
    planner = QueryPlanner(server, universe=UNIVERSE)
    specs = spec_workload(rng)
    scenario.record(seed=seed, specs=[repr(s) for s in specs])
    batched = [canonical(r) for r in planner.execute_batch(specs)]
    singles = [canonical(planner.execute(spec)) for spec in specs]
    assert batched == singles
    # A forced-vectorized batch agrees too, on the specs that have a
    # vectorized execution (pinned kinds only run scalar).
    vectorizable = [
        spec
        for spec in specs
        if any(
            route == "vectorized"
            for _, route in planner.conformance_backends(spec)
        )
    ]
    vec = [
        canonical(r)
        for r in planner.execute_batch(vectorizable, route="vectorized")
    ]
    assert vec == [canonical(planner.execute(spec)) for spec in vectorizable]


@pytest.mark.parametrize("seed", SEEDS)
def test_forced_vectorized_route_equals_scalar(seed, scenario):
    rng = random.Random(seed)
    server = build_server(rng)
    planner = QueryPlanner(server, universe=UNIVERSE)
    for spec in (
        RangeSpec(window=Rect(5, 5, 30, 30)),
        KNNSpec(point=Point(25, 25), k=6),
        CountSpec(window=Rect(10, 10, 35, 35)),
        RangeSpec(
            flavor="private", region=Rect(12, 12, 18, 18), radius=6.0
        ),
    ):
        scenario.record(seed=seed, spec=repr(spec))
        scalar = canonical(
            planner.execute(spec, backend="rtree", route="scalar")
        )
        vectorized = canonical(planner.execute(spec, route="vectorized"))
        assert scalar == vectorized


def test_region_shaped_private_store_pins_counts_to_rtree(scenario):
    """With real (area) cloaks the point replicas are ineligible."""
    rng = random.Random(11)
    server = LocationServer(telemetry=Telemetry(enabled=False))
    for i in range(30):
        server.add_public_object(
            f"o{i}", Point(float(rng.randint(0, 50)), float(rng.randint(0, 50)))
        )
    for i in range(30):
        x = float(rng.randint(0, 44))
        y = float(rng.randint(0, 44))
        server.receive_region(f"u{i}", Rect(x, y, x + 5.0, y + 5.0))
    planner = QueryPlanner(server, universe=UNIVERSE)
    spec = CountSpec(window=Rect(10, 10, 40, 40))
    scenario.record(spec=repr(spec))
    pairs = planner.conformance_backends(spec)
    assert {backend for backend, _ in pairs} == {"rtree"}
    planned = canonical(planner.execute(spec))
    for backend, route in pairs:
        assert (
            canonical(planner.execute(spec, backend=backend, route=route))
            == planned
        )
