"""Differential conformance: bulk cloaking against the per-user oracle.

:func:`repro.engine.bulk_cloak` promises regions **identical** — same
floats, not merely equivalent — to the per-user cloaking path for every
cloaker, kernel or scalar fallback alike.  These tests hold it to that on
seeded randomized populations with mixed requirements (no-privacy users,
ordinary k/A_min mixes, and k values above the population that force
best-effort escalation), across grid and pyramid cloakers at several
resolutions, plus the neighbour-merge pyramid that exercises the scalar
fallback.  Positions come from a coarse lattice on purpose: users landing
exactly on cell edges are where a vectorized cell assignment would first
disagree with the scalar one.

Failures dump a replayable scenario via the ``scenario`` fixture
(see ``conftest.py``).
"""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.cloaking.grid_cloak import GridCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.core.profiles import PrivacyProfile, PrivacyRequirement
from repro.core.system import PrivacySystem
from repro.engine.cloak import bulk_cloak, supports_kernel
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.mobility.users import MobileUser
from repro.obs import Telemetry

BOUNDS = Rect(0.0, 0.0, 64.0, 64.0)

CLOAKERS = {
    "grid_8": lambda: GridCloaker(BOUNDS, cols=8, rows=8),
    "grid_32": lambda: GridCloaker(BOUNDS, cols=32, rows=32),
    "pyramid_4": lambda: PyramidCloaker(BOUNDS, height=4),
    "pyramid_6": lambda: PyramidCloaker(BOUNDS, height=6),
    "pyramid_merge": lambda: PyramidCloaker(
        BOUNDS, height=5, neighbor_merge=True
    ),
}

SEEDS = [3, 17, 59]


def lattice_population(rng: random.Random, n: int) -> dict[str, Point]:
    """Positions snapped to a lattice aligned with cell edges."""
    return {
        f"u{i}": Point(float(rng.randint(0, 64)), float(rng.randint(0, 64)))
        for i in range(n)
    }


def random_requirement(rng: random.Random, population: int) -> PrivacyRequirement:
    roll = rng.random()
    if roll < 0.15:
        return PrivacyRequirement()  # no privacy: exact-point region
    if roll < 0.25:
        # Best-effort escalation: more anonymity than subscribers exist.
        return PrivacyRequirement(k=population + rng.randint(1, 50))
    return PrivacyRequirement(
        k=rng.randint(2, max(2, population // 2)),
        min_area=rng.choice([0.0, 1.0, 16.0, 256.0]),
    )


def oracle_cloak(cloaker, user_id, requirement):
    """The per-user reference: ``LocationAnonymizer.cloak_user`` semantics."""
    if not requirement.wants_privacy:
        point = cloaker.location_of(user_id)
        from repro.cloaking.base import CloakResult

        return CloakResult(
            region=Rect.from_point(point), user_count=1, requirement=requirement
        )
    population = cloaker.user_count()
    if requirement.k > population:
        effective = replace(requirement, k=max(1, population))
        result = cloaker.cloak(user_id, effective)
        return replace(result, requirement=requirement)
    return cloaker.cloak(user_id, requirement)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(CLOAKERS))
def test_bulk_matches_per_user_oracle(name, seed, scenario):
    rng = random.Random(seed)
    points = lattice_population(rng, 150)
    bulk_cloaker = CLOAKERS[name]()
    oracle_cloaker = CLOAKERS[name]()
    for user_id, point in points.items():
        bulk_cloaker.add_user(user_id, point)
        oracle_cloaker.add_user(user_id, point)
    requests = [
        (user_id, random_requirement(rng, len(points))) for user_id in points
    ]
    outcome = bulk_cloak(bulk_cloaker, requests)
    expected_path = "kernel" if supports_kernel(bulk_cloaker) else "scalar"
    assert outcome.path == expected_path
    assert set(outcome.results) == set(points)
    for user_id, requirement in requests:
        got = outcome.results[user_id]
        want = oracle_cloak(oracle_cloaker, user_id, requirement)
        scenario.record(
            cloaker=name,
            seed=seed,
            user=user_id,
            point=[points[user_id].x, points[user_id].y],
            k=requirement.k,
            min_area=requirement.min_area,
            got_region=[
                got.region.min_x, got.region.min_y,
                got.region.max_x, got.region.max_y,
            ],
            want_region=[
                want.region.min_x, want.region.min_y,
                want.region.max_x, want.region.max_y,
            ],
            got_count=got.user_count,
            want_count=want.user_count,
        )
        assert got.region == want.region
        assert got.user_count == want.user_count
        assert got.requirement == want.requirement
        assert got.k_satisfied == want.k_satisfied
        assert got.area_satisfied == want.area_satisfied


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", ["grid_32", "pyramid_6"])
def test_publish_paths_identical_server_state(name, seed, scenario):
    """End to end: publish_all(bulk=True) == publish_all(), region for region."""
    rng = random.Random(seed ^ 0xB17)
    points = lattice_population(rng, 120)
    profiles = {
        user_id: random_requirement(rng, len(points)) for user_id in points
    }

    def build() -> PrivacySystem:
        system = PrivacySystem(
            bounds=BOUNDS,
            cloaker=CLOAKERS[name](),
            telemetry=Telemetry(enabled=False),
        )
        for user_id, point in points.items():
            requirement = profiles[user_id]
            system.add_user(
                MobileUser(
                    user_id,
                    point,
                    PrivacyProfile.always(
                        k=requirement.k, min_area=requirement.min_area
                    ),
                )
            )
        return system

    per_user = build()
    bulk = build()
    per_user.publish_all()
    bulk.publish_all(bulk=True)

    def regions_by_user(system: PrivacySystem) -> dict:
        return {
            user_id: system.server.private.region_of(registration.pseudonym)
            for user_id, registration in system.anonymizer._registrations.items()
        }

    want = regions_by_user(per_user)
    got = regions_by_user(bulk)
    assert set(want) == set(got)
    for user_id in want:
        scenario.record(
            cloaker=name,
            seed=seed,
            user=user_id,
            point=[points[user_id].x, points[user_id].y],
            k=profiles[user_id].k,
            min_area=profiles[user_id].min_area,
            got_region=[
                got[user_id].min_x, got[user_id].min_y,
                got[user_id].max_x, got[user_id].max_y,
            ],
            want_region=[
                want[user_id].min_x, want[user_id].min_y,
                want[user_id].max_x, want[user_id].max_y,
            ],
        )
        assert got[user_id] == want[user_id]
