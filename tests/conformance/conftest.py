"""Failure artifacts for the differential conformance suite.

A failing conformance test is only useful if it can be replayed: tests
record their generating parameters (seed, backend, query) through the
``scenario`` fixture, and the report hook below dumps that record to
``tests/conformance/artifacts/<test>.json`` whenever the test fails —
a minimal repro the next developer can paste straight into a debugger.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import pytest

ARTIFACT_DIR = Path(__file__).parent / "artifacts"


class ScenarioRecorder:
    """Collects the JSON-serialisable repro data of the current test."""

    def __init__(self) -> None:
        self.data: dict | None = None

    def record(self, **data: object) -> None:
        """Overwrite the scenario; call again as the test iterates."""
        self.data = data


@pytest.fixture
def scenario() -> ScenarioRecorder:
    return ScenarioRecorder()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    recorder = getattr(item, "funcargs", {}).get("scenario")
    if recorder is None or recorder.data is None:
        return
    ARTIFACT_DIR.mkdir(exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", item.name)
    path = ARTIFACT_DIR / f"{safe}.json"
    path.write_text(
        json.dumps(recorder.data, indent=2, default=str) + "\n",
        encoding="utf-8",
    )
    report.sections.append(
        ("conformance repro", f"scenario dumped to {path}")
    )
