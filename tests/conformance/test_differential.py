"""Differential conformance: every backend against the brute-force oracle.

Every spatial index backend must give the same answers as
:class:`repro.engine.BruteForceOracle` — and therefore as each other —
on seeded randomized workloads, for each query type it supports:

* ``range``   — exact containment / intersection sets,
* ``nn``      — the single nearest object (tie-aware),
* ``knn``     — k nearest objects (tie-aware validity + equal distances),
* ``count``   — probabilistic count built on the backend's range query.

Coordinates are drawn from a small integer lattice on purpose: duplicate
points and exact distance ties are common, which is where index
implementations usually disagree.  Failures dump a replayable scenario
via the ``scenario`` fixture (see ``conftest.py``).
"""

from __future__ import annotations

import random

import pytest

from repro.engine import BruteForceOracle
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index import GridIndex, KDTree, PyramidGrid, QuadTree, RTree
from repro.queries.public_range import membership_probability

BOUNDS = Rect(0.0, 0.0, 100.0, 100.0)

BACKENDS = {
    "rtree": lambda: RTree(max_entries=8),
    "quadtree": lambda: QuadTree(BOUNDS, capacity=4),
    "grid": lambda: GridIndex(BOUNDS, cols=10),
    "kdtree": lambda: KDTree(),
    "pyramid": lambda: PyramidGrid(BOUNDS, height=5),
}

SEEDS = [11, 23, 47]


def lattice_points(rng: random.Random, n: int) -> dict[str, Point]:
    """Points on a coarse integer lattice — ties and duplicates abound."""
    return {
        f"p{i}": Point(float(rng.randint(0, 40)), float(rng.randint(0, 40)))
        for i in range(n)
    }


def random_window(rng: random.Random) -> Rect:
    x0 = rng.uniform(-5.0, 38.0)
    y0 = rng.uniform(-5.0, 38.0)
    w = rng.choice([0.0, rng.uniform(0.0, 12.0), rng.uniform(0.0, 50.0)])
    h = rng.choice([0.0, rng.uniform(0.0, 12.0)])
    return Rect(x0, y0, x0 + w, y0 + h)


def build_point_index(name: str, points: dict[str, Point]):
    index = BACKENDS[name]()
    for item, p in points.items():
        index.insert(item, Rect.from_point(p))
    return index


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("seed", SEEDS)
class TestPointBackendsAgainstOracle:
    """All five backends × {range, nn, knn, count} × seeded workloads."""

    def test_range(self, backend, seed, scenario):
        rng = random.Random(seed)
        points = lattice_points(rng, 120)
        index = build_point_index(backend, points)
        oracle = BruteForceOracle(public=points)
        for trial in range(40):
            window = random_window(rng)
            got = sorted(index.range_query(window), key=str)
            want = sorted(oracle.public_range(window), key=str)
            scenario.record(
                backend=backend, seed=seed, trial=trial, query="range",
                window=window.as_tuple(),
                points={k: (p.x, p.y) for k, p in points.items()},
                got=got, want=want,
            )
            assert got == want

    def test_nn(self, backend, seed, scenario):
        rng = random.Random(seed)
        points = lattice_points(rng, 120)
        index = build_point_index(backend, points)
        oracle = BruteForceOracle(public=points)
        for trial in range(40):
            # Bounded indexes (grid, pyramid) only accept in-universe
            # query points, so draw inside BOUNDS.
            q = Point(rng.uniform(0.0, 45.0), rng.uniform(0.0, 45.0))
            got = index.nearest(q, 1)
            scenario.record(
                backend=backend, seed=seed, trial=trial, query="nn",
                point=(q.x, q.y),
                points={k: (p.x, p.y) for k, p in points.items()},
                got=list(got),
            )
            assert oracle.validate_knn(got, q, 1)

    def test_knn(self, backend, seed, scenario):
        rng = random.Random(seed)
        points = lattice_points(rng, 120)
        index = build_point_index(backend, points)
        oracle = BruteForceOracle(public=points)
        for trial in range(40):
            q = Point(float(rng.randint(0, 40)), float(rng.randint(0, 40)))
            k = rng.randint(1, 15)
            got = index.nearest(q, k)
            want = oracle.public_knn(q, k)
            scenario.record(
                backend=backend, seed=seed, trial=trial, query="knn",
                point=(q.x, q.y), k=k,
                points={k_: (p.x, p.y) for k_, p in points.items()},
                got=list(got), want=list(want),
            )
            # Tie-aware: the answer must be a valid k-NN set, and its
            # distance sequence must equal the oracle's exactly.
            assert oracle.validate_knn(got, q, k)
            got_d = [q.distance_to(points[item]) for item in got]
            want_d = [q.distance_to(points[item]) for item in want]
            assert got_d == want_d

    def test_count(self, backend, seed, scenario):
        rng = random.Random(seed)
        points = lattice_points(rng, 120)
        index = build_point_index(backend, points)
        oracle = BruteForceOracle.from_index(index)
        for trial in range(40):
            window = random_window(rng)
            got = sum(
                membership_probability(index.geometry_of(item), window)
                for item in index.range_query(window)
            )
            want = oracle.public_count(window).expected
            scenario.record(
                backend=backend, seed=seed, trial=trial, query="count",
                window=window.as_tuple(),
                points={k: (p.x, p.y) for k, p in points.items()},
                got=got, want=want,
            )
            assert got == pytest.approx(want, abs=0.0)


@pytest.mark.parametrize("seed", SEEDS)
class TestRectBackendAgainstOracle:
    """The R-tree also holds true rectangles (cloaked regions)."""

    def rects(self, rng: random.Random) -> dict[str, Rect]:
        out = {}
        for i in range(80):
            x0 = float(rng.randint(0, 35))
            y0 = float(rng.randint(0, 35))
            w = float(rng.choice([0, 0, rng.randint(1, 8)]))
            h = float(rng.choice([0, rng.randint(1, 8)]))
            out[f"r{i}"] = Rect(x0, y0, x0 + w, y0 + h)
        return out

    def test_region_range(self, seed, scenario):
        rng = random.Random(seed)
        rects = self.rects(rng)
        index = RTree(max_entries=8)
        for item, r in rects.items():
            index.insert(item, r)
        oracle = BruteForceOracle(private=rects)
        for trial in range(40):
            window = random_window(rng)
            got = sorted(index.range_query(window), key=str)
            want = sorted(oracle.region_range(window), key=str)
            scenario.record(
                seed=seed, trial=trial, query="region_range",
                window=window.as_tuple(),
                rects={k: r.as_tuple() for k, r in rects.items()},
                got=got, want=want,
            )
            assert got == want

    def test_region_count(self, seed, scenario):
        rng = random.Random(seed)
        rects = self.rects(rng)
        index = RTree(max_entries=8)
        for item, r in rects.items():
            index.insert(item, r)
        oracle = BruteForceOracle(private=rects)
        for trial in range(40):
            window = random_window(rng)
            got = {
                item: membership_probability(rects[item], window)
                for item in index.range_query(window)
            }
            want = oracle.public_count(window).probabilities
            scenario.record(
                seed=seed, trial=trial, query="region_count",
                window=window.as_tuple(),
                rects={k: r.as_tuple() for k, r in rects.items()},
                got=got, want=dict(want),
            )
            assert got == want
