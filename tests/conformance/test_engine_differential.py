"""Differential conformance of the batch engine itself.

Three independent implementations answer the same randomized workloads:

* the vectorised batch engine (grid + broadcast kernels),
* the engine's sequential mode (per-query index paths, ``vectorize=False``),
* the brute-force oracle.

All three must agree, query by query.  The grid-accelerated kernels are
additionally pinned to their brute-force broadcast counterparts row for
row, so a pruning bug cannot hide behind id-level equality.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.server import LocationServer
from repro.engine import (
    BatchEngine,
    BruteForceOracle,
    PrivateNNQuery,
    PrivateRangeQuery,
    PublicCountQuery,
    PublicNNQuery,
    PublicRangeQuery,
)
from repro.engine import kernels
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import Telemetry

SEEDS = [5, 29, 71]


def build_server(rng: random.Random, n_public: int = 150, n_private: int = 60):
    server = LocationServer(telemetry=Telemetry(enabled=False))
    for i in range(n_public):
        server.add_public_object(
            f"o{i}", Point(float(rng.randint(0, 50)), float(rng.randint(0, 50)))
        )
    for i in range(n_private):
        x0 = float(rng.randint(0, 45))
        y0 = float(rng.randint(0, 45))
        w = float(rng.choice([0, rng.randint(0, 6)]))
        h = float(rng.choice([0, rng.randint(0, 6)]))
        server.receive_region(f"u{i}", Rect(x0, y0, x0 + w, y0 + h))
    return server


def mixed_batch(rng: random.Random, n: int):
    batch = []
    for i in range(n):
        x = float(rng.randint(0, 50))
        y = float(rng.randint(0, 50))
        side = float(rng.choice([0, rng.randint(1, 15)]))
        window = Rect(x - side / 2, y - side / 2, x + side / 2, y + side / 2)
        region = Rect(x, y, x + side / 3, y + side / 3)
        batch.append(
            rng.choice(
                [
                    PublicRangeQuery(window),
                    PublicNNQuery(Point(x, y), k=rng.randint(1, 9)),
                    PublicCountQuery(window),
                    PrivateRangeQuery(
                        region,
                        float(rng.randint(0, 10)),
                        method=rng.choice(["exact", "mbr"]),
                    ),
                    PrivateNNQuery(
                        region, method=rng.choice(["range", "filter", "exact"])
                    ),
                ]
            )
        )
    return batch


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_modes_and_oracle_agree(seed, scenario):
    rng = random.Random(seed)
    server = build_server(rng)
    engine = BatchEngine(server)
    oracle = BruteForceOracle.from_server(server)
    batch = mixed_batch(rng, 120)
    vec = engine.execute(batch)
    seq = engine.execute(batch, vectorize=False)
    for position, (query, a, b) in enumerate(zip(batch, vec, seq)):
        scenario.record(
            seed=seed, position=position, query=repr(query),
            vectorized=repr(a), sequential=repr(b),
        )
        if query.kind == "public_range":
            want = tuple(oracle.public_range(query.window))
            assert a == want
            assert b == want
        elif query.kind == "public_nn":
            assert a == tuple(oracle.public_knn(query.point, query.k))
            assert oracle.validate_knn(b, query.point, query.k)
            a_d = [query.point.distance_to(oracle.public[i]) for i in a]
            b_d = [query.point.distance_to(oracle.public[i]) for i in b]
            assert a_d == b_d
        elif query.kind == "public_count":
            want = oracle.public_count(query.window)
            assert a.probabilities == want.probabilities
            assert b.probabilities == want.probabilities
        elif query.kind == "private_range":
            want = tuple(
                oracle.private_range(query.region, query.radius, query.method)
            )
            assert a.candidates == want
            assert b.candidates == want
        else:  # private_nn
            assert a.candidates == b.candidates
            witnesses = oracle.private_nn_witnesses(query.region)
            assert witnesses <= set(a.candidates)
            if query.method == "range":
                assert set(a.candidates) == set(
                    oracle.private_nn_bound(query.region)
                )


@pytest.mark.parametrize("seed", SEEDS)
def test_grid_kernels_match_broadcast_kernels(seed, scenario):
    """Row-for-row identity of the grid pruning against brute broadcast."""
    rng = random.Random(seed)
    n = rng.choice([0, 1, 5, 130])
    xs = np.array([float(rng.randint(0, 30)) for _ in range(n)])
    ys = np.array([float(rng.randint(0, 30)) for _ in range(n)])
    grid = kernels.PointGrid(xs, ys)
    windows = []
    for _ in range(50):
        x0 = rng.uniform(-4.0, 28.0)
        y0 = rng.uniform(-4.0, 28.0)
        windows.append(
            [x0, y0, x0 + rng.uniform(0.0, 15.0), y0 + rng.uniform(0.0, 15.0)]
        )
    windows = np.array(windows)
    scenario.record(
        seed=seed, n=n, xs=xs.tolist(), ys=ys.tolist(),
        windows=windows.tolist(),
    )
    brute = kernels.points_in_windows(xs, ys, windows)
    fast = kernels.points_in_windows_grid(grid, windows)
    for b, f in zip(brute, fast):
        assert np.array_equal(b, f)
    qx = np.array([rng.uniform(-4.0, 34.0) for _ in range(50)])
    qy = np.array([rng.uniform(-4.0, 34.0) for _ in range(50)])
    ks = [rng.randint(1, max(1, n + 2)) for _ in range(50)]
    brute_k = kernels.knn_points(xs, ys, qx, qy, ks)
    fast_k = kernels.knn_points_grid(grid, qx, qy, ks)
    for b, f in zip(brute_k, fast_k):
        assert np.array_equal(b, f)
