"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@pytest.fixture(autouse=True)
def _seed_global_rngs() -> None:
    """Reset both global RNGs before every test.

    Code paths that draw from module-level randomness (the dummies
    cloaker uses ``random``, workload generators use ``np.random``) must
    behave identically on reruns regardless of which tests ran before —
    ``pytest -p no:randomly`` alone doesn't guarantee that, because any
    earlier test advances the shared global state.
    """
    random.seed(0x5EED)
    np.random.seed(0x5EED)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator, fresh per test."""
    return np.random.default_rng(42)


@pytest.fixture
def bounds() -> Rect:
    """The standard 100x100 test universe."""
    return Rect(0.0, 0.0, 100.0, 100.0)


@pytest.fixture
def uniform_points_500(bounds, rng) -> list[Point]:
    """500 uniform points in the test universe (deterministic)."""
    coords = rng.uniform(0.0, 100.0, size=(500, 2))
    return [Point(float(x), float(y)) for x, y in coords]


@pytest.fixture
def clustered_points_500(bounds, rng) -> list[Point]:
    """A two-cluster population plus sparse background."""
    pts = []
    for cx, cy, n in [(20.0, 20.0, 200), (70.0, 75.0, 200)]:
        xs = np.clip(rng.normal(cx, 4.0, n), 0.0, 100.0)
        ys = np.clip(rng.normal(cy, 4.0, n), 0.0, 100.0)
        pts.extend(Point(float(x), float(y)) for x, y in zip(xs, ys))
    coords = rng.uniform(0.0, 100.0, size=(100, 2))
    pts.extend(Point(float(x), float(y)) for x, y in coords)
    return pts
