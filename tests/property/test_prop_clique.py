"""Property-based tests for CliqueCloak service invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloaking.clique import CliqueCloak
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)

arrivals = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),  # x
        st.floats(min_value=0, max_value=100, allow_nan=False),  # y
        st.integers(min_value=1, max_value=6),                   # k
        st.floats(min_value=0.5, max_value=25),                  # tolerance
    ),
    min_size=1,
    max_size=50,
)


@given(arrivals)
@settings(max_examples=50, deadline=None)
def test_served_groups_satisfy_all_invariants(raw):
    cloak = CliqueCloak(BOUNDS)
    requests = {}
    for i, (x, y, k, tolerance) in enumerate(raw):
        point = Point(x, y)
        requests[i] = (point, k, tolerance)
        cloak.request(float(i), i, point, k=k, tolerance=tolerance)
    cloak.tick(float(len(raw)))

    served_users = [m for r in cloak.served for m in r.members]
    # No user is served twice, and served + pending = all requests.
    assert len(served_users) == len(set(served_users))
    assert len(served_users) + cloak.pending_count == len(raw)

    for result in cloak.served:
        member_info = [requests[m] for m in result.members]
        # 1. Group size covers every member's personal k.
        assert result.group_size >= max(k for _, k, _ in member_info)
        # 2. The shared region contains every member's point.
        for point, _, _ in member_info:
            assert result.region.expanded(1e-9).contains_point(point)
        # 3. The region respects every member's tolerance box (up to the
        #    universe clip).
        for point, _, tolerance in member_info:
            box = Rect.from_center(point, 2 * tolerance, 2 * tolerance)
            allowed = box.intersection(BOUNDS)
            assert allowed is not None
            assert allowed.expanded(1e-9).contains_rect(result.region)
        # 4. Inside the universe.
        assert BOUNDS.contains_rect(result.region)


@given(arrivals, st.floats(min_value=1, max_value=30))
@settings(max_examples=30, deadline=None)
def test_max_delay_bounds_pending_age(raw, max_delay):
    cloak = CliqueCloak(BOUNDS, max_delay=max_delay)
    for i, (x, y, k, tolerance) in enumerate(raw):
        cloak.request(float(i), i, Point(x, y), k=k, tolerance=tolerance)
        cloak.tick(float(i))
    final_t = float(len(raw)) + max_delay + 1
    cloak.tick(final_t)
    # Everything still pending is younger than max_delay.
    for pending in cloak._pending.values():
        assert final_t - pending.requested_at <= max_delay + 1e-9
