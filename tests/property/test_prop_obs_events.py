"""Property-based tests for the event log's audit and EXPLAIN invariants.

Two ISSUE-level guarantees, checked over generated workloads:

* every ``cloak.result`` either fully attains its requirement
  (``k_achieved >= k`` and ``area >= min_area``) or explicitly declares
  degradation — the :class:`PrivacyAuditor` never finds an undeclared
  violation in an honest pipeline;
* EXPLAIN's measured index work equals the ``IndexCounters`` totals for
  the same query on a fresh server (the plan executes the real query,
  exactly once).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MobileUser, PrivacyProfile, PrivacySystem, PyramidCloaker
from repro.core.server import LocationServer
from repro.core.stores import PublicStore
from repro.geometry import Point, Rect
from repro.obs import PrivacyAuditor, QueryExplainer, Telemetry
from repro.obs.events import CLOAK_DEGRADED, CLOAK_RESULT

BOUNDS = Rect(0, 0, 100, 100)

user_specs = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),  # x
        st.floats(min_value=0, max_value=100, allow_nan=False),  # y
        st.integers(min_value=1, max_value=40),                  # k (may exceed pop)
        st.floats(min_value=0.0, max_value=50.0),                # min_area
    ),
    min_size=2,
    max_size=25,
)


@given(user_specs, st.integers(min_value=0, max_value=5))
@settings(max_examples=50, deadline=None)
def test_published_regions_attain_or_declare_degradation(specs, queries):
    system = PrivacySystem(BOUNDS, PyramidCloaker(BOUNDS, height=5))
    for i, (x, y, k, min_area) in enumerate(specs):
        system.add_user(
            MobileUser(i, Point(x, y), PrivacyProfile.always(k=k, min_area=min_area))
        )
    system.add_poi("poi", Point(50, 50))
    system.publish_all()
    for i in range(queries):
        system.user_range_query(i % len(specs), radius=8.0)

    events = list(system.obs.events.events())
    declared = {
        e.attrs.get("result_seq") for e in events if e.kind == CLOAK_DEGRADED
    }
    results = [e for e in events if e.kind == CLOAK_RESULT]
    assert results, "publishing must emit cloak results"
    for event in results:
        attrs = event.attrs
        attained = (
            attrs["k_achieved"] >= attrs["k"] and attrs["area"] >= attrs["min_area"]
        )
        assert attained or attrs["degraded"] or event.seq in declared, (
            f"undeclared degradation in {attrs}"
        )

    # The auditor agrees: nothing slipped through undeclared.
    auditor = PrivacyAuditor.from_log(system.obs.events)
    assert auditor.violations() == []
    assert auditor.report()["totals"]["cloaks"] == len(results)


query_rects = st.tuples(
    st.floats(min_value=0, max_value=70, allow_nan=False),
    st.floats(min_value=0, max_value=70, allow_nan=False),
    st.floats(min_value=1, max_value=30, allow_nan=False),  # width
    st.floats(min_value=1, max_value=30, allow_nan=False),  # height
)


def fresh_server(n_points, n_regions):
    server = LocationServer(telemetry=Telemetry(enabled=False))
    server.public = PublicStore.from_points(
        {i: Point((i * 17) % 100, (i * 31) % 100) for i in range(n_points)}
    )
    for i in range(n_regions):
        base = (i * 13) % 80
        server.receive_region(f"r{i}", Rect(base, base, base + 9, base + 9))
    return server


@given(
    query_rects,
    st.integers(min_value=5, max_value=60),
    st.integers(min_value=1, max_value=8),
    st.sampled_from(["public_range", "private_range", "private_nn"]),
)
@settings(max_examples=50, deadline=None)
def test_explain_counts_equal_index_counter_totals(rect, n_points, n_regions, path):
    x, y, w, h = rect
    region = Rect(x, y, x + w, y + h)
    server = fresh_server(n_points, n_regions)
    explainer = QueryExplainer(server)
    if path == "public_range":
        plan = explainer.explain_public_range(region)
        counters = server.public.index_counters
    elif path == "private_range":
        plan = explainer.explain_private_range(region, radius=5.0)
        counters = server.public.index_counters
    else:
        plan = explainer.explain_private_nn(region)
        counters = server.public.index_counters
    index_nodes = (
        plan.find("index.range_query")
        + plan.find("index.nearest")
        + plan.find("index.nearest_iter")
    )
    assert index_nodes, "every plan must report its index work"
    measured = index_nodes[0].detail
    totals = counters.snapshot()
    for name in ("node_visits", "leaf_scans", "distance_computations"):
        assert measured[name] == totals[name]
