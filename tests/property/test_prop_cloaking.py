"""Property-based tests for cloaking invariants (paper requirement 1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloaking.grid_cloak import GridCloaker
from repro.cloaking.hilbert import HilbertCloaker
from repro.cloaking.mbr import MBRCloaker
from repro.cloaking.naive import NaiveCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.cloaking.quadtree_cloak import QuadtreeCloaker
from repro.core.profiles import PrivacyRequirement
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)

coord = st.floats(min_value=0, max_value=100, allow_nan=False)
populations = st.lists(
    st.tuples(coord, coord), min_size=2, max_size=50, unique=True
)

CLOAKER_FACTORIES = [
    lambda: NaiveCloaker(BOUNDS),
    lambda: MBRCloaker(BOUNDS),
    lambda: QuadtreeCloaker(BOUNDS, capacity=2, max_depth=10),
    lambda: GridCloaker(BOUNDS, cols=10),
    lambda: PyramidCloaker(BOUNDS, height=5),
    lambda: HilbertCloaker(BOUNDS, order=6),
]


@given(populations, st.data())
@settings(max_examples=40, deadline=None)
def test_cloak_contains_user_and_k_others(raw_points, data):
    """For every algorithm, random population, and feasible k:
    the region contains the requester, lies in bounds, and holds >= k users."""
    points = {i: Point(x, y) for i, (x, y) in enumerate(raw_points)}
    k = data.draw(st.integers(min_value=1, max_value=len(points)))
    victim = data.draw(st.sampled_from(sorted(points)))
    requirement = PrivacyRequirement(k=k)
    for factory in CLOAKER_FACTORIES:
        cloaker = factory()
        for i, p in points.items():
            cloaker.add_user(i, p)
        result = cloaker.cloak(victim, requirement)
        assert result.region.contains_point(points[victim]), cloaker.name
        assert BOUNDS.contains_rect(result.region), cloaker.name
        assert result.user_count >= k, (cloaker.name, k, result.user_count)


@given(populations, st.data())
@settings(max_examples=30, deadline=None)
def test_cloak_area_monotone_in_k(raw_points, data):
    """Asking for more anonymity never produces a smaller region."""
    points = {i: Point(x, y) for i, (x, y) in enumerate(raw_points)}
    if len(points) < 3:
        return
    victim = data.draw(st.sampled_from(sorted(points)))
    k_small = data.draw(st.integers(min_value=1, max_value=len(points) - 1))
    k_large = data.draw(st.integers(min_value=k_small, max_value=len(points)))
    for factory in CLOAKER_FACTORIES:
        cloaker = factory()
        if isinstance(cloaker, HilbertCloaker):
            # Hilbert buckets re-partition with k: a larger k can land the
            # user in a tighter bucket, so area monotonicity does not hold
            # (and cannot be forced without breaking reciprocity).
            continue
        for i, p in points.items():
            cloaker.add_user(i, p)
        small = cloaker.cloak(victim, PrivacyRequirement(k=k_small)).area
        large = cloaker.cloak(victim, PrivacyRequirement(k=k_large)).area
        assert large >= small - 1e-9, cloaker.name


@given(populations, st.floats(min_value=0.1, max_value=500), st.data())
@settings(max_examples=30, deadline=None)
def test_min_area_respected(raw_points, min_area, data):
    """A_min is satisfied whenever it is satisfiable within the universe."""
    points = {i: Point(x, y) for i, (x, y) in enumerate(raw_points)}
    victim = data.draw(st.sampled_from(sorted(points)))
    requirement = PrivacyRequirement(k=1, min_area=min_area)
    for factory in CLOAKER_FACTORIES:
        cloaker = factory()
        for i, p in points.items():
            cloaker.add_user(i, p)
        result = cloaker.cloak(victim, requirement)
        assert result.region.area >= min_area - 1e-6, cloaker.name


@given(populations, st.data())
@settings(max_examples=25, deadline=None)
def test_cloak_deterministic(raw_points, data):
    """Cloaking the same user twice with no interleaved updates is stable."""
    points = {i: Point(x, y) for i, (x, y) in enumerate(raw_points)}
    victim = data.draw(st.sampled_from(sorted(points)))
    k = data.draw(st.integers(min_value=1, max_value=len(points)))
    requirement = PrivacyRequirement(k=k)
    for factory in CLOAKER_FACTORIES:
        cloaker = factory()
        for i, p in points.items():
            cloaker.add_user(i, p)
        first = cloaker.cloak(victim, requirement).region
        second = cloaker.cloak(victim, requirement).region
        assert first == second, cloaker.name
