"""Property-based tests: batched execution ≡ sequential execution.

For *any* interleaving of the five query kinds over *any* server state —
including empty batches, duplicate queries, empty stores, coincident
points, and cloaked regions degenerate in one axis (the PR-3
``membership_probability`` regression surface) — the vectorised engine
must return exactly what the sequential per-query path returns.

Coordinates are drawn from small integer grids so exact distance ties
and boundary-touching windows occur constantly; k-NN agreement is
checked tie-aware (same ids when canonical, same distance multiset
always) because the two paths may legally order equidistant neighbours
differently only by rank — and the engine normalises even that away.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import QueryError
from repro.core.server import LocationServer
from repro.engine import (
    BatchEngine,
    BruteForceOracle,
    PrivateNNQuery,
    PrivateRangeQuery,
    PublicCountQuery,
    PublicNNQuery,
    PublicRangeQuery,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.obs import Telemetry

coord = st.integers(min_value=0, max_value=12).map(float)
span = st.integers(min_value=0, max_value=6).map(float)


@st.composite
def rects(draw) -> Rect:
    x0 = draw(coord)
    y0 = draw(coord)
    # Degenerate-in-one-axis regions are first-class citizens here.
    return Rect(x0, y0, x0 + draw(span), y0 + draw(span))


@st.composite
def batch_queries(draw):
    kind = draw(st.sampled_from(
        ["public_range", "public_nn", "public_count", "private_range", "private_nn"]
    ))
    if kind == "public_range":
        return PublicRangeQuery(draw(rects()))
    if kind == "public_nn":
        return PublicNNQuery(
            Point(draw(coord), draw(coord)), k=draw(st.integers(1, 6))
        )
    if kind == "public_count":
        return PublicCountQuery(draw(rects()))
    if kind == "private_range":
        return PrivateRangeQuery(
            draw(rects()),
            radius=float(draw(st.integers(0, 8))),
            method=draw(st.sampled_from(["exact", "mbr"])),
        )
    return PrivateNNQuery(
        draw(rects()), method=draw(st.sampled_from(["range", "filter", "exact"]))
    )


servers = st.tuples(
    st.lists(st.tuples(coord, coord), max_size=25),   # public points
    st.lists(rects(), max_size=15),                   # private regions
)


@given(
    servers,
    st.lists(batch_queries(), max_size=20).flatmap(
        # Duplicate queries are part of the contract: re-append a prefix.
        lambda qs: st.integers(0, len(qs)).map(lambda n: qs + qs[:n])
    ),
)
@settings(max_examples=120, deadline=None)
def test_batched_equals_sequential(server_data, batch):
    points, regions = server_data
    server = LocationServer(telemetry=Telemetry(enabled=False))
    for i, (x, y) in enumerate(points):
        server.add_public_object(i, Point(x, y))
    for i, region in enumerate(regions):
        server.receive_region(f"u{i}", region)

    engine = BatchEngine(server)
    if not points and any(q.kind == "private_nn" for q in batch):
        # NN over an empty public store raises in the scalar entry point;
        # both engine modes must propagate the same error.
        with pytest.raises(QueryError):
            engine.execute(batch)
        with pytest.raises(QueryError):
            engine.execute(batch, vectorize=False)
        return
    vectorized = engine.execute(batch)
    sequential = engine.execute(batch, vectorize=False)

    assert len(vectorized) == len(sequential) == len(batch)
    has_nn = any(q.kind == "public_nn" for q in batch)
    oracle = BruteForceOracle.from_server(server) if has_nn else None
    for query, vec, seq in zip(batch, vectorized, sequential):
        if query.kind in ("public_range",):
            assert vec == seq
        elif query.kind == "public_count":
            assert vec.probabilities == seq.probabilities
        elif query.kind in ("private_range", "private_nn"):
            assert vec.candidates == seq.candidates
            assert vec.region == seq.region
            assert vec.method == seq.method
        else:  # public_nn: tie-aware — both must be valid k-NN sets with
            # identical distance sequences; the vectorised one is canonical.
            assert oracle.validate_knn(vec, query.point, query.k)
            assert oracle.validate_knn(seq, query.point, query.k)
            vec_d = [query.point.distance_to(oracle.public[i]) for i in vec]
            seq_d = [query.point.distance_to(oracle.public[i]) for i in seq]
            assert vec_d == seq_d
            assert vec == tuple(oracle.public_knn(query.point, query.k))


@given(servers)
@settings(max_examples=30, deadline=None)
def test_empty_batch(server_data):
    points, regions = server_data
    server = LocationServer(telemetry=Telemetry(enabled=False))
    for i, (x, y) in enumerate(points):
        server.add_public_object(i, Point(x, y))
    for i, region in enumerate(regions):
        server.receive_region(f"u{i}", region)
    engine = BatchEngine(server)
    assert engine.execute([]) == []
    assert engine.execute([], vectorize=False) == []


@given(rects(), st.lists(rects(), min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_degenerate_region_counts_match_scalar_path(window, regions):
    """Regression guard for the PR-3 degenerate-axis membership fix."""
    server = LocationServer(telemetry=Telemetry(enabled=False))
    for i, region in enumerate(regions):
        # Force at least one degenerate axis on every other region.
        if i % 2:
            region = Rect(region.min_x, region.min_y, region.max_x, region.min_y)
        server.receive_region(f"u{i}", region)
    engine = BatchEngine(server)
    [vec] = engine.execute([PublicCountQuery(window)])
    scalar = server.public_count(window)
    assert vec.probabilities == scalar.probabilities
    assert vec.expected == scalar.expected
