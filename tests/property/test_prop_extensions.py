"""Property-based tests for the extension modules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloaking.hilbert import HilbertCloaker, hilbert_d
from repro.core.profiles import PrivacyRequirement
from repro.core.stores import PrivateStore, PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.private_knn import exact_knn_answer, private_knn_query
from repro.queries.public_knn import exact_knn_users, knn_candidate_users

coord = st.floats(min_value=0, max_value=100, allow_nan=False)
BOUNDS = Rect(0, 0, 100, 100)


class TestHilbertCurveProperties:
    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_bijection_at_every_order(self, order):
        side = 1 << order
        seen = {
            hilbert_d(order, x, y) for x in range(side) for y in range(side)
        }
        assert seen == set(range(side * side))

    @given(st.integers(min_value=2, max_value=6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_consecutive_indices_are_grid_neighbours(self, order, data):
        side = 1 << order
        x = data.draw(st.integers(min_value=0, max_value=side - 1))
        y = data.draw(st.integers(min_value=0, max_value=side - 1))
        d = hilbert_d(order, x, y)
        if d + 1 >= side * side:
            return
        # Find the successor cell by scanning the local neighbourhood:
        # locality means it is one of the 4-neighbours.
        neighbours = [
            (x + dx, y + dy)
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
            if 0 <= x + dx < side and 0 <= y + dy < side
        ]
        assert any(hilbert_d(order, nx, ny) == d + 1 for nx, ny in neighbours)


class TestHilbertBucketProperties:
    @given(
        st.lists(st.tuples(coord, coord), min_size=3, max_size=60, unique=True),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_buckets_partition_and_cover(self, raw, data):
        cloaker = HilbertCloaker(BOUNDS, order=6)
        for i, (x, y) in enumerate(raw):
            cloaker.add_user(i, Point(x, y))
        k = data.draw(st.integers(min_value=1, max_value=len(raw)))
        buckets = {frozenset(cloaker.bucket_of(i, k)) for i in range(len(raw))}
        members = sorted(m for bucket in buckets for m in bucket)
        assert members == sorted(range(len(raw)))  # partition
        assert all(len(bucket) >= min(k, len(raw)) for bucket in buckets)

    @given(
        st.lists(st.tuples(coord, coord), min_size=4, max_size=40, unique=True),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_reciprocity_of_regions(self, raw, data):
        cloaker = HilbertCloaker(BOUNDS, order=6)
        for i, (x, y) in enumerate(raw):
            cloaker.add_user(i, Point(x, y))
        k = data.draw(st.integers(min_value=2, max_value=len(raw)))
        requirement = PrivacyRequirement(k=k)
        victim = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        region = cloaker.cloak(victim, requirement).region
        for member in cloaker.bucket_of(victim, k):
            assert cloaker.cloak(member, requirement).region == region


class TestPrivateKNNProperties:
    @given(
        st.lists(st.tuples(coord, coord), min_size=1, max_size=40, unique=True),
        st.tuples(coord, coord, coord, coord),
        st.integers(min_value=1, max_value=6),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_knn_containment(self, raw, box, k, data):
        store = PublicStore()
        for i, (x, y) in enumerate(raw):
            store.add(i, Point(x, y))
        region = Rect(
            min(box[0], box[2]), min(box[1], box[3]),
            max(box[0], box[2]), max(box[1], box[3]),
        )
        result = private_knn_query(store, region, k, "filter")
        x = data.draw(st.floats(min_value=region.min_x, max_value=region.max_x))
        y = data.draw(st.floats(min_value=region.min_y, max_value=region.max_y))
        truth = exact_knn_answer(store, Point(x, y), k)
        assert set(truth) <= set(result.candidates)


class TestPublicKNNProperties:
    @given(
        st.lists(
            st.tuples(coord, coord, st.floats(min_value=0, max_value=15)),
            min_size=1,
            max_size=25,
        ),
        st.tuples(coord, coord),
        st.integers(min_value=1, max_value=5),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_true_knn_users_always_candidates(self, raw, q_xy, k, data):
        store = PrivateStore()
        exact = {}
        for i, (cx, cy, half) in enumerate(raw):
            region = Rect(cx - half, cy - half, cx + half, cy + half)
            store.set_region(i, region)
            fx = data.draw(st.floats(min_value=region.min_x, max_value=region.max_x))
            fy = data.draw(st.floats(min_value=region.min_y, max_value=region.max_y))
            exact[i] = Point(fx, fy)
        q = Point(*q_xy)
        candidates, _ = knn_candidate_users(store, q, k)
        truth = exact_knn_users(exact, q, k)
        assert set(truth) <= set(candidates)
