"""Property-based tests for the query processor's correctness guarantees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stores import PrivateStore, PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.queries.private_nn import exact_nn_answer, private_nn_query
from repro.queries.private_range import exact_range_answer, private_range_query
from repro.queries.probabilistic import poisson_binomial_pmf
from repro.queries.public_nn import exact_nn_user, nn_candidate_users
from repro.queries.public_range import exact_range_count, public_range_count

coord = st.floats(min_value=0, max_value=100, allow_nan=False)
poi_sets = st.lists(st.tuples(coord, coord), min_size=1, max_size=40, unique=True)
boxes = st.tuples(coord, coord, coord, coord).map(
    lambda t: Rect(min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3]))
)


def public_store(raw):
    store = PublicStore()
    for i, (x, y) in enumerate(raw):
        store.add(i, Point(x, y))
    return store


class TestPrivateRangeGuarantee:
    @given(poi_sets, boxes, st.floats(min_value=0, max_value=50), st.data())
    @settings(max_examples=50, deadline=None)
    def test_no_false_negatives(self, raw, region, radius, data):
        store = public_store(raw)
        result = private_range_query(store, region, radius, "exact")
        x = data.draw(st.floats(min_value=region.min_x, max_value=region.max_x))
        y = data.draw(st.floats(min_value=region.min_y, max_value=region.max_y))
        truth = exact_range_answer(store, Point(x, y), radius)
        assert set(truth) <= set(result.candidates)

    @given(poi_sets, boxes, st.floats(min_value=0, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_exact_subset_of_mbr(self, raw, region, radius):
        store = public_store(raw)
        exact = private_range_query(store, region, radius, "exact")
        mbr = private_range_query(store, region, radius, "mbr")
        assert set(exact.candidates) <= set(mbr.candidates)


class TestPrivateNNGuarantee:
    @given(poi_sets, boxes, st.data())
    @settings(max_examples=50, deadline=None)
    def test_true_nn_always_candidate(self, raw, region, data):
        store = public_store(raw)
        method = data.draw(st.sampled_from(["range", "filter", "exact"]))
        result = private_nn_query(store, region, method)
        x = data.draw(st.floats(min_value=region.min_x, max_value=region.max_x))
        y = data.draw(st.floats(min_value=region.min_y, max_value=region.max_y))
        assert exact_nn_answer(store, Point(x, y)) in result.candidates

    @given(poi_sets, boxes)
    @settings(max_examples=50, deadline=None)
    def test_method_tightness(self, raw, region):
        store = public_store(raw)
        r = private_nn_query(store, region, "range")
        f = private_nn_query(store, region, "filter")
        e = private_nn_query(store, region, "exact")
        assert set(e.candidates) <= set(f.candidates) <= set(r.candidates)
        assert len(e.candidates) >= 1


class TestPublicCountGuarantee:
    @given(
        st.lists(
            st.tuples(coord, coord, st.floats(min_value=0, max_value=20)),
            min_size=0,
            max_size=30,
        ),
        boxes,
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_interval_brackets_truth(self, raw, window, data):
        """For any true location consistent with the regions, the count
        interval brackets the true count."""
        store = PrivateStore()
        exact = {}
        for i, (cx, cy, half) in enumerate(raw):
            region = Rect(cx - half, cy - half, cx + half, cy + half)
            store.set_region(i, region)
            fx = data.draw(st.floats(min_value=region.min_x, max_value=region.max_x))
            fy = data.draw(st.floats(min_value=region.min_y, max_value=region.max_y))
            exact[i] = Point(fx, fy)
        answer = public_range_count(store, window)
        truth = exact_range_count(exact, window)
        lo, hi = answer.interval
        assert lo <= truth <= hi
        assert 0 <= answer.expected <= len(raw)


class TestPublicNNGuarantee:
    @given(
        st.lists(
            st.tuples(coord, coord, st.floats(min_value=0, max_value=15)),
            min_size=1,
            max_size=25,
        ),
        st.tuples(coord, coord),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_true_nn_user_always_candidate(self, raw, q_xy, data):
        store = PrivateStore()
        exact = {}
        for i, (cx, cy, half) in enumerate(raw):
            region = Rect(cx - half, cy - half, cx + half, cy + half)
            store.set_region(i, region)
            fx = data.draw(st.floats(min_value=region.min_x, max_value=region.max_x))
            fy = data.draw(st.floats(min_value=region.min_y, max_value=region.max_y))
            exact[i] = Point(fx, fy)
        q = Point(*q_xy)
        candidates, _ = nn_candidate_users(store, q)
        assert exact_nn_user(exact, q) in candidates


class TestPoissonBinomialProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1), max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_pmf_is_distribution(self, probs):
        pmf = poisson_binomial_pmf(probs)
        assert len(pmf) == len(probs) + 1
        assert abs(pmf.sum() - 1.0) < 1e-9
        assert (pmf >= -1e-12).all()

    @given(st.lists(st.floats(min_value=0, max_value=1), max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_mean_equals_sum_of_probs(self, probs):
        pmf = poisson_binomial_pmf(probs)
        mean = float(np.dot(np.arange(len(pmf)), pmf))
        assert abs(mean - sum(probs)) < 1e-8

    @given(
        st.lists(st.floats(min_value=0, max_value=1), max_size=30),
        st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=60, deadline=None)
    def test_adding_certain_trial_shifts_pmf(self, probs, extra):
        base = poisson_binomial_pmf(probs)
        shifted = poisson_binomial_pmf(probs + [1.0])
        assert np.allclose(shifted[1:], base)
        assert shifted[0] == 0.0
