"""Property-based tests for system-level equivalences."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloaking.incremental import IncrementalCloaker
from repro.cloaking.pyramid_cloak import PyramidCloaker
from repro.cloaking.shared import CloakRequest, cloak_batch
from repro.core.persistence import (
    load_private_store,
    load_profiles,
    load_public_store,
    save_private_store,
    save_profiles,
    save_public_store,
)
from repro.core.profiles import PrivacyProfile, PrivacyRequirement, ProfileEntry
from repro.core.stores import PrivateStore, PublicStore
from repro.geometry.point import Point
from repro.geometry.rect import Rect

BOUNDS = Rect(0, 0, 100, 100)
coord = st.floats(min_value=0, max_value=100, allow_nan=False)


class TestIncrementalEquivalence:
    @given(
        st.lists(st.tuples(coord, coord), min_size=3, max_size=40, unique=True),
        st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_incremental_results_always_valid(self, raw, data):
        """Whatever the reuse pattern, every result satisfies the
        requirement exactly as a fresh computation would."""
        inner = PyramidCloaker(BOUNDS, height=5)
        wrapper = IncrementalCloaker(inner)
        for i, (x, y) in enumerate(raw):
            wrapper.add_user(i, Point(x, y))
        k = data.draw(st.integers(min_value=1, max_value=len(raw)))
        requirement = PrivacyRequirement(k=k)
        victim = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        for _ in range(3):
            result = wrapper.cloak(victim, requirement)
            assert result.user_count >= k
            assert result.region.contains_point(inner.location_of(victim))
            # Random small movement between cloaks.
            dx = data.draw(st.floats(min_value=-2, max_value=2))
            dy = data.draw(st.floats(min_value=-2, max_value=2))
            p = inner.location_of(victim)
            moved = Point(
                min(max(p.x + dx, 0.0), 100.0), min(max(p.y + dy, 0.0), 100.0)
            )
            wrapper.move_user(victim, moved)


class TestSharedBatchEquivalence:
    @given(
        st.lists(st.tuples(coord, coord), min_size=2, max_size=40, unique=True),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_batch_equals_individual(self, raw, k):
        k = min(k, len(raw))
        batch_side = PyramidCloaker(BOUNDS, height=4)
        solo_side = PyramidCloaker(BOUNDS, height=4)
        for i, (x, y) in enumerate(raw):
            batch_side.add_user(i, Point(x, y))
            solo_side.add_user(i, Point(x, y))
        requirement = PrivacyRequirement(k=k)
        requests = [CloakRequest(i, requirement) for i in range(len(raw))]
        outcome = cloak_batch(batch_side, requests)
        for i in range(len(raw)):
            assert outcome.results[i].region == solo_side.cloak(i, requirement).region


class TestPersistenceProperties:
    @given(
        st.dictionaries(
            st.text(
                alphabet=st.characters(
                    whitelist_categories=("Lu", "Ll", "Nd"), min_codepoint=33
                ),
                min_size=1,
                max_size=8,
            ),
            st.tuples(coord, coord),
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_public_store_roundtrip(self, tmp_path_factory, raw):
        store = PublicStore()
        for object_id, (x, y) in raw.items():
            store.add(object_id, Point(x, y))
        path = tmp_path_factory.mktemp("prop") / "public.tsv"
        save_public_store(store, path)
        loaded = load_public_store(path)
        assert len(loaded) == len(store)
        for object_id, (x, y) in raw.items():
            assert loaded.point_of(object_id) == Point(x, y)

    @given(
        st.lists(
            st.tuples(coord, coord, st.floats(min_value=0, max_value=20)),
            max_size=25,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_private_store_roundtrip(self, tmp_path_factory, raw):
        store = PrivateStore()
        for i, (cx, cy, half) in enumerate(raw):
            store.set_region(f"u{i}", Rect(cx - half, cy - half, cx + half, cy + half))
        path = tmp_path_factory.mktemp("prop") / "private.tsv"
        save_private_store(store, path)
        loaded = load_private_store(path)
        assert len(loaded) == len(store)
        for object_id, region in store.items():
            assert loaded.region_of(object_id) == region

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=86399, allow_nan=False),
                st.integers(min_value=1, max_value=1000),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=6,
            unique_by=lambda row: row[0],
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_profile_roundtrip(self, tmp_path_factory, rows):
        profile = PrivacyProfile(
            ProfileEntry(start, PrivacyRequirement(k=k, min_area=a))
            for start, k, a in rows
        )
        path = tmp_path_factory.mktemp("prop") / "profiles.tsv"
        save_profiles({"u": profile}, path)
        loaded = load_profiles(path)["u"]
        for t in (0.0, 21_600.0, 43_200.0, 64_800.0, 86_000.0):
            assert loaded.requirement_at(t) == profile.requirement_at(t)
