"""Property-based tests for the geometry substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.distances import (
    max_dist,
    max_dist_rects,
    min_dist,
    min_dist_rects,
    min_max_dist_rect,
    within_distance_of_rect,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect

coords = st.floats(min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False)


@st.composite
def points(draw):
    return Point(draw(coords), draw(coords))


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


class TestPointProperties:
    @given(points(), points())
    def test_distance_symmetry(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)

    @given(points(), points(), points())
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-7

    @given(points(), points())
    def test_manhattan_dominates_euclidean(self, a, b):
        assert a.manhattan_distance_to(b) >= a.distance_to(b) - 1e-9


class TestRectProperties:
    @given(rects())
    def test_center_inside(self, r):
        assert r.contains_point(r.center)

    @given(rects())
    def test_corners_inside(self, r):
        for corner in r.corners:
            assert r.contains_point(corner)

    @given(rects(), rects())
    def test_intersection_commutes(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        overlap = a.intersection(b)
        if overlap is not None:
            assert a.contains_rect(overlap)
            assert b.contains_rect(overlap)

    @given(rects(), rects())
    def test_union_mbr_contains_both(self, a, b):
        union = a.union_mbr(b)
        assert union.contains_rect(a)
        assert union.contains_rect(b)

    @given(rects(), st.floats(min_value=0, max_value=100))
    def test_expanded_contains_original(self, r, margin):
        assert r.expanded(margin).contains_rect(r)

    @given(rects(), st.floats(min_value=0.01, max_value=100))
    def test_expanded_area_formula(self, r, margin):
        expanded = r.expanded(margin)
        expected = (r.width + 2 * margin) * (r.height + 2 * margin)
        assert math.isclose(expanded.area, expected, rel_tol=1e-9, abs_tol=1e-6)

    @given(rects())
    def test_quadrants_tile(self, r):
        quads = r.quadrants()
        assert math.isclose(sum(q.area for q in quads), r.area, rel_tol=1e-9, abs_tol=1e-6)
        for q in quads:
            assert r.contains_rect(q)

    @given(rects(), st.floats(min_value=0.1, max_value=1e6))
    def test_scaled_to_area_hits_target(self, r, target):
        scaled = r.scaled_to_area(target)
        if r.area > 0 or target > 0:
            assert math.isclose(scaled.area, target, rel_tol=1e-6, abs_tol=1e-6)


class TestDistanceProperties:
    @given(points(), rects())
    def test_min_le_max(self, p, r):
        assert min_dist(p, r) <= max_dist(p, r) + 1e-9

    @given(points(), rects())
    def test_min_dist_zero_iff_inside(self, p, r):
        if r.contains_point(p):
            assert min_dist(p, r) == 0.0
        else:
            assert min_dist(p, r) > 0.0

    @given(points(), rects())
    def test_max_dist_attained_at_a_corner(self, p, r):
        corner_max = max(p.distance_to(c) for c in r.corners)
        assert math.isclose(max_dist(p, r), corner_max, rel_tol=1e-9, abs_tol=1e-9)

    @given(rects(), rects())
    def test_rect_distances_bracket(self, a, b):
        assert min_dist_rects(a, b) <= max_dist_rects(a, b) + 1e-9

    @given(rects(), rects())
    def test_min_max_dist_bracketed(self, a, b):
        m = min_max_dist_rect(a, b)
        assert min_dist_rects(a, b) - 1e-9 <= m <= max_dist_rects(a, b) + 1e-9

    @given(points(), rects(), st.floats(min_value=0, max_value=500))
    def test_rounded_region_subset_of_mbr_expansion(self, p, r, d):
        # Tiny float slack: the expansion sum can round down when d is
        # subnormal relative to the coordinates.
        if within_distance_of_rect(p, r, d):
            assert r.expanded(d).expanded(1e-6).contains_point(p)

    @given(rects(), rects())
    def test_intersecting_iff_zero_min_dist(self, a, b):
        if a.intersects(b):
            assert min_dist_rects(a, b) == 0.0
        else:
            assert min_dist_rects(a, b) > 0.0
