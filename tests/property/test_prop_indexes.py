"""Property-based tests: every index agrees with brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex
from repro.index.kdtree import KDTree
from repro.index.pyramid import PyramidGrid
from repro.index.quadtree import QuadTree
from repro.index.rtree import RTree

BOUNDS = Rect(0, 0, 100, 100)

coord = st.floats(min_value=0, max_value=100, allow_nan=False)
inner_points = st.lists(
    st.tuples(coord, coord), min_size=0, max_size=60, unique=True
)
windows = st.tuples(coord, coord, coord, coord).map(
    lambda t: Rect(min(t[0], t[2]), min(t[1], t[3]), max(t[0], t[2]), max(t[1], t[3]))
)


def build_indexes(raw_points):
    pts = {i: Point(x, y) for i, (x, y) in enumerate(raw_points)}
    indexes = [
        RTree(max_entries=4),
        QuadTree(BOUNDS, capacity=2, max_depth=12),
        GridIndex(BOUNDS, cols=9),
        PyramidGrid(BOUNDS, height=4),
        KDTree(rebuild_fraction=0.3),
    ]
    for index in indexes:
        for i, p in pts.items():
            index.insert_point(i, p)
    return pts, indexes


class TestRangeAgreement:
    @given(inner_points, windows)
    @settings(max_examples=60, deadline=None)
    def test_all_indexes_match_brute_force(self, raw_points, window):
        pts, indexes = build_indexes(raw_points)
        expected = sorted(i for i, p in pts.items() if window.contains_point(p))
        for index in indexes:
            assert sorted(index.range_query(window)) == expected, type(index)

    @given(inner_points, windows)
    @settings(max_examples=40, deadline=None)
    def test_counting_indexes_match(self, raw_points, window):
        pts, indexes = build_indexes(raw_points)
        expected = sum(1 for p in pts.values() if window.contains_point(p))
        quadtree = indexes[1]
        pyramid = indexes[3]
        assert quadtree.count_in_window(window) == expected
        assert pyramid.count_in_window(window) == expected


class TestNearestAgreement:
    @given(inner_points, st.tuples(coord, coord), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_knn_distances_match_brute_force(self, raw_points, q_xy, k):
        pts, indexes = build_indexes(raw_points)
        q = Point(*q_xy)
        expected = sorted(p.distance_to(q) for p in pts.values())[:k]
        for index in indexes:
            got = [pts[i].distance_to(q) for i in index.nearest(q, k)]
            assert len(got) == min(k, len(pts))
            for a, b in zip(sorted(got), expected):
                assert abs(a - b) < 1e-9, type(index)


class TestDeletionConsistency:
    @given(inner_points, st.data())
    @settings(max_examples=40, deadline=None)
    def test_delete_half_then_query(self, raw_points, data):
        pts, indexes = build_indexes(raw_points)
        if not pts:
            return
        to_delete = [i for i in pts if i % 2 == 0]
        for index in indexes:
            for i in to_delete:
                index.delete(i)
        remaining = {i: p for i, p in pts.items() if i % 2 == 1}
        window = data.draw(windows)
        expected = sorted(i for i, p in remaining.items() if window.contains_point(p))
        for index in indexes:
            assert sorted(index.range_query(window)) == expected, type(index)
            assert len(index) == len(remaining)
